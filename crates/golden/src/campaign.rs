//! The fault-injection campaign driver (Section 5.3 of the paper).
//!
//! A [`Campaign`] warms a network up to the chosen injection instant
//! (cycle 0 for an empty network, 32K for steady state), snapshots it,
//! runs the fault-free **golden reference** rollout once, and then rolls
//! out one clone per fault site with NoCAlert, ForEVeR and the run log
//! attached. Each rollout yields a [`RunResult`]: ground-truth verdict
//! (malicious/benign), detection flags and latencies for all three
//! detector views, and the per-checker statistics behind Figures 8 and 9.

use crate::oracle::{classify, GoldenReference, RunLog, Verdict};
use fault::{rollout, FaultSpec};
use forever::Forever;
use noc_sim::Network;
use noc_types::site::{FaultKind, SiteRef};
use noc_types::{Cycle, NocConfig};
use nocalert::{AlertBank, CheckerId};
use serde::{Deserialize, Serialize};

/// Campaign parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Network configuration (the paper: 8×8 baseline, uniform random).
    pub noc: NocConfig,
    /// Cycles of fault-free warm-up before injection (0 or 32,000 in the
    /// paper's Figure 6).
    pub warmup: Cycle,
    /// Cycles of live traffic after the injection instant.
    pub active_window: Cycle,
    /// Drain budget after traffic generation stops; a network that cannot
    /// drain within this window is declared deadlocked.
    pub drain_deadline: Cycle,
    /// ForEVeR epoch length (paper: 1,500).
    pub forever_epoch: u64,
}

impl CampaignConfig {
    /// Paper-shaped defaults on top of `noc`: 2,000 active cycles after
    /// injection, 20,000-cycle drain budget, 1,500-cycle ForEVeR epochs.
    pub fn paper_defaults(noc: NocConfig, warmup: Cycle) -> CampaignConfig {
        CampaignConfig {
            noc,
            warmup,
            active_window: 2_000,
            drain_deadline: 20_000,
            forever_epoch: 1_500,
        }
    }
}

/// What one detector concluded about one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorOutcome {
    /// Did the detector raise anything at all?
    pub detected: bool,
    /// Cycles from the injection instant to the first alarm.
    pub latency: Option<u64>,
}

/// The three detector views compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Detector {
    /// Plain NoCAlert: every assertion triggers.
    NoCAlert,
    /// NoCAlert with low-risk invariances (1/3) deferred when alone
    /// (Observation 2, "NoCAlert Cautious").
    NoCAlertCautious,
    /// The ForEVeR baseline.
    ForEVeR,
}

/// Confusion-matrix cell for one (run, detector) pair, following the
/// paper's definitions: *positive* means the detector raised an alarm,
/// *true* means the verdict agrees with the ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Outcome {
    /// Alarm raised, fault was malicious.
    TruePositive,
    /// Alarm raised, fault was benign.
    FalsePositive,
    /// Silent, fault was benign.
    TrueNegative,
    /// Silent, fault was malicious — the failure mode NoCAlert claims to
    /// eliminate (Observation 1: 0% false negatives).
    FalseNegative,
}

/// Combines a detector flag with the ground truth.
pub fn outcome(detected: bool, malicious: bool) -> Outcome {
    match (detected, malicious) {
        (true, true) => Outcome::TruePositive,
        (true, false) => Outcome::FalsePositive,
        (false, false) => Outcome::TrueNegative,
        (false, true) => Outcome::FalseNegative,
    }
}

/// Everything measured for one fault injection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Injected site.
    pub site: SiteRef,
    /// Temporal fault kind.
    pub kind: FaultKind,
    /// Injection cycle.
    pub injected_at: Cycle,
    /// Times the armed bit flipped a live wire (0 ⇒ vacuous injection).
    pub fault_hits: u64,
    /// Ground-truth verdict from the golden-reference comparison.
    pub verdict: Verdict,
    /// Plain NoCAlert.
    pub nocalert: DetectorOutcome,
    /// Cautious NoCAlert (Observation 2).
    pub cautious: DetectorOutcome,
    /// ForEVeR baseline.
    pub forever: DetectorOutcome,
    /// Distinct NoCAlert checkers that asserted at least once.
    pub checkers: Vec<CheckerId>,
    /// Distinct checkers asserted within the first detection cycle
    /// (Figure 9's "simultaneously asserted checkers").
    pub simultaneous: u8,
}

impl RunResult {
    /// Ground truth: did the fault cause a network-correctness violation?
    pub fn malicious(&self) -> bool {
        self.verdict.malicious()
    }

    /// Confusion-matrix cell for one detector view.
    pub fn outcome(&self, d: Detector) -> Outcome {
        let detected = match d {
            Detector::NoCAlert => self.nocalert.detected,
            Detector::NoCAlertCautious => self.cautious.detected,
            Detector::ForEVeR => self.forever.detected,
        };
        outcome(detected, self.malicious())
    }

    /// Detection latency for one detector view.
    pub fn latency(&self, d: Detector) -> Option<u64> {
        match d {
            Detector::NoCAlert => self.nocalert.latency,
            Detector::NoCAlertCautious => self.cautious.latency,
            Detector::ForEVeR => self.forever.latency,
        }
    }
}

/// A prepared injection campaign: warmed snapshot + golden reference.
///
/// The detectors and the run log are threaded through the warm-up once and
/// their warmed states are cloned into every rollout — checkers observe
/// the network from cycle 0, exactly like the hardware they model, so a
/// packet that is mid-flight at the injection instant never looks like a
/// violation.
#[derive(Debug, Clone)]
pub struct Campaign {
    cc: CampaignConfig,
    snapshot: Network,
    bank0: AlertBank,
    forever0: Forever,
    log0: RunLog,
    golden: GoldenReference,
}

impl Campaign {
    /// Warms the network up, snapshots it, and runs the golden rollout.
    ///
    /// # Panics
    ///
    /// Panics if the fault-free golden run fails to drain — that would
    /// mean the substrate itself deadlocks and no experiment is valid.
    pub fn new(cc: CampaignConfig) -> Campaign {
        let mut net = Network::new(cc.noc.clone());
        let mut bank0 = AlertBank::new(&cc.noc);
        let mut forever0 = Forever::new(&cc.noc, cc.forever_epoch);
        let mut log0 = RunLog::new();
        for _ in 0..cc.warmup {
            net.step_observed(&mut (&mut bank0, &mut forever0, &mut log0));
        }
        assert!(
            !bank0.any_asserted(),
            "NoCAlert asserted during fault-free warm-up: {:?}",
            bank0.assertions().first()
        );
        assert!(
            !forever0.any_detected(),
            "ForEVeR false alarm during fault-free warm-up"
        );
        let snapshot = net;
        let mut gnet = snapshot.clone();
        let mut glog = log0.clone();
        let out = rollout(
            &mut gnet,
            None,
            cc.active_window,
            cc.drain_deadline,
            &mut glog,
        );
        let golden = GoldenReference::from_log(&glog, out.drained);
        Campaign {
            cc,
            snapshot,
            bank0,
            forever0,
            log0,
            golden,
        }
    }

    /// The configuration this campaign runs under.
    pub fn config(&self) -> &CampaignConfig {
        &self.cc
    }

    /// The cycle at which faults are injected (`warmup`).
    pub fn injection_cycle(&self) -> Cycle {
        self.snapshot.cycle()
    }

    /// The golden reference (for external analyses).
    pub fn golden(&self) -> &GoldenReference {
        &self.golden
    }

    /// Disables one NoCAlert checker for every subsequent rollout —
    /// ablation support for redundancy studies ("no single checker is
    /// redundant", Section 5.4).
    pub fn disable_checker(&mut self, id: CheckerId) {
        self.bank0.disable(id);
    }

    /// Runs one single-bit **transient** injection at `site` — the paper's
    /// campaign fault model.
    pub fn run_site(&self, site: SiteRef) -> RunResult {
        self.run_spec(FaultSpec::transient(site, self.injection_cycle()))
    }

    /// Runs an arbitrary fault spec (permanent/intermittent for the
    /// Observation-3 experiments). The spec's `start` should not precede
    /// the snapshot cycle.
    pub fn run_spec(&self, spec: FaultSpec) -> RunResult {
        let mut net = self.snapshot.clone();
        let mut bank = self.bank0.clone();
        let mut fv = self.forever0.clone();
        let mut log = self.log0.clone();
        let out = rollout(
            &mut net,
            Some(&spec),
            self.cc.active_window,
            self.cc.drain_deadline,
            &mut (&mut bank, &mut fv, &mut log),
        );
        // Coda: keep the clock running past the next two ForEVeR epoch
        // boundaries so its end-of-epoch counter checks can evaluate the
        // settled state (the paper's simulations run long enough for the
        // epoch mechanism to conclude). The network is quiescent, so this
        // is cheap.
        for _ in 0..(2 * self.cc.forever_epoch + 1) {
            net.step_observed(&mut (&mut bank, &mut fv, &mut log));
        }
        let verdict = classify(&self.golden, &log, out.drained);
        let lat = |c: Option<Cycle>| c.map(|c| c.saturating_sub(spec.start));
        RunResult {
            site: spec.site,
            kind: spec.kind,
            injected_at: spec.start,
            fault_hits: out.fault_hits,
            verdict,
            nocalert: DetectorOutcome {
                detected: bank.any_asserted(),
                latency: lat(bank.first_detection()),
            },
            cautious: DetectorOutcome {
                detected: bank.first_detection_cautious().is_some(),
                latency: lat(bank.first_detection_cautious()),
            },
            forever: DetectorOutcome {
                detected: fv.any_detected(),
                latency: lat(fv.first_detection()),
            },
            checkers: bank.asserted_set(),
            simultaneous: bank.first_cycle_checkers().len() as u8,
        }
    }

    /// Runs a batch of transient injections, one per site, across
    /// `threads` worker threads (`0`/`1` ⇒ sequential). Results are in
    /// site order and bit-identical regardless of thread count.
    pub fn run_many(&self, sites: &[SiteRef], threads: usize) -> Vec<RunResult> {
        if threads <= 1 || sites.len() < 2 {
            return sites.iter().map(|&s| self.run_site(s)).collect();
        }
        let chunk = sites.len().div_ceil(threads);
        let mut out: Vec<Vec<RunResult>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = sites
                .chunks(chunk)
                .map(|ch| scope.spawn(move || ch.iter().map(|&s| self.run_site(s)).collect::<Vec<_>>()))
                .collect();
            for h in handles {
                out.push(h.join().expect("campaign worker panicked"));
            }
        });
        out.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::site::SignalKind;

    fn small_campaign() -> Campaign {
        let mut noc = NocConfig::small_test();
        noc.injection_rate = 0.08;
        let cc = CampaignConfig {
            noc,
            warmup: 300,
            active_window: 400,
            drain_deadline: 10_000,
            forever_epoch: 300,
        };
        Campaign::new(cc)
    }

    #[test]
    fn golden_reference_is_clean_against_itself() {
        let c = small_campaign();
        // A fault-free "injection" (no site armed) must be a clean run.
        let mut net = c.snapshot.clone();
        let mut log = c.log0.clone();
        let out = rollout(&mut net, None, 400, 10_000, &mut log);
        let verdict = classify(&c.golden, &log, out.drained);
        assert!(!verdict.malicious(), "{verdict:?}");
    }

    #[test]
    fn vacuous_injection_is_true_negative() {
        let c = small_campaign();
        // A dead-quiet wire: RC destination input on a corner router port
        // that sees no traffic within the window is likely vacuous; instead
        // use a site whose router is guaranteed idle by picking a transient
        // 1 cycle before any evaluation — simplest: bit on a VcOutVc of an
        // idle VC is only evaluated when the VC is active. Use hits == 0 as
        // the vacuousness witness.
        let site = SiteRef {
            router: 15,
            port: 0,
            vc: 3,
            signal: SignalKind::VcOutVc,
            bit: 0,
        };
        let r = c.run_site(site);
        if r.fault_hits == 0 {
            assert_eq!(r.outcome(Detector::NoCAlert), Outcome::TrueNegative);
            assert!(!r.malicious());
        }
    }

    #[test]
    fn rc_outdir_fault_is_detected_when_hit() {
        let c = small_campaign();
        // Permanent stuck bit on a local-port RC output: every routed
        // header from node 5's NI is misdirected.
        let site = SiteRef {
            router: 5,
            port: 4,
            vc: 0,
            signal: SignalKind::RcOutDir,
            bit: 1,
        };
        let spec = FaultSpec::permanent(site, c.injection_cycle());
        let r = c.run_spec(spec);
        assert!(r.fault_hits > 0, "node 5 injects within the window");
        assert!(r.nocalert.detected);
        assert_eq!(r.nocalert.latency, Some(r.nocalert.latency.unwrap()));
        // Detection is instantaneous: the checker sees the same wire.
        assert!(r.checkers.iter().any(|c| [1, 2, 3].contains(&c.0)));
    }

    #[test]
    fn run_many_is_deterministic_and_thread_invariant() {
        let c = small_campaign();
        let sites = fault::sample::stride(&fault::enumerate_sites(&c.cc.noc), 6);
        let seq = c.run_many(&sites, 1);
        let par = c.run_many(&sites, 3);
        assert_eq!(seq, par);
        assert_eq!(seq.len(), sites.len());
    }

    #[test]
    fn outcome_matrix() {
        assert_eq!(outcome(true, true), Outcome::TruePositive);
        assert_eq!(outcome(true, false), Outcome::FalsePositive);
        assert_eq!(outcome(false, false), Outcome::TrueNegative);
        assert_eq!(outcome(false, true), Outcome::FalseNegative);
    }
}
