//! Network-performance sanity sweep: mean flit latency vs. offered load
//! for the synthetic traffic patterns — the classic NoC load/latency curve
//! that shows the substrate behaves like a real wormhole network
//! (flat latency at low load, congestion knee near saturation).
//!
//! Run with: `cargo run --release --example traffic_sweep -- [mesh_k]`

use nocalert_repro::prelude::*;

fn measure(cfg: &NocConfig, warm: u64, window: u64) -> (f64, f64) {
    let mut net = Network::new(cfg.clone());
    net.run(warm);
    let s0 = net.stats();
    net.run(window);
    let s1 = net.stats();
    let flits = (s1.ejected_flits - s0.ejected_flits) as f64;
    let lat = (s1.latency_sum - s0.latency_sum) as f64 / flits.max(1.0);
    let thr = flits / window as f64 / cfg.mesh.len() as f64;
    (lat, thr)
}

fn main() {
    let k: u8 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let patterns = [
        TrafficPattern::UniformRandom,
        TrafficPattern::Transpose,
        TrafficPattern::BitComplement,
        TrafficPattern::Tornado,
        TrafficPattern::Neighbor,
    ];
    println!("== load/latency curves, {k}x{k} mesh, 4 VCs, XY routing ==");
    for pattern in patterns {
        println!("\n{pattern:?}:");
        println!(
            "{:>8} {:>14} {:>20}",
            "load", "mean latency", "accepted flits/node/cy"
        );
        for rate in [0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40] {
            let mut cfg = NocConfig::paper_baseline();
            cfg.mesh = Mesh::new(k, k);
            cfg.traffic = pattern;
            cfg.injection_rate = rate;
            let (lat, thr) = measure(&cfg, 3_000, 5_000);
            println!("{rate:>8.2} {lat:>14.1} {thr:>20.3}");
        }
    }
    println!(
        "\nExpected shape: near-constant latency at low load; latency blow-up and\n\
         throughput saturation past the congestion knee (earlier for adversarial\n\
         patterns like Transpose/Tornado than for Neighbor)."
    );
}
