//! The fault plane: in-line single-bit fault injection at module boundaries.
//!
//! Every signal a router module consumes or produces is routed through
//! [`FaultPlane::xf`]. When a fault is armed on that exact wire
//! ([`SiteRef`]) and temporally active ([`FaultKind`]), the value comes
//! back with the addressed bit flipped; otherwise it passes through
//! untouched. Both the router's functional logic *and* the observation
//! record consume the transformed value — faults therefore propagate
//! through real state, and checkers see exactly what the hardware wires
//! would carry (Figure 5 of the paper).

use noc_types::site::{FaultKind, SignalKind, SiteRef};
use noc_types::Cycle;
use serde::{Deserialize, Serialize};

/// A fault armed on one site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArmedFault {
    /// The wire bit to corrupt.
    pub site: SiteRef,
    /// Temporal behaviour.
    pub kind: FaultKind,
    /// First cycle at which the fault is (potentially) active.
    pub start: Cycle,
}

/// The injection surface threaded through every router.
///
/// The detection campaigns arm at most one fault at a time, matching the
/// paper's single-fault model; the aging campaign accumulates a growing
/// population of permanents via [`FaultPlane::arm_additional`]. `hits`
/// counts how many times any armed bit actually flipped a live wire (used
/// by coverage tests and the campaign driver to discard vacuous
/// injections). The hot path (no fault, or no fault on this router) stays
/// a couple of compares.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlane {
    faults: Vec<ArmedFault>,
    /// Sorted, deduplicated router ids carrying at least one fault — the
    /// quiescent-router fast path in the network probes this.
    routers: Vec<u16>,
    hits: u64,
}

impl FaultPlane {
    /// A plane with no fault armed.
    pub fn new() -> FaultPlane {
        FaultPlane::default()
    }

    /// Arms `fault`, replacing any previous ones and resetting the hit
    /// count (the single-fault campaign entry point).
    pub fn arm(&mut self, fault: ArmedFault) {
        self.faults.clear();
        self.routers.clear();
        self.hits = 0;
        self.arm_additional(fault);
    }

    /// Arms `fault` on top of whatever is already armed, preserving the
    /// hit count — the accumulating-permanent-fault entry point of the
    /// aging campaign.
    pub fn arm_additional(&mut self, fault: ArmedFault) {
        self.faults.push(fault);
        if let Err(i) = self.routers.binary_search(&fault.site.router) {
            self.routers.insert(i, fault.site.router);
        }
    }

    /// Disarms the plane entirely.
    pub fn disarm(&mut self) {
        self.faults.clear();
        self.routers.clear();
    }

    /// The first armed fault, if any (the single-fault campaigns arm
    /// exactly one, so this is *the* fault for them).
    pub fn armed(&self) -> Option<&ArmedFault> {
        self.faults.first()
    }

    /// Every armed fault, in arming order.
    pub fn armed_all(&self) -> &[ArmedFault] {
        &self.faults
    }

    /// Number of armed faults.
    pub fn fault_count(&self) -> usize {
        self.faults.len()
    }

    /// Whether any armed fault targets `router` — the network's
    /// quiescent-router fast path.
    #[inline]
    pub fn router_armed(&self, router: u16) -> bool {
        match self.routers.len() {
            0 => false,
            1 => self.routers[0] == router,
            _ => self.routers.binary_search(&router).is_ok(),
        }
    }

    /// How many times an armed bit has been flipped on a live wire.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// If the armed fault at `index` is a **transient on a state
    /// register**, and `cycle` is its injection instant, returns the site
    /// so the owner can flip the stored bit in place (a single-event
    /// upset persists until the register is rewritten). Such faults are
    /// *not* applied by [`FaultPlane::xf`]. Index past the fault list
    /// returns `None`, so callers may iterate `0..fault_count()`.
    pub fn register_upset_due_at(&self, index: usize, cycle: Cycle) -> Option<SiteRef> {
        match self.faults.get(index) {
            Some(f)
                if f.kind == FaultKind::Transient
                    && f.site.signal.is_register()
                    && cycle == f.start =>
            {
                Some(f.site)
            }
            _ => None,
        }
    }

    /// [`FaultPlane::register_upset_due_at`] for the single-fault case.
    pub fn register_upset_due(&self, cycle: Cycle) -> Option<SiteRef> {
        self.register_upset_due_at(0, cycle)
    }

    /// Records an out-of-band hit (used when a register upset is applied
    /// directly to stored state).
    pub fn note_hit(&mut self) {
        self.hits += 1;
    }

    /// Transforms the wire `value` of `signal` at instance
    /// `(router, port, vc)` during `cycle`.
    ///
    /// The hot path (no fault armed, or armed on another router) is a
    /// couple of compares.
    #[inline]
    pub fn xf(
        &mut self,
        cycle: Cycle,
        router: u16,
        port: u8,
        vc: u8,
        signal: SignalKind,
        value: u64,
    ) -> u64 {
        if self.faults.is_empty() {
            return value;
        }
        let mut value = value;
        let mut hits = 0u64;
        for f in &self.faults {
            if f.kind == FaultKind::Transient && f.site.signal.is_register() {
                // Register SEUs are applied to the stored value once,
                // not to every read of it.
                continue;
            }
            let s = &f.site;
            if s.router == router
                && s.signal == signal
                && s.port == port
                && s.vc == vc
                && cycle >= f.start
                && f.kind.active_at(cycle - f.start)
            {
                // A hit is only counted when the corrupted level actually
                // differs from the fault-free value (a stuck-at matching
                // the wire is invisible this cycle).
                let faulted = f.kind.apply(value, s.bit);
                if faulted != value {
                    hits += 1;
                }
                value = faulted;
            }
        }
        self.hits += hits;
        value
    }

    /// Boolean-wire convenience wrapper around [`FaultPlane::xf`].
    #[inline]
    pub fn xf_bool(
        &mut self,
        cycle: Cycle,
        router: u16,
        port: u8,
        vc: u8,
        signal: SignalKind,
        value: bool,
    ) -> bool {
        self.xf(cycle, router, port, vc, signal, value as u64) & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> SiteRef {
        SiteRef {
            router: 3,
            port: 1,
            vc: 2,
            signal: SignalKind::RcOutDir,
            bit: 1,
        }
    }

    #[test]
    fn pass_through_when_disarmed() {
        let mut p = FaultPlane::new();
        assert_eq!(p.xf(0, 3, 1, 2, SignalKind::RcOutDir, 0b101), 0b101);
        assert_eq!(p.hits(), 0);
    }

    #[test]
    fn transient_flips_exactly_once_in_time() {
        let mut p = FaultPlane::new();
        p.arm(ArmedFault {
            site: site(),
            kind: FaultKind::Transient,
            start: 10,
        });
        // Before start: untouched.
        assert_eq!(p.xf(9, 3, 1, 2, SignalKind::RcOutDir, 0), 0);
        // At start: bit 1 flipped.
        assert_eq!(p.xf(10, 3, 1, 2, SignalKind::RcOutDir, 0), 0b10);
        // After: untouched.
        assert_eq!(p.xf(11, 3, 1, 2, SignalKind::RcOutDir, 0), 0);
        assert_eq!(p.hits(), 1);
    }

    #[test]
    fn permanent_keeps_flipping() {
        let mut p = FaultPlane::new();
        p.arm(ArmedFault {
            site: site(),
            kind: FaultKind::Permanent,
            start: 5,
        });
        for c in 5..20 {
            assert_eq!(p.xf(c, 3, 1, 2, SignalKind::RcOutDir, 0b100), 0b110);
        }
        assert_eq!(p.hits(), 15);
    }

    #[test]
    fn only_matching_instance_is_hit() {
        let mut p = FaultPlane::new();
        p.arm(ArmedFault {
            site: site(),
            kind: FaultKind::Permanent,
            start: 0,
        });
        // Wrong router / port / vc / signal — untouched.
        assert_eq!(p.xf(1, 4, 1, 2, SignalKind::RcOutDir, 0), 0);
        assert_eq!(p.xf(1, 3, 0, 2, SignalKind::RcOutDir, 0), 0);
        assert_eq!(p.xf(1, 3, 1, 0, SignalKind::RcOutDir, 0), 0);
        assert_eq!(p.xf(1, 3, 1, 2, SignalKind::RcDestX, 0), 0);
        assert_eq!(p.hits(), 0);
    }

    #[test]
    fn bool_wrapper_flips_bit_zero() {
        let mut p = FaultPlane::new();
        let mut s = site();
        s.bit = 0;
        s.signal = SignalKind::BufRead;
        p.arm(ArmedFault {
            site: s,
            kind: FaultKind::Transient,
            start: 0,
        });
        assert!(p.xf_bool(0, 3, 1, 2, SignalKind::BufRead, false));
        assert!(!p.xf_bool(1, 3, 1, 2, SignalKind::BufRead, false));
    }

    #[test]
    fn stuck_at_one_forces_level_and_counts_visible_hits_only() {
        let mut p = FaultPlane::new();
        p.arm(ArmedFault {
            site: site(),
            kind: FaultKind::StuckAt1,
            start: 0,
        });
        // Bit 1 already high: no observable corruption, no hit.
        assert_eq!(p.xf(0, 3, 1, 2, SignalKind::RcOutDir, 0b010), 0b010);
        assert_eq!(p.hits(), 0);
        // Bit 1 low: forced high, hit recorded.
        assert_eq!(p.xf(1, 3, 1, 2, SignalKind::RcOutDir, 0b100), 0b110);
        assert_eq!(p.hits(), 1);
    }

    #[test]
    fn stuck_at_zero_forces_level_and_counts_visible_hits_only() {
        let mut p = FaultPlane::new();
        p.arm(ArmedFault {
            site: site(),
            kind: FaultKind::StuckAt0,
            start: 0,
        });
        assert_eq!(p.xf(0, 3, 1, 2, SignalKind::RcOutDir, 0b101), 0b101);
        assert_eq!(p.hits(), 0);
        assert_eq!(p.xf(1, 3, 1, 2, SignalKind::RcOutDir, 0b111), 0b101);
        assert_eq!(p.hits(), 1);
    }

    #[test]
    fn additional_faults_accumulate_independently() {
        let mut p = FaultPlane::new();
        p.arm(ArmedFault {
            site: site(),
            kind: FaultKind::StuckAt1,
            start: 0,
        });
        let mut s2 = site();
        s2.router = 7;
        s2.bit = 2;
        p.arm_additional(ArmedFault {
            site: s2,
            kind: FaultKind::StuckAt1,
            start: 0,
        });
        assert_eq!(p.fault_count(), 2);
        assert!(p.router_armed(3));
        assert!(p.router_armed(7));
        assert!(!p.router_armed(5));
        assert_eq!(p.xf(1, 3, 1, 2, SignalKind::RcOutDir, 0), 0b010);
        assert_eq!(p.xf(1, 7, 1, 2, SignalKind::RcOutDir, 0), 0b100);
        assert_eq!(p.hits(), 2);
        // arm() replaces the whole population again.
        p.arm(ArmedFault {
            site: site(),
            kind: FaultKind::Transient,
            start: 0,
        });
        assert_eq!(p.fault_count(), 1);
        assert!(!p.router_armed(7));
    }

    #[test]
    fn rearm_resets_hits() {
        let mut p = FaultPlane::new();
        p.arm(ArmedFault {
            site: site(),
            kind: FaultKind::Transient,
            start: 0,
        });
        p.xf(0, 3, 1, 2, SignalKind::RcOutDir, 0);
        assert_eq!(p.hits(), 1);
        p.arm(ArmedFault {
            site: site(),
            kind: FaultKind::Transient,
            start: 5,
        });
        assert_eq!(p.hits(), 0);
    }
}
