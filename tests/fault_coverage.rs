//! Cross-crate consistency: the fault-site catalogue matches the hooks the
//! router actually evaluates.
//!
//! For every enumerated site of a small, fully exercised mesh, arming a
//! *permanent* fault and running traffic must register at least one hit —
//! i.e. the wire named by the catalogue exists and is consulted. A site
//! that can never be hit would silently weaken every campaign result.

use nocalert_repro::prelude::*;

fn busy_cfg() -> NocConfig {
    let mut cfg = NocConfig::paper_baseline();
    cfg.mesh = Mesh::new(2, 2);
    cfg.vcs_per_port = 2;
    cfg.message_classes = 2;
    cfg.packet_lengths = vec![3, 3];
    cfg.injection_rate = 0.35;
    cfg
}

#[test]
fn every_enumerated_site_is_evaluated_by_the_router() {
    let cfg = busy_cfg();
    let sites = enumerate_sites(&cfg);
    assert!(sites.len() > 300, "{} sites", sites.len());

    // One warmed network reused (cloned) for every site.
    let mut base = Network::new(cfg.clone());
    base.run(400);

    let mut unhit = Vec::new();
    for &site in &sites {
        let mut net = base.clone();
        net.arm_fault(site, FaultKind::Permanent, net.cycle());
        net.run(700);
        if net.fault_hits() == 0 {
            unhit.push(site);
        }
    }
    assert!(
        unhit.is_empty(),
        "{} of {} sites never hit: {:?}…",
        unhit.len(),
        sites.len(),
        &unhit[..unhit.len().min(10)]
    );
}

#[test]
fn site_universe_scales_with_router_degree() {
    // The 8×8 universe: corners < edges < interior per-router counts, and
    // the total matches the per-router sum (paper Section 5.2 geometry).
    let cfg = NocConfig::paper_baseline();
    let n_corner = noc_sim::enumerate_router_sites(&cfg, cfg.mesh.node(Coord::new(0, 0))).len();
    let n_edge = noc_sim::enumerate_router_sites(&cfg, cfg.mesh.node(Coord::new(4, 0))).len();
    let n_int = noc_sim::enumerate_router_sites(&cfg, cfg.mesh.node(Coord::new(4, 4))).len();
    assert!(n_corner < n_edge && n_edge < n_int);
    let total = enumerate_sites(&cfg).len();
    assert_eq!(total, 4 * n_corner + 24 * n_edge + 36 * n_int);
}

#[test]
fn transient_wire_faults_hit_at_most_bounded_times_per_cycle() {
    // A transient is active for exactly one cycle; hot wires (arbiter
    // requests) are evaluated once per cycle, so hits is small and bounded.
    let cfg = busy_cfg();
    let mut net = Network::new(cfg);
    net.run(300);
    let site = SiteRef {
        router: 0,
        port: 4,
        vc: 0,
        signal: noc_types::site::SignalKind::Va1Req,
        bit: 0,
    };
    net.arm_fault(site, FaultKind::Transient, net.cycle());
    net.run(50);
    assert_eq!(net.fault_hits(), 1);
}
