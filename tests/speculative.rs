//! Section 4.4: the speculative VA∥SA pipeline variant.
//!
//! Headers save a pipeline stage, the network still delivers everything
//! exactly once in order, the checkers stay silent fault-free (with
//! invariance 17 relaxed as the paper prescribes), and faults are still
//! detected.

use nocalert_repro::prelude::*;
use std::collections::HashMap;

#[derive(Default)]
struct Log {
    injected: u64,
    ejected: Vec<(NodeId, Flit)>,
}

impl Observer for Log {
    fn on_inject(&mut self, _c: u64, _f: &Flit) {
        self.injected += 1;
    }
    fn on_eject(&mut self, ev: &noc_types::record::EjectEvent) {
        self.ejected.push((ev.node, ev.flit));
    }
}

fn run(speculative: bool) -> (f64, Log, AlertBank) {
    let mut cfg = NocConfig::small_test();
    cfg.speculative = speculative;
    cfg.injection_rate = 0.08;
    let mut net = Network::new(cfg.clone());
    let mut bank = AlertBank::new(&cfg);
    let mut log = Log::default();
    for _ in 0..4_000 {
        net.step_observed(&mut (&mut bank, &mut log));
    }
    let drained = net.drain(&mut (&mut bank, &mut log), 15_000);
    assert!(drained);
    (net.stats().mean_latency(), log, bank)
}

#[test]
fn speculative_network_is_correct_and_silent() {
    let (_lat, log, bank) = run(true);
    assert!(
        bank.assertions().is_empty(),
        "speculative fault-free run asserted: {:?}",
        bank.assertions().first()
    );
    let mut seen: HashMap<u64, u32> = HashMap::new();
    for (node, f) in &log.ejected {
        assert_eq!(f.dest, *node);
        *seen.entry(f.uid).or_default() += 1;
    }
    assert!(seen.values().all(|&c| c == 1));
    assert_eq!(log.injected as usize, log.ejected.len());
}

#[test]
fn speculation_reduces_header_latency() {
    let (lat_base, _l1, _b1) = run(false);
    let (lat_spec, _l2, _b2) = run(true);
    assert!(
        lat_spec < lat_base,
        "speculative {lat_spec:.2} >= baseline {lat_base:.2}"
    );
}

#[test]
fn faults_still_detected_in_speculative_mode() {
    let mut cfg = NocConfig::small_test();
    cfg.speculative = true;
    cfg.injection_rate = 0.15;
    let mut net = Network::new(cfg.clone());
    let mut bank = AlertBank::new(&cfg);
    net.run(800);
    net.arm_fault(
        SiteRef {
            router: 5,
            port: 0,
            vc: 0,
            signal: noc_types::site::SignalKind::Sa1Grant,
            bit: 1,
        },
        FaultKind::Permanent,
        net.cycle(),
    );
    for _ in 0..2_000 {
        net.step_observed(&mut bank);
    }
    assert!(net.fault_hits() > 0);
    assert!(bank.any_asserted());
}

#[test]
fn nonspeculative_sa_before_va_still_fires_inv17() {
    // The relaxation must be conditional: in the baseline design, an SA
    // event on a VaPending VC is a violation (paper's Figure 2(b) example).
    use noc_sim::Observer as _;
    let cfg = NocConfig::small_test(); // speculative = false
    let mut bank = AlertBank::new(&cfg);
    let mut rec = noc_types::record::CycleRecord::default();
    rec.reset(1);
    rec.vc.push(noc_types::record::VcEvent {
        port: 0,
        vc: 0,
        state_before: 2, // VaPending
        state_after: 2,
        ev_rc_done: false,
        ev_va_done: false,
        ev_sa_won: true,
        head_kind: 0,
        empty: false,
        out_port: 1,
        out_vc: 0,
    });
    bank.on_cycle_record(7, &rec);
    assert!(bank.asserted_set().contains(&CheckerId(17)));

    // Same record under the speculative configuration: legal.
    let mut spec_cfg = NocConfig::small_test();
    spec_cfg.speculative = true;
    let mut bank2 = AlertBank::new(&spec_cfg);
    bank2.on_cycle_record(7, &rec);
    assert!(!bank2.asserted_set().contains(&CheckerId(17)));
}
