//! Determinism of the closed-loop recovery harness: the same seed and
//! fault spec must reproduce a byte-identical recovery trace and
//! aggregates for every fault class. Containment decisions, ARQ timer
//! fires and degraded-routing choices are all part of the simulated
//! machine, so nothing about a rerun may depend on host state.

use fault::{FaultSpec, Watchdog};
use golden::{RecoveryHarness, RecoveryOptions};
use noc_types::NocConfig;

fn quick_cfg() -> NocConfig {
    let mut cfg = NocConfig::small_test();
    // The recovery campaign's pooled-class shape: quarantine must always
    // leave a sibling VC for the class the faulty one carried.
    cfg.vcs_per_port = 2;
    cfg.message_classes = 1;
    cfg.packet_lengths = vec![5];
    cfg.injection_rate = 0.05;
    cfg
}

fn quick_opts() -> RecoveryOptions {
    RecoveryOptions {
        warmup: 200,
        active_window: 1_500,
        watchdog: Watchdog {
            cycle_budget: 80_000,
            stall_window: 1_500,
        },
        ..RecoveryOptions::paper_defaults()
    }
}

fn roundtrip(spec: &FaultSpec) -> (String, String) {
    let h = RecoveryHarness::try_new(quick_cfg(), quick_opts()).expect("valid options");
    let a = h.run(Some(spec));
    let b = h.run(Some(spec));
    (
        serde_json::to_string(&a).expect("serializable run"),
        serde_json::to_string(&b).expect("serializable run"),
    )
}

#[test]
fn recovery_runs_are_byte_identical_per_class() {
    let cfg = quick_cfg();
    let sites = fault::enumerate_sites(&cfg);
    let site = sites[sites.len() / 3];
    let specs = [
        FaultSpec::transient(site, 900),
        FaultSpec::intermittent(site, 50, 10, 900),
        FaultSpec::permanent(site, 900),
        FaultSpec::stuck_at(site, false, 900),
        FaultSpec::stuck_at(site, true, 900),
    ];
    for spec in &specs {
        let (a, b) = roundtrip(spec);
        assert_eq!(a, b, "rerun diverged for {:?}", spec.kind);
    }
}

#[test]
fn fault_free_baseline_is_deterministic_too() {
    let h = RecoveryHarness::try_new(quick_cfg(), quick_opts()).expect("valid options");
    let a = serde_json::to_string(&h.run(None)).expect("serializable run");
    let b = serde_json::to_string(&h.run(None)).expect("serializable run");
    assert_eq!(a, b);
}

#[test]
fn different_seeds_change_the_trace_inputs() {
    // Sanity check that the byte-equality above is not vacuous: a
    // different seed must change the workload (offered traffic), or the
    // determinism assertion would pass on a constant function.
    let opts = quick_opts();
    let mut cfg_a = quick_cfg();
    cfg_a.seed = 11;
    let mut cfg_b = quick_cfg();
    cfg_b.seed = 12;
    let ha = RecoveryHarness::try_new(cfg_a, opts).expect("valid options");
    let hb = RecoveryHarness::try_new(cfg_b, opts).expect("valid options");
    let ra = ha.run(None);
    let rb = hb.run(None);
    assert_ne!(
        serde_json::to_string(&ra.deliveries).expect("serializable"),
        serde_json::to_string(&rb.deliveries).expect("serializable"),
        "distinct seeds should offer distinct traffic"
    );
}
