//! The simulator-side error taxonomy.
//!
//! [`SimError`] is the structured alternative to the `unwrap()`/`panic!`
//! calls that used to guard the simulator's entry points: every variant
//! carries the site/cycle/router context a campaign needs to report a
//! failed run without groveling through a panic payload. Campaign-level
//! failures (warm-up violations, checkpoint I/O, determinism violations)
//! have their own taxonomy, `CampaignError`, in the `nocalert-golden`
//! crate, which wraps this one.

use crate::config::ConfigError;
use crate::site::SiteRef;
use crate::Cycle;
use std::fmt;

/// A structured simulator failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The configuration failed [`crate::NocConfig::validate`].
    Config(ConfigError),
    /// A fault site references a router outside the mesh.
    SiteOutOfMesh {
        /// The offending site.
        site: SiteRef,
        /// Number of routers in the configured mesh.
        routers: u16,
    },
    /// A fault spec is temporally malformed (e.g. an intermittent fault
    /// with a zero period, which has no defined activity pattern).
    FaultSpecInvalid {
        /// The offending site.
        site: SiteRef,
        /// What is wrong with the spec.
        reason: &'static str,
    },
    /// An attack spec is malformed: it targets a router outside the mesh
    /// (or one already quarantined by the containment plane — a dead
    /// router cannot attack) or carries a degenerate behavioural
    /// parameter such as a zero selection period.
    AttackSpecInvalid {
        /// The compromised router the spec names.
        router: u16,
        /// What is wrong with the spec.
        reason: &'static str,
    },
    /// A watchdog policy is malformed (e.g. a zero cycle budget or stall
    /// window, which would terminate every run before its first cycle).
    WatchdogInvalid {
        /// What is wrong with the policy.
        reason: &'static str,
    },
    /// An end-to-end reliability (ARQ) configuration is malformed (e.g. a
    /// zero acknowledgement timeout, which would retransmit every cycle).
    ArqInvalid {
        /// What is wrong with the configuration.
        reason: &'static str,
    },
    /// The simulator reached an internally inconsistent state — the
    /// replacement for a bare panic deep in a router model, annotated
    /// with where and when.
    Internal {
        /// Router index the inconsistency was observed at (if known).
        router: Option<u16>,
        /// Simulation cycle.
        cycle: Cycle,
        /// Description of the invariant that broke.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "{e}"),
            SimError::SiteOutOfMesh { site, routers } => {
                write!(
                    f,
                    "fault site {site} targets router {} but the mesh has {routers} routers",
                    site.router
                )
            }
            SimError::FaultSpecInvalid { site, reason } => {
                write!(f, "invalid fault spec at {site}: {reason}")
            }
            SimError::AttackSpecInvalid { router, reason } => {
                write!(f, "invalid attack spec at router {router}: {reason}")
            }
            SimError::WatchdogInvalid { reason } => {
                write!(f, "invalid watchdog policy: {reason}")
            }
            SimError::ArqInvalid { reason } => {
                write!(f, "invalid ARQ configuration: {reason}")
            }
            SimError::Internal {
                router,
                cycle,
                detail,
            } => match router {
                Some(r) => write!(
                    f,
                    "simulator invariant broken at router {r}, cycle {cycle}: {detail}"
                ),
                None => write!(f, "simulator invariant broken at cycle {cycle}: {detail}"),
            },
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> SimError {
        SimError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::SignalKind;

    #[test]
    fn display_carries_context() {
        let site = SiteRef {
            router: 99,
            port: 1,
            vc: 0,
            signal: SignalKind::RcOutDir,
            bit: 2,
        };
        let e = SimError::SiteOutOfMesh { site, routers: 16 };
        let s = e.to_string();
        assert!(s.contains("99") && s.contains("16"), "{s}");

        let e = SimError::Internal {
            router: Some(7),
            cycle: 1234,
            detail: "credit underflow".into(),
        };
        let s = e.to_string();
        assert!(s.contains("router 7") && s.contains("1234") && s.contains("credit underflow"));
    }
}
