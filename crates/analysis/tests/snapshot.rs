//! Pins the stable subset of `noc-lint --json` output on the canonical
//! (seed) configuration against a committed snapshot.
//!
//! The snapshot freezes the *verified claims* — configuration, coverage
//! statistics, proof case counts and the (empty) error list — while
//! excluding volatile fields like scanned-file counts and info-level
//! diagnostics whose line numbers move with every edit. To regenerate
//! after an intentional change:
//!
//! ```text
//! NOC_LINT_BLESS=1 cargo test -p nocalert-analysis --test snapshot
//! ```

use nocalert_analysis::{canonical_config, find_repo_root, run, PassSelection, SCHEMA_VERSION};
use std::path::Path;

#[test]
fn canonical_json_report_matches_committed_snapshot() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = match find_repo_root(manifest) {
        Some(r) => r,
        None => panic!("repository root not found from {manifest:?}"),
    };
    let report = run(
        &canonical_config(),
        &root,
        &root.join("noc-lint.allow"),
        PassSelection::default(),
        1,
        None,
    );
    assert!(report.clean(), "{:#?}", report.diagnostics);
    assert_eq!(report.schema_version, SCHEMA_VERSION);

    let snapshot = report.snapshot();
    assert_eq!(
        snapshot.get("schema_version").and_then(|v| v.as_u64()),
        Some(SCHEMA_VERSION as u64),
        "the snapshot must carry the schema version"
    );

    let mut actual = String::new();
    snapshot.write_json_pretty(&mut actual);
    actual.push('\n');

    let snap_path = manifest.join("tests/snapshots/canonical.json");
    if std::env::var_os("NOC_LINT_BLESS").is_some() {
        if let Some(dir) = snap_path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&snap_path, &actual) {
            Ok(()) => return,
            Err(e) => panic!("could not bless {}: {e}", snap_path.display()),
        }
    }
    let expected = std::fs::read_to_string(&snap_path).unwrap_or_default();
    assert_eq!(
        actual.trim(),
        expected.trim(),
        "noc-lint canonical JSON snapshot drifted; if the change is \
         intentional, rerun with NOC_LINT_BLESS=1"
    );
}
