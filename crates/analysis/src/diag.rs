//! Structured diagnostics — the output vocabulary of every `noc-lint` pass.
//!
//! Each finding is a [`Diagnostic`] with a stable code (`NL1xx` coverage,
//! `NL2xx` proving, `NL3xx` lint, `NL4xx` static detectability, `NL5xx`
//! recovery-plane model checking), a severity, and whatever provenance the
//! pass can attach: a fault site, a checker id, or a source location. The
//! driver renders them for humans or as JSON (`--json`), and CI fails on
//! any [`Severity::Error`].

use serde::Serialize;
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Severity {
    /// Informational note (e.g. an allowlisted lint hit, a sole-observer
    /// redundancy report).
    Info,
    /// Suspicious but not gating.
    Warning,
    /// Gating: the static claim does not hold. `noc-lint` exits non-zero.
    Error,
}

/// Which analysis pass produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Pass {
    /// Pass 1: checker-coverage / blind-spot analysis over the signal graph.
    Coverage,
    /// Pass 2: exhaustive invariant proving over small combinational cones.
    Prove,
    /// Pass 3: source-level repo lints.
    Lint,
    /// Pass 4: static fault detectability (ATPG-style detect-or-masked
    /// proofs over the containment-covered sites).
    Detect,
    /// Pass 5: explicit-state model checking of the recovery plane
    /// (escalation ladder × ARQ product space).
    Model,
}

impl Pass {
    /// All passes, in pipeline order.
    pub const ALL: [Pass; 5] = [
        Pass::Coverage,
        Pass::Prove,
        Pass::Detect,
        Pass::Model,
        Pass::Lint,
    ];
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Pass::Coverage => "coverage",
            Pass::Prove => "prove",
            Pass::Lint => "lint",
            Pass::Detect => "detect",
            Pass::Model => "model",
        })
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Diagnostic {
    /// Producing pass.
    pub pass: Pass,
    /// Stable machine-readable code (`NL101`, `NL210`, ...).
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// Fault-site provenance (`n3/RC[p1]/RcOutDir.2`), when site-scoped.
    pub site: Option<String>,
    /// Checker provenance (Table-1 number), when checker-scoped.
    pub checker: Option<u8>,
    /// Source file (repo-relative), when source-scoped.
    pub file: Option<String>,
    /// 1-based line number, when source-scoped.
    pub line: Option<u32>,
}

impl Diagnostic {
    /// A bare diagnostic with no provenance attached.
    pub fn new(pass: Pass, code: &'static str, severity: Severity, message: String) -> Diagnostic {
        Diagnostic {
            pass,
            code,
            severity,
            message,
            site: None,
            checker: None,
            file: None,
            line: None,
        }
    }

    /// Attaches fault-site provenance.
    pub fn with_site(mut self, site: impl fmt::Display) -> Diagnostic {
        self.site = Some(site.to_string());
        self
    }

    /// Attaches checker provenance.
    pub fn with_checker(mut self, id: u8) -> Diagnostic {
        self.checker = Some(id);
        self
    }

    /// Attaches source provenance.
    pub fn with_source(mut self, file: impl Into<String>, line: u32) -> Diagnostic {
        self.file = Some(file.into());
        self.line = Some(line);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{sev}[{}/{}]", self.code, self.pass)?;
        if let (Some(file), Some(line)) = (&self.file, self.line) {
            write!(f, " {file}:{line}")?;
        }
        if let Some(site) = &self.site {
            write!(f, " {site}")?;
        }
        if let Some(c) = self.checker {
            write!(f, " inv{c}")?;
        }
        write!(f, ": {}", self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_info_below_error() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn display_includes_provenance() {
        let d = Diagnostic::new(
            Pass::Lint,
            "NL301",
            Severity::Error,
            "forbidden call".into(),
        )
        .with_source("crates/x/src/lib.rs", 12);
        let s = d.to_string();
        assert!(s.contains("error[NL301/lint]"), "{s}");
        assert!(s.contains("crates/x/src/lib.rs:12"), "{s}");
    }

    /// Every stable code in the catalogue with its producing pass — kept
    /// in sync by `round_trips_every_code_through_json_and_renderer`
    /// failing when a pass emits a code this table does not know.
    const CATALOGUE: &[(&str, Pass)] = &[
        ("NL101", Pass::Coverage),
        ("NL102", Pass::Coverage),
        ("NL103", Pass::Coverage),
        ("NL110", Pass::Coverage),
        ("NL120", Pass::Coverage),
        ("NL201", Pass::Prove),
        ("NL211", Pass::Prove),
        ("NL212", Pass::Prove),
        ("NL213", Pass::Prove),
        ("NL214", Pass::Prove),
        ("NL215", Pass::Prove),
        ("NL216", Pass::Prove),
        ("NL217", Pass::Prove),
        ("NL218", Pass::Prove),
        ("NL221", Pass::Prove),
        ("NL231", Pass::Prove),
        ("NL232", Pass::Prove),
        ("NL233", Pass::Prove),
        ("NL234", Pass::Prove),
        ("NL235", Pass::Prove),
        ("NL236", Pass::Prove),
        ("NL290", Pass::Prove),
        ("NL301", Pass::Lint),
        ("NL302", Pass::Lint),
        ("NL303", Pass::Lint),
        ("NL304", Pass::Lint),
        ("NL305", Pass::Lint),
        ("NL311", Pass::Lint),
        ("NL312", Pass::Lint),
        ("NL390", Pass::Lint),
        ("NL401", Pass::Detect),
        ("NL402", Pass::Detect),
        ("NL403", Pass::Detect),
        ("NL404", Pass::Detect),
        ("NL501", Pass::Model),
        ("NL502", Pass::Model),
        ("NL503", Pass::Model),
        ("NL504", Pass::Model),
        ("NL505", Pass::Model),
    ];

    /// The catalogue covers every code the source tree emits: scan the
    /// crate sources for `"NLxxx"` literals and require each to appear in
    /// `CATALOGUE` (and vice versa for the emitting pass's range).
    #[test]
    fn catalogue_matches_source_tree() {
        let src_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
        let mut emitted = std::collections::BTreeSet::new();
        let mut stack = vec![src_dir];
        while let Some(dir) = stack.pop() {
            for entry in std::fs::read_dir(&dir).unwrap() {
                let path = entry.unwrap().path();
                if path.is_dir() {
                    stack.push(path);
                } else if path.extension().is_some_and(|e| e == "rs")
                    && path.file_name().is_some_and(|n| n != "diag.rs")
                {
                    let text = std::fs::read_to_string(&path).unwrap();
                    let bytes = text.as_bytes();
                    let mut i = 0;
                    while let Some(off) = text[i..].find("\"NL") {
                        let start = i + off + 1;
                        let end = start
                            + text[start..]
                                .find('"')
                                .expect("unterminated NL code literal");
                        let code = &text[start..end];
                        if code.len() == 5 && bytes[start + 2..end].iter().all(u8::is_ascii_digit) {
                            emitted.insert(code.to_string());
                        }
                        i = end + 1;
                    }
                }
            }
        }
        for code in &emitted {
            assert!(
                CATALOGUE.iter().any(|(c, _)| c == code),
                "code {code} is emitted but missing from diag.rs CATALOGUE"
            );
        }
        for (code, _) in CATALOGUE {
            assert!(
                emitted.contains(*code),
                "catalogued code {code} is emitted nowhere in src/"
            );
        }
    }

    /// Satellite: every severity × catalogued code round-trips through
    /// the JSON serializer and the human renderer without losing the
    /// code, pass, severity, or provenance.
    #[test]
    fn round_trips_every_code_through_json_and_renderer() {
        for &(code, pass) in CATALOGUE {
            for severity in [Severity::Info, Severity::Warning, Severity::Error] {
                let d = Diagnostic::new(pass, code, severity, format!("probe for {code}"))
                    .with_site("n3/RC[p1]/RcOutDir.2")
                    .with_checker(17)
                    .with_source("crates/x/src/lib.rs", 42);

                // JSON round-trip: serialize, re-parse, compare fields.
                let json = serde_json::to_string(&d).unwrap();
                let v: serde::Value = serde_json::from_str(&json).unwrap();
                assert_eq!(v.get("code").and_then(|c| c.as_str()), Some(code));
                assert_eq!(
                    v.get("pass").and_then(|p| p.as_str()),
                    Some(format!("{pass:?}").as_str()),
                    "pass tag must serialize as the variant name"
                );
                let sev_name = format!("{severity:?}");
                assert_eq!(
                    v.get("severity").and_then(|s| s.as_str()),
                    Some(sev_name.as_str())
                );
                assert_eq!(
                    v.get("site").and_then(|s| s.as_str()),
                    Some("n3/RC[p1]/RcOutDir.2")
                );
                assert_eq!(v.get("checker").and_then(|c| c.as_u64()), Some(17));
                assert_eq!(v.get("line").and_then(|l| l.as_u64()), Some(42));
                assert_eq!(
                    v.get("message").and_then(|m| m.as_str()),
                    Some(format!("probe for {code}").as_str())
                );

                // Human renderer: code, pass name, severity word, and all
                // provenance must appear.
                let human = d.to_string();
                let sev_word = match severity {
                    Severity::Info => "info",
                    Severity::Warning => "warning",
                    Severity::Error => "error",
                };
                assert!(
                    human.starts_with(&format!("{sev_word}[{code}/{pass}]")),
                    "{human}"
                );
                assert!(human.contains("crates/x/src/lib.rs:42"), "{human}");
                assert!(human.contains("n3/RC[p1]/RcOutDir.2"), "{human}");
                assert!(human.contains("inv17"), "{human}");
                assert!(human.contains(&format!("probe for {code}")), "{human}");
            }
        }
    }

    #[test]
    fn site_and_checker_provenance_render() {
        let d = Diagnostic::new(
            Pass::Coverage,
            "NL110",
            Severity::Error,
            "blind spot".into(),
        )
        .with_site("n0/RC[p0]/RcOutDir.0")
        .with_checker(3);
        let s = d.to_string();
        assert!(s.contains("n0/RC[p0]/RcOutDir.0"), "{s}");
        assert!(s.contains("inv3"), "{s}");
    }
}
