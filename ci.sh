#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run before pushing; everything must pass with zero warnings.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== noc-lint (static verification) =="
# Fan the heavier passes out across the runner's cores (stdout is
# byte-identical for every --jobs value) and report per-pass wall-clock
# timing on stderr.
JOBS="$(nproc 2>/dev/null || echo 2)"
cargo run -q --release -p nocalert-analysis --bin noc-lint -- --jobs "$JOBS" --timings

echo "== recovery smoke (one fault per class, 100% delivery) =="
cargo run -q --release -p nocalert-bench --bin recovery -- --smoke

echo "== attack smoke (every attacker model loud: detected or mitigated) =="
cargo run -q --release -p nocalert-bench --bin attack -- --smoke

echo "== aging smoke (accumulating faults to an honest partition) =="
cargo run -q --release -p nocalert-bench --bin aging -- --smoke

echo "== perf smoke (>15% cycles/sec + campaign runs/sec regression gate) =="
cargo run -q --release -p nocalert-bench --bin perf -- --smoke

echo "== cargo test =="
cargo test -q --workspace

echo "CI OK"
