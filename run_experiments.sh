#!/bin/bash
# Regenerates every paper artifact; outputs under results/.
set -e
cd "$(dirname "$0")"
SITES=${1:-600}
WARM=${2:-32000}
BIN="cargo run --release -q -p nocalert-bench --bin"
$BIN table1 | tee results/table1.txt
$BIN sites  | tee results/sites.txt
$BIN fig10 -- --json results/fig10.json | tee results/fig10.txt
$BIN fig6 -- --sites $SITES --warm $WARM --json results/fig6.json | tee results/fig6.txt
$BIN fig7 -- --sites $SITES --warm $WARM --json results/fig7.json | tee results/fig7.txt
$BIN fig8 -- --sites $SITES --warm $WARM --json results/fig8.json | tee results/fig8.txt
$BIN fig9 -- --sites $SITES --warm $WARM --json results/fig9.json | tee results/fig9.txt
$BIN obs5 -- --sites $SITES --warm $WARM | tee results/obs5.txt
$BIN obs3 -- --sites 40 --warm 8000 | tee results/obs3.txt
# Extensions beyond the paper (optional; comment out for a faster run):
$BIN diagnose -- --sites 250 --warm 3000 | tee results/diagnose.txt
$BIN exposure -- --sites 300 --warm 16000 | tee results/exposure.txt
$BIN ablate -- --sites 60 --warm 3000 | tee results/ablate.txt
echo ALL_EXPERIMENTS_DONE
