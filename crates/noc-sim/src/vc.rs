//! Per-VC pipeline state and per-output-port allocation bookkeeping.
//!
//! Each input VC owns a status table (Figure 2(b) of the paper): a 2-bit
//! pipeline state plus the latched RC result (output port) and VA result
//! (downstream VC). The state is stored **as raw bits** and every use goes
//! through the fault plane, so a flipped state register misbehaves in every
//! stage that reads it — the consistency checks of invariance 17 exist
//! precisely because of this failure mode.

use crate::buffer::VcBuffer;
use serde::{Deserialize, Serialize};

/// Raw state encodings of the 2-bit VC pipeline state register.
pub mod state {
    /// VC is free: no packet owns it.
    pub const IDLE: u64 = 0;
    /// A header is buffered and awaits Routing Computation.
    pub const ROUTING: u64 = 1;
    /// RC done ("VA done = 0" in Figure 2(b)); awaiting VC allocation.
    pub const VA_PENDING: u64 = 2;
    /// VA done; flits contend for the switch.
    pub const ACTIVE: u64 = 3;
}

/// One virtual channel of an input port.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VirtualChannel {
    /// The flit FIFO.
    pub buffer: VcBuffer,
    /// Raw 2-bit pipeline state (see [`state`]).
    pub state: u64,
    /// Raw 3-bit latched RC output direction.
    pub out_port: u64,
    /// Raw latched downstream VC index.
    pub out_vc: u64,
    /// Flits of the current packet that have arrived (for invariance 28).
    pub arrived: u16,
    /// Whether the previously written flit was a tail (for invariance 27);
    /// starts `true` so the first flit into a fresh VC must be a header.
    pub prev_written_was_tail: bool,
}

impl VirtualChannel {
    /// A fresh, idle VC with a buffer of `depth` slots.
    pub fn new(depth: u8) -> VirtualChannel {
        VirtualChannel {
            buffer: VcBuffer::new(depth),
            state: state::IDLE,
            out_port: 0,
            out_vc: 0,
            arrived: 0,
            prev_written_was_tail: true,
        }
    }

    /// Resets the table after the current packet's tail has left.
    ///
    /// Write-side bookkeeping (`arrived`, `prev_written_was_tail`) is *not*
    /// touched: with non-atomic buffers the next packet may already be
    /// arriving while this one drains.
    pub fn release(&mut self) {
        self.state = state::IDLE;
        self.out_port = 0;
        self.out_vc = 0;
    }
}

/// Downstream bookkeeping of one output port: which downstream VCs are
/// allocatable and how many buffer slots (credits) each has left.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutputPort {
    /// False for off-mesh (edge/corner) ports: no neighbour exists.
    pub live: bool,
    /// Per downstream VC: free for a new wormhole?
    pub free: Vec<bool>,
    /// Per downstream VC: remaining credits.
    pub credits: Vec<u8>,
    /// Per downstream VC: the local input `(port, vc)` currently holding
    /// the allocation (diagnostics; not a wire).
    pub owner: Vec<Option<(u8, u8)>>,
}

impl OutputPort {
    /// A live/dead output port toward a neighbour with `vcs` VCs of
    /// `depth`-flit buffers.
    pub fn new(live: bool, vcs: u8, depth: u8) -> OutputPort {
        OutputPort {
            live,
            free: vec![live; vcs as usize],
            credits: vec![if live { depth } else { 0 }; vcs as usize],
            owner: vec![None; vcs as usize],
        }
    }

    /// Bitmask over downstream VCs that are free (allocatable).
    pub fn free_mask(&self) -> u64 {
        self.free
            .iter()
            .enumerate()
            .filter(|(_, f)| **f)
            .fold(0u64, |m, (i, _)| m | 1 << i)
    }

    /// Lowest free VC within `[lo, hi)` (a message-class partition).
    pub fn lowest_free_in(&self, lo: u8, hi: u8) -> Option<u8> {
        (lo..hi.min(self.free.len() as u8)).find(|&v| self.free[v as usize])
    }

    /// Marks `vc` allocated to `owner`. Out-of-range indices (which only a
    /// fault can produce) are ignored — the demux simply selects nothing.
    pub fn allocate(&mut self, vc: u64, owner: (u8, u8)) {
        if let Some(slot) = self.free.get_mut(vc as usize) {
            *slot = false;
            self.owner[vc as usize] = Some(owner);
        }
    }

    /// Releases `vc` for a new wormhole.
    pub fn release(&mut self, vc: u64) {
        if let Some(slot) = self.free.get_mut(vc as usize) {
            *slot = true;
            self.owner[vc as usize] = None;
        }
    }

    /// Consumes one credit of `vc` (saturating: a faulty double-send cannot
    /// underflow the counter).
    pub fn consume_credit(&mut self, vc: u64) {
        if let Some(c) = self.credits.get_mut(vc as usize) {
            *c = c.saturating_sub(1);
        }
    }

    /// Returns one credit of `vc`, capped at the buffer depth.
    pub fn return_credit(&mut self, vc: u64, depth: u8) {
        if let Some(c) = self.credits.get_mut(vc as usize) {
            *c = (*c + 1).min(depth);
        }
    }

    /// Whether `vc` has at least one credit. Out-of-range → `false`.
    pub fn has_credit(&self, vc: u64) -> bool {
        self.credits.get(vc as usize).is_some_and(|&c| c > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_vc_is_idle_and_expects_header() {
        let vc = VirtualChannel::new(5);
        assert_eq!(vc.state, state::IDLE);
        assert!(vc.prev_written_was_tail);
        assert!(vc.buffer.is_empty());
    }

    #[test]
    fn release_resets_table() {
        let mut vc = VirtualChannel::new(5);
        vc.state = state::ACTIVE;
        vc.out_port = 3;
        vc.out_vc = 2;
        vc.arrived = 5;
        vc.release();
        assert_eq!(vc.state, state::IDLE);
        assert_eq!(vc.out_port, 0);
        assert_eq!(vc.arrived, 5, "write-side counter untouched by release");
    }

    #[test]
    fn output_port_alloc_release_cycle() {
        let mut op = OutputPort::new(true, 4, 5);
        assert_eq!(op.free_mask(), 0b1111);
        assert_eq!(op.lowest_free_in(2, 4), Some(2));
        op.allocate(2, (1, 0));
        assert_eq!(op.free_mask(), 0b1011);
        assert_eq!(op.lowest_free_in(2, 4), Some(3));
        assert_eq!(op.owner[2], Some((1, 0)));
        op.release(2);
        assert_eq!(op.free_mask(), 0b1111);
        assert_eq!(op.owner[2], None);
    }

    #[test]
    fn out_of_range_allocation_is_ignored() {
        let mut op = OutputPort::new(true, 4, 5);
        op.allocate(9, (0, 0));
        assert_eq!(op.free_mask(), 0b1111);
        op.release(9);
        op.consume_credit(9);
        assert!(!op.has_credit(9));
    }

    #[test]
    fn credits_saturate_both_ways() {
        let mut op = OutputPort::new(true, 2, 3);
        assert!(op.has_credit(0));
        for _ in 0..5 {
            op.consume_credit(0);
        }
        assert!(!op.has_credit(0));
        for _ in 0..10 {
            op.return_credit(0, 3);
        }
        assert_eq!(op.credits[0], 3);
    }

    #[test]
    fn dead_port_has_nothing() {
        let op = OutputPort::new(false, 4, 5);
        assert_eq!(op.free_mask(), 0);
        assert!(!op.has_credit(0));
        assert_eq!(op.lowest_free_in(0, 4), None);
    }
}
