//! **Exposure window** — extension experiment quantifying why detection
//! latency matters (the paper's Section 2 argument: "delayed detection
//! will necessitate the presence and invocation of checkpointing
//! mechanisms").
//!
//! For every true-positive fault, the *exposure window* is the number of
//! flits the system keeps committing into the network between the fault's
//! occurrence and its detection — everything a recovery mechanism must be
//! able to roll back or re-send. NoCAlert's same-cycle detection keeps
//! this near zero; ForEVeR's epoch granularity multiplies it by orders of
//! magnitude.
//!
//! ```text
//! cargo run --release -p nocalert-bench --bin exposure -- [--sites N] \
//!     [--warm W] [--threads T] \
//!     [--checkpoint-dir D] [--resume]
//! ```

use golden::{Detector, Outcome};
use nocalert_bench::{row, Args, Experiment};

fn main() {
    let args = Args::from_env();
    let exp = Experiment::from_args(&args);
    let warm: u64 = args.get("warm", 16_000);

    println!("== Exposure window: flits injected between fault and detection ==");
    let (_c, results) = exp.run_campaign(warm);

    // Flits enter the network at `injection_rate × nodes` per cycle; the
    // expected exposure is latency × that rate. Report both detectors.
    let flits_per_cycle = exp.noc.injection_rate * exp.noc.mesh.len() as f64;
    for d in [Detector::NoCAlert, Detector::ForEVeR] {
        let lats: Vec<u64> = results
            .iter()
            .filter(|r| r.outcome(d) == Outcome::TruePositive)
            .filter_map(|r| r.latency(d))
            .collect();
        if lats.is_empty() {
            continue;
        }
        let mean_lat = lats.iter().sum::<u64>() as f64 / lats.len() as f64;
        let max_lat = lats.iter().copied().max().unwrap_or(0);
        println!("\n{d:?} ({} true positives):", lats.len());
        row("mean detection latency", format!("{mean_lat:.1} cycles"));
        row(
            "mean exposure",
            format!("{:.0} flits", mean_lat * flits_per_cycle),
        );
        row(
            "worst-case exposure",
            format!("{:.0} flits", max_lat as f64 * flits_per_cycle),
        );
    }
    println!(
        "\nA recovery scheme driven by NoCAlert can react before the faulty\n\
         state contaminates more than a handful of in-flight flits; driven by\n\
         an epoch-based detector it must checkpoint thousands."
    );
}
