//! Bit-lane (structure-of-arrays) signal representation.
//!
//! NoCAlert's invariance checkers are tiny combinational predicates over
//! single wire bits, which makes them ideal for data-parallel bitwise
//! evaluation: instead of one `(value, predicate)` evaluation per wire
//! instance, up to [`LANES`] instances are packed side by side — lane `l`
//! is bit `l` of every word — and the predicate runs once as a handful of
//! wide bitwise ops. Two layers consume this vocabulary:
//!
//! * the checker bank packs each cycle record's arbiter and VC-state
//!   events into lanes and evaluates the batched predicate forms in
//!   `nocalert::batched` (one pass per record instead of one per event);
//! * the campaign engine identifies lanes with rollouts/probes (the fault
//!   plane's per-router `u64` masks and probe batches in `noc-sim`).
//!
//! A W-bit signal is stored *bit-transposed* as a [`SignalPlane`]: plane
//! `b` is a `u64` holding bit `b` of the signal for every lane. A
//! predicate over the signal then maps AND/OR/XOR of scalar bits to the
//! same ops on whole planes, evaluating all lanes at once. The scalar
//! predicates remain the single source of truth; the batched forms are
//! proven equivalent lane-by-lane by the `noc-lint` pass-2 prover.

use crate::site::FaultKind;

/// Maximum number of parallel lanes — the width of the host word.
pub const LANES: usize = 64;

/// A set of up to [`LANES`] parallel evaluation lanes, one bit per lane.
///
/// Returned by batched predicates: bit `l` set means the predicate fired
/// in lane `l`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BitLanes(pub u64);

impl BitLanes {
    /// No lane set.
    pub const EMPTY: BitLanes = BitLanes(0);

    /// The mask with the first `n` lanes set (`n` ≥ 64 sets all lanes).
    #[inline]
    pub fn first(n: usize) -> BitLanes {
        if n >= LANES {
            BitLanes(u64::MAX)
        } else {
            BitLanes((1u64 << n) - 1)
        }
    }

    /// Whether lane `l` is set (`false` for out-of-range lanes).
    #[inline]
    pub fn get(self, l: usize) -> bool {
        l < LANES && (self.0 >> l) & 1 == 1
    }

    /// Sets lane `l` (out-of-range lanes are ignored).
    #[inline]
    pub fn set(&mut self, l: usize) {
        if l < LANES {
            self.0 |= 1u64 << l;
        }
    }

    /// True when no lane is set.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of set lanes.
    #[inline]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Union of two lane sets.
    #[inline]
    pub fn or(self, other: BitLanes) -> BitLanes {
        BitLanes(self.0 | other.0)
    }
}

/// A W-bit signal across up to [`LANES`] parallel lanes, bit-transposed:
/// `plane(b)` holds bit `b` of the signal for every lane (lane `l` = bit
/// `l` of the plane word).
///
/// Unloaded lanes read as all-zero wires; [`SignalPlane::live`] tracks
/// which lanes were actually loaded so consumers can ignore the rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignalPlane<const W: usize> {
    planes: [u64; W],
    live: u64,
}

impl<const W: usize> Default for SignalPlane<W> {
    fn default() -> SignalPlane<W> {
        SignalPlane::new()
    }
}

impl<const W: usize> SignalPlane<W> {
    /// An empty plane set (all lanes zero, none live).
    #[inline]
    pub fn new() -> SignalPlane<W> {
        SignalPlane {
            planes: [0; W],
            live: 0,
        }
    }

    /// Whether `value` fits the signal's W-bit width.
    #[inline]
    pub fn fits(value: u64) -> bool {
        W >= 64 || value < (1u64 << W)
    }

    /// Loads `value` into lane `l`, scattering its bits across the
    /// planes. Returns `false` (and loads nothing) when the lane is out
    /// of range or the value does not fit W bits — the caller falls back
    /// to the scalar predicate for that instance.
    #[inline]
    pub fn set_lane(&mut self, l: usize, value: u64) -> bool {
        if l >= LANES || !Self::fits(value) {
            return false;
        }
        let bit = 1u64 << l;
        for (b, plane) in self.planes.iter_mut().enumerate() {
            if (value >> b) & 1 == 1 {
                *plane |= bit;
            } else {
                *plane &= !bit;
            }
        }
        self.live |= bit;
        true
    }

    /// Gathers lane `l` back into a scalar value (0 for out-of-range or
    /// never-loaded lanes).
    #[inline]
    pub fn lane(&self, l: usize) -> u64 {
        if l >= LANES {
            return 0;
        }
        let mut v = 0u64;
        for (b, plane) in self.planes.iter().enumerate() {
            v |= ((plane >> l) & 1) << b;
        }
        v
    }

    /// Bit-plane `b`: bit `b` of the signal across all lanes. Planes at
    /// or above W are all-zero (missing wire bits read as 0, like
    /// hardware inputs tied low).
    #[inline]
    pub fn plane(&self, b: usize) -> u64 {
        if b < W {
            self.planes[b]
        } else {
            0
        }
    }

    /// The lanes that have been loaded.
    #[inline]
    pub fn live(&self) -> BitLanes {
        BitLanes(self.live)
    }
}

/// Lane-parallel form of [`FaultKind::apply`]: `plane` holds the targeted
/// signal bit across up to 64 lanes and `lanes` selects the lanes in
/// which the fault is active this cycle. Equivalent to applying
/// [`FaultKind::apply`] independently in every selected lane and leaving
/// the rest untouched (the pass-2 prover checks this exhaustively).
#[inline]
pub fn apply_fault_to_plane(kind: FaultKind, plane: u64, lanes: BitLanes) -> u64 {
    match kind {
        FaultKind::StuckAt0 => plane & !lanes.0,
        FaultKind::StuckAt1 => plane | lanes.0,
        // Transient, Permanent and the active phase of Intermittent all
        // flip the wire; their temporal gating picks `lanes`.
        _ => plane ^ lanes.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_round_trip_through_planes() {
        let mut p = SignalPlane::<8>::new();
        assert!(p.set_lane(0, 0b1010_1010));
        assert!(p.set_lane(63, 0xff));
        assert!(p.set_lane(7, 0));
        assert_eq!(p.lane(0), 0b1010_1010);
        assert_eq!(p.lane(63), 0xff);
        assert_eq!(p.lane(7), 0);
        assert_eq!(p.lane(12), 0, "unloaded lanes read zero");
        assert!(p.live().get(7));
        assert!(!p.live().get(12));
        assert_eq!(p.live().count(), 3);
    }

    #[test]
    fn overwide_values_and_lanes_are_rejected() {
        let mut p = SignalPlane::<2>::new();
        assert!(p.set_lane(1, 3));
        assert!(!p.set_lane(1, 4), "3-bit value in a 2-bit plane");
        assert_eq!(p.lane(1), 3, "failed load leaves the lane untouched");
        assert!(!p.set_lane(64, 1));
        assert!(SignalPlane::<64>::fits(u64::MAX));
    }

    #[test]
    fn reloading_a_lane_clears_stale_bits() {
        let mut p = SignalPlane::<4>::new();
        assert!(p.set_lane(5, 0b1111));
        assert!(p.set_lane(5, 0b0001));
        assert_eq!(p.lane(5), 0b0001);
    }

    #[test]
    fn bitlanes_first_and_ops() {
        assert_eq!(BitLanes::first(0), BitLanes::EMPTY);
        assert_eq!(BitLanes::first(3).0, 0b111);
        assert_eq!(BitLanes::first(64).0, u64::MAX);
        assert_eq!(BitLanes::first(200).0, u64::MAX);
        let mut l = BitLanes::EMPTY;
        l.set(2);
        l.set(64); // ignored
        assert!(l.get(2) && !l.get(3) && !l.get(64));
        assert_eq!(l.or(BitLanes(0b1)).0, 0b101);
    }

    #[test]
    fn plane_fault_application_matches_scalar_per_lane() {
        for kind in [
            FaultKind::Transient,
            FaultKind::Permanent,
            FaultKind::StuckAt0,
            FaultKind::StuckAt1,
        ] {
            for l in [0usize, 1, 31, 63] {
                for bit_set in [false, true] {
                    for active in [false, true] {
                        let plane = if bit_set { 1u64 << l } else { 0 };
                        let lanes = if active {
                            BitLanes(1u64 << l)
                        } else {
                            BitLanes::EMPTY
                        };
                        let got = (apply_fault_to_plane(kind, plane, lanes) >> l) & 1;
                        let scalar = if active {
                            kind.apply(u64::from(bit_set), 0) & 1
                        } else {
                            u64::from(bit_set)
                        };
                        assert_eq!(got, scalar, "{kind:?} lane {l}");
                        // No cross-lane interference.
                        assert_eq!(apply_fault_to_plane(kind, plane, lanes) & !(1u64 << l), 0);
                    }
                }
            }
        }
    }
}
