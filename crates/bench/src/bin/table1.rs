//! **Table 1** — the complete list of the 32 invariances with their
//! modules, Figure-3 correctness categories, risk levels and buffer-policy
//! applicability, straight from the checker registry.
//!
//! ```text
//! cargo run --release -p nocalert-bench --bin table1
//! ```

use nocalert::{Category, Risk, TABLE1};

fn cat(c: &Category) -> &'static str {
    match c {
        Category::NoFlitDrop => "drop",
        Category::BoundedDelivery => "bounded",
        Category::NoNewFlit => "new-flit",
        Category::NoMixing => "mixing",
    }
}

fn main() {
    println!("== Table 1: the 32 NoCAlert invariances ==\n");
    let mut module = String::new();
    for e in &TABLE1 {
        let m = e
            .module
            .map(|m| m.to_string())
            .unwrap_or_else(|| "NET".to_string());
        if m != module {
            println!("--- {m} ---");
            module = m;
        }
        let cats: Vec<&str> = e.categories.iter().map(cat).collect();
        println!(
            "{:>3}  {:<44} [{}]{}{}",
            e.id.0,
            e.name,
            cats.join(", "),
            if e.risk == Risk::Low {
                "  (low-risk)"
            } else {
                ""
            },
            match e.applicability {
                nocalert::Applicability::Always => "",
                nocalert::Applicability::AtomicOnly => "  (atomic buffers)",
                nocalert::Applicability::NonAtomicOnly => "  (non-atomic buffers)",
            }
        );
        println!("     {}", e.rule);
    }
    println!(
        "\n{} invariances; low-risk set = {{1, 3}} (Observation 2)",
        TABLE1.len()
    );
}
