//! Pass 2 — exhaustive invariant proving over small combinational cones.
//!
//! The runtime checkers must be **silent on a fault-free router** (zero
//! false positives, Section 5 of the paper). For three cones the input
//! space is small enough to enumerate completely, so the property is
//! *proved*, not sampled:
//!
//! * **Arbiter cone** — every `(width, priority pointer, request vector)`
//!   of the round-robin arbiter that implements VA1/VA2/SA1/SA2. The
//!   grants it emits must never trip invariances 4/5/6.
//! * **Routing cone** — every `(algorithm, source, destination)` walk on
//!   the mesh. Each hop's RC output must be a valid, live, turn-legal,
//!   minimal direction (invariances 1/2/3 silent) and every walk must
//!   deliver in exactly the Manhattan distance.
//! * **VC-state cone** — every `(state, event combination, speculative)`
//!   input of the pipeline-order checker. Here we prove an equivalence:
//!   invariance 17 fires *iff* the combination is illegal under the
//!   microarchitectural event model — silence on all legal inputs **and**
//!   detection of all illegal ones.
//! * **Batched-lanes cone** — the bit-plane (structure-of-arrays) forms
//!   the runtime bank actually evaluates (`nocalert::batched`) proved
//!   equivalent, lane by lane, to the scalar predicates above: same
//!   verdict at the loaded lane, silence at every other lane, over the
//!   full scalar input space of each predicate. This closes the loop —
//!   the cones above prove the scalar predicates correct, this cone
//!   proves the deployed wide evaluation computes those same predicates.
//!
//! Crucially, the predicates proved here are the very functions the
//! runtime [`nocalert::AlertBank`] evaluates (`nocalert::predicates`,
//! `nocalert::batched`, `noc_sim::routing`) — there is no re-derivation
//! that could drift.

use crate::diag::{Diagnostic, Pass, Severity};
use noc_sim::arbiter::RoundRobin;
use noc_sim::routing::{productive, route, turn_legal};
use noc_sim::FaultRegionMap;
use noc_types::bitlanes::{apply_fault_to_plane, BitLanes, SignalPlane, LANES};
use noc_types::config::{NocConfig, RoutingAlgorithm};
use noc_types::geometry::{Coord, Direction, Mesh, NodeId};
use noc_types::FaultKind;
use nocalert::batched::{check_arbiter_lanes, vc_order_violated_lanes};
use nocalert::predicates::{check_arbiter_wires, vc_order_violated};
use serde::Serialize;

/// Cardinal (mesh link) directions, in index order.
const CARDINALS: [Direction; 4] = [
    Direction::North,
    Direction::East,
    Direction::South,
    Direction::West,
];

/// Outcome of exhaustively enumerating one cone.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ConeProof {
    /// Cone name (`arbiter`, `routing-xy`, ...).
    pub cone: String,
    /// Inputs enumerated.
    pub cases: u64,
    /// Inputs violating the property (0 ⇒ proved).
    pub violations: u64,
}

fn violation(code: &'static str, msg: String) -> Diagnostic {
    Diagnostic::new(Pass::Prove, code, Severity::Error, msg)
}

/// Proves the arbiter grants silent under invariances 4/5/6 for every
/// reachable `(width, pointer, request)` input.
///
/// Widths cover everything the router instantiates: the per-port VC
/// arbiters (`vcs_per_port` wide) and the 5-port global arbiters, plus
/// the full supported range 1..=8 for robustness against config sweeps.
pub fn prove_arbiter(cfg: &NocConfig, diags: &mut Vec<Diagnostic>) -> ConeProof {
    let mut widths: Vec<u8> = (1..=8).collect();
    for w in [cfg.vcs_per_port, Direction::COUNT as u8] {
        if !widths.contains(&w) {
            widths.push(w);
        }
    }
    let mut cases = 0u64;
    let mut violations = 0u64;
    for &w in &widths {
        for ptr in 0..w {
            // Reach pointer state `ptr`: granting bit (ptr-1) mod w parks
            // the rotating priority exactly there.
            let mut arb = RoundRobin::new(w);
            if ptr != 0 {
                arb.arbitrate(1u64 << (ptr - 1));
            }
            for req in 0..(1u64 << w) {
                cases += 1;
                let grant = arb.peek(req);
                let check = check_arbiter_wires(req, grant);
                if !check.silent() {
                    violations += 1;
                    if violations <= 5 {
                        diags.push(violation(
                            "NL201",
                            format!(
                                "arbiter width {w} pointer {ptr} req {req:#b} grants \
                                 {grant:#b}: {check:?}"
                            ),
                        ));
                    }
                }
            }
        }
    }
    ConeProof {
        cone: "arbiter".into(),
        cases,
        violations,
    }
}

/// Proves every fault-free route silent under invariances 1/2/3 and
/// delivered in exactly the Manhattan distance, for one algorithm.
pub fn prove_routing(
    cfg: &NocConfig,
    alg: RoutingAlgorithm,
    diags: &mut Vec<Diagnostic>,
) -> ConeProof {
    let mesh = cfg.mesh;
    let (w, h) = (mesh.width(), mesh.height());
    let mut cases = 0u64;
    let mut violations = 0u64;
    let mut fail = |code, msg: String| {
        violations += 1;
        if violations <= 5 {
            diags.push(violation(code, msg));
        }
    };
    for sx in 0..w {
        for sy in 0..h {
            for dx in 0..w {
                for dy in 0..h {
                    let dest = Coord::new(dx, dy);
                    let mut cur = Coord::new(sx, sy);
                    let mut in_port = Direction::Local;
                    let mut hops = 0u8;
                    loop {
                        cases += 1;
                        let out = route(alg, cur, dest);
                        // Invariance 2: the encoding names a live port.
                        if Direction::from_bits(out.index() as u64) != Some(out)
                            || !mesh.port_live(mesh.node(cur), out)
                        {
                            fail(
                                "NL211",
                                format!("{alg:?}: dead/invalid RC output {out} at {cur}→{dest}"),
                            );
                            break;
                        }
                        // Invariance 1: the turn is legal for the port the
                        // flit physically arrived on.
                        if !turn_legal(alg, in_port, out) {
                            fail(
                                "NL212",
                                format!("{alg:?}: illegal turn {in_port}→{out} at {cur}→{dest}"),
                            );
                        }
                        // Invariance 3: minimal progress.
                        if !productive(mesh, cur, dest, out) {
                            fail(
                                "NL213",
                                format!("{alg:?}: unproductive hop {out} at {cur}→{dest}"),
                            );
                            break;
                        }
                        if out == Direction::Local {
                            break;
                        }
                        match cur.step(out, w, h) {
                            Some(next) => cur = next,
                            None => {
                                fail("NL211", format!("{alg:?}: walked off-mesh at {cur}"));
                                break;
                            }
                        }
                        in_port = out.opposite();
                        hops += 1;
                        if hops > w + h {
                            fail(
                                "NL214",
                                format!("{alg:?}: {sx},{sy}→{dx},{dy} did not converge"),
                            );
                            break;
                        }
                    }
                    if hops != Coord::new(sx, sy).manhattan(dest) as u8 {
                        fail(
                            "NL214",
                            format!("{alg:?}: {sx},{sy}→{dx},{dy} took {hops} hops (non-minimal)"),
                        );
                    }
                }
            }
        }
    }
    ConeProof {
        cone: format!("routing-{alg:?}").to_lowercase(),
        cases,
        violations,
    }
}

/// Proves invariance 17 *equivalent* to the legal-event model over the
/// full `(state, events, speculative)` input space: silent on every legal
/// combination, firing on every illegal one.
pub fn prove_vc_state(diags: &mut Vec<Diagnostic>) -> ConeProof {
    let mut cases = 0u64;
    let mut violations = 0u64;
    for speculative in [false, true] {
        for state in 0u64..4 {
            for evs in 0u8..8 {
                cases += 1;
                let (rc, va, sa) = (evs & 1 != 0, evs & 2 != 0, evs & 4 != 0);
                // The microarchitectural event model: RC completes only
                // from ROUTING(1), VA only from VA_PENDING(2), a switch
                // grant lands only on ACTIVE(3) — or VA_PENDING under the
                // speculative pipeline of Section 4.4.
                let legal = (!rc || state == 1)
                    && (!va || state == 2)
                    && (!sa || state == 3 || (speculative && state == 2));
                let fires = vc_order_violated(state, rc, va, sa, speculative);
                if fires == legal {
                    violations += 1;
                    diags.push(violation(
                        "NL221",
                        format!(
                            "inv17 {} on state={state} rc={rc} va={va} sa={sa} \
                             speculative={speculative}",
                            if fires {
                                "fires on a legal input"
                            } else {
                                "misses an illegal input"
                            }
                        ),
                    ));
                }
            }
        }
    }
    ConeProof {
        cone: "vc-state".into(),
        cases,
        violations,
    }
}

/// Proves the bit-lane (batched) predicate forms of `nocalert::batched`
/// equivalent to their scalar originals, one loaded lane at a time:
///
/// * **NL231 (arbiter)** — every `(req, grant)` 8-bit wire pair — the
///   full 2¹⁶ scalar input space — loaded into a rotating lane; the wide
///   verdict at that lane must equal [`check_arbiter_wires`] on the same
///   wires.
/// * **NL233 (vc-order)** — every `(state, events, speculative)` input of
///   invariance 17 at *every* lane position against
///   [`vc_order_violated`].
/// * **NL235 (fault plane)** — every [`FaultKind`] × wire value ×
///   activity at every lane against the scalar `FaultKind::apply`.
/// * **NL232/NL234/NL236** — cross-lane leakage: with exactly one lane
///   loaded, no verdict (or fault effect) may appear in any other lane.
///
/// Since the wide forms are pure bitwise maps with no cross-plane
/// interaction beyond these checks, single-lane equivalence plus
/// zero leakage extends to every multi-lane load by superposition.
pub fn prove_batched_lanes(diags: &mut Vec<Diagnostic>) -> ConeProof {
    let mut cases = 0u64;
    let mut violations = 0u64;
    let mut fail = |code, msg: String| {
        violations += 1;
        if violations <= 5 {
            diags.push(violation(code, msg));
        }
    };

    // Arbiter invariances 4/5/6: full 2^16 wire space, rotating lanes so
    // every lane position is exercised 1024 times.
    for req in 0..256u64 {
        for grant in 0..256u64 {
            cases += 1;
            let lane = (((req << 8) | grant) % LANES as u64) as usize;
            let mut rp = SignalPlane::<8>::new();
            let mut gp = SignalPlane::<8>::new();
            if !rp.set_lane(lane, req) || !gp.set_lane(lane, grant) {
                fail("NL231", format!("lane {lane} refused 8-bit wires"));
                continue;
            }
            let wide = check_arbiter_lanes(&rp, &gp);
            let scalar = check_arbiter_wires(req, grant);
            if wide.lane(lane) != scalar {
                fail(
                    "NL231",
                    format!(
                        "batched arbiter verdict diverges at lane {lane} for req {req:#b} \
                         grant {grant:#b}: {:?} vs {scalar:?}",
                        wide.lane(lane)
                    ),
                );
            }
            let others = !(1u64 << lane);
            let leak =
                (wide.grant_without_request.0 | wide.grant_to_nobody.0 | wide.multiple_grants.0)
                    & others;
            if leak != 0 {
                fail(
                    "NL232",
                    format!(
                        "arbiter lanes {leak:#x} fire with only lane {lane} loaded \
                         (req {req:#b} grant {grant:#b})"
                    ),
                );
            }
        }
    }

    // Invariance 17: the full 64-case scalar space at every lane.
    for speculative in [false, true] {
        for state in 0u64..4 {
            for evs in 0u8..8 {
                let (rc, va, sa) = (evs & 1 != 0, evs & 2 != 0, evs & 4 != 0);
                for lane in 0..LANES {
                    cases += 1;
                    let mut sp = SignalPlane::<2>::new();
                    if !sp.set_lane(lane, state) {
                        fail("NL233", format!("lane {lane} refused a 2-bit state"));
                        continue;
                    }
                    let ev = |on: bool| {
                        if on {
                            BitLanes(1u64 << lane)
                        } else {
                            BitLanes::EMPTY
                        }
                    };
                    let fired = vc_order_violated_lanes(&sp, ev(rc), ev(va), ev(sa), speculative);
                    let want = vc_order_violated(state, rc, va, sa, speculative);
                    if fired.get(lane) != want {
                        fail(
                            "NL233",
                            format!(
                                "batched inv17 diverges at lane {lane}: state={state} rc={rc} \
                                 va={va} sa={sa} speculative={speculative}"
                            ),
                        );
                    }
                    if fired.0 & !(1u64 << lane) != 0 {
                        fail(
                            "NL234",
                            format!("inv17 fires outside loaded lane {lane} (state={state})"),
                        );
                    }
                }
            }
        }
    }

    // Lane-masked fault application vs the scalar bit-level `apply`.
    for kind in [
        FaultKind::Transient,
        FaultKind::Permanent,
        FaultKind::StuckAt0,
        FaultKind::StuckAt1,
        FaultKind::Intermittent { period: 2, duty: 1 },
    ] {
        for lane in 0..LANES {
            for wire in [false, true] {
                for active in [false, true] {
                    cases += 1;
                    let plane = if wire { 1u64 << lane } else { 0 };
                    let lanes = if active {
                        BitLanes(1u64 << lane)
                    } else {
                        BitLanes::EMPTY
                    };
                    let got = apply_fault_to_plane(kind, plane, lanes);
                    let want = if active {
                        kind.apply(u64::from(wire), 0) & 1
                    } else {
                        u64::from(wire)
                    };
                    if (got >> lane) & 1 != want {
                        fail(
                            "NL235",
                            format!(
                                "plane fault {kind:?} diverges at lane {lane} \
                                 (wire={wire} active={active})"
                            ),
                        );
                    }
                    if got & !(1u64 << lane) != 0 {
                        fail(
                            "NL236",
                            format!("plane fault {kind:?} leaks outside lane {lane}"),
                        );
                    }
                }
            }
        }
    }

    ConeProof {
        cone: "batched-lanes".into(),
        cases,
        violations,
    }
}

/// One damage script of the fault-region prover's scenario universe.
struct RegionScenario {
    label: String,
    dead: Vec<(NodeId, Direction)>,
    faulty: Vec<NodeId>,
}

/// The region-set universe proved over `mesh`: the healthy mesh, every
/// single dead link, every single faulty router, every 2×2 and 3×3 block
/// region, a stride-sampled set of faulty-router pairs (whose rectangles
/// merge or coexist), every full column/row cut (true partitions), and a
/// diagonal staircase (8-neighbourhood merging).
fn region_universe(mesh: Mesh) -> Vec<RegionScenario> {
    let (w, h) = (mesh.width(), mesh.height());
    let mut out = vec![RegionScenario {
        label: "healthy".into(),
        dead: Vec::new(),
        faulty: Vec::new(),
    }];
    for node in mesh.nodes() {
        for d in [Direction::East, Direction::North] {
            if mesh.neighbor(node, d).is_some() {
                out.push(RegionScenario {
                    label: format!("dead-link n{} {d}", node.0),
                    dead: vec![(node, d)],
                    faulty: Vec::new(),
                });
            }
        }
    }
    for node in mesh.nodes() {
        out.push(RegionScenario {
            label: format!("faulty n{}", node.0),
            dead: Vec::new(),
            faulty: vec![node],
        });
    }
    for s in [2u8, 3] {
        for x in 0..w.saturating_sub(s - 1) {
            for y in 0..h.saturating_sub(s - 1) {
                let mut faulty = Vec::new();
                for bx in x..x + s {
                    for by in y..y + s {
                        faulty.push(mesh.node(Coord::new(bx, by)));
                    }
                }
                out.push(RegionScenario {
                    label: format!("{s}x{s} block at {x},{y}"),
                    dead: Vec::new(),
                    faulty,
                });
            }
        }
    }
    let n = mesh.len() as u16;
    for i in (0..n).step_by(5) {
        for j in (0..n).step_by(7) {
            if j > i {
                out.push(RegionScenario {
                    label: format!("faulty pair n{i} n{j}"),
                    dead: Vec::new(),
                    faulty: vec![NodeId(i), NodeId(j)],
                });
            }
        }
    }
    for x in 0..w.saturating_sub(1) {
        out.push(RegionScenario {
            label: format!("column cut after x={x}"),
            dead: (0..h)
                .map(|y| (mesh.node(Coord::new(x, y)), Direction::East))
                .collect(),
            faulty: Vec::new(),
        });
    }
    for y in 0..h.saturating_sub(1) {
        out.push(RegionScenario {
            label: format!("row cut after y={y}"),
            dead: (0..w)
                .map(|x| (mesh.node(Coord::new(x, y)), Direction::North))
                .collect(),
            faulty: Vec::new(),
        });
    }
    if w >= 5 && h >= 5 {
        out.push(RegionScenario {
            label: "staircase".into(),
            dead: Vec::new(),
            faulty: (1..4).map(|i| mesh.node(Coord::new(i, i))).collect(),
        });
    }
    out
}

/// Independent live-component census (BFS the prover owns, not the map's):
/// returns per-node component ids (`u32::MAX` for absorbed routers) and
/// the component count.
fn census(map: &FaultRegionMap, mesh: Mesh) -> (Vec<u32>, u32) {
    let n = mesh.len();
    let mut comp = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue: Vec<NodeId> = Vec::new();
    for root in mesh.nodes() {
        if map.absorbed(root) || comp[root.index()] != u32::MAX {
            continue;
        }
        comp[root.index()] = count;
        queue.clear();
        queue.push(root);
        let mut head = 0;
        while head < queue.len() {
            let cur = queue[head];
            head += 1;
            for d in CARDINALS {
                let Some(nb) = mesh.neighbor(cur, d) else {
                    continue;
                };
                if map.absorbed(nb) || map.link_dead(cur, d) || comp[nb.index()] != u32::MAX {
                    continue;
                }
                comp[nb.index()] = count;
                queue.push(nb);
            }
        }
        count += 1;
    }
    (comp, count)
}

/// Mechanically re-verifies deadlock freedom for one region set: builds
/// the channel-dependency graph a turn-obeying packet could exercise (one
/// channel per live directed link; an edge per consecutive hop pair that
/// is neither a u-turn nor the forbidden down→up transition) and checks
/// it acyclic by DFS.
fn cdg_acyclic(map: &FaultRegionMap, mesh: Mesh) -> bool {
    let n = mesh.len();
    let live = |y: NodeId, d: Direction| {
        mesh.neighbor(y, d)
            .is_some_and(|x| !map.absorbed(y) && !map.absorbed(x) && !map.link_dead(y, d))
    };
    let chan = |y: NodeId, d: Direction| y.index() * 4 + d.index();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n * 4];
    for y in mesh.nodes() {
        for d in CARDINALS {
            if !live(y, d) {
                continue;
            }
            let Some(x) = mesh.neighbor(y, d) else {
                continue;
            };
            let first_down = map.rank_of(x).unwrap_or(0) > map.rank_of(y).unwrap_or(0);
            for e in CARDINALS {
                if e == d.opposite() || !live(x, e) {
                    continue;
                }
                let Some(z) = mesh.neighbor(x, e) else {
                    continue;
                };
                let second_down = map.rank_of(z).unwrap_or(0) > map.rank_of(x).unwrap_or(0);
                if first_down && !second_down {
                    continue; // the forbidden down→up transition
                }
                adj[chan(y, d)].push(chan(x, e));
            }
        }
    }
    // Iterative three-colour DFS over the channel graph.
    let mut colour = vec![0u8; n * 4]; // 0 white, 1 grey, 2 black
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for start in 0..n * 4 {
        if colour[start] != 0 {
            continue;
        }
        colour[start] = 1;
        stack.push((start, 0));
        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            if *next < adj[v].len() {
                let u = adj[v][*next];
                *next += 1;
                match colour[u] {
                    0 => {
                        colour[u] = 1;
                        stack.push((u, 0));
                    }
                    1 => return false, // grey → back edge → cycle
                    _ => {}
                }
            } else {
                colour[v] = 2;
                stack.pop();
            }
        }
    }
    true
}

/// Proves the fault-region routing tables deadlock-free, live and
/// productive for every `(source, destination, region set)` of the
/// scenario universe on `cfg.mesh`:
///
/// * **NL215** — a table walk breaks the turn discipline, crosses a dead
///   link or region, fails to make strict distance progress, or fails to
///   arrive.
/// * **NL216** — the channel-dependency graph of a region set has a cycle
///   (deadlock possible), or a table walk takes the forbidden down→up
///   transition.
/// * **NL217** — partition misclassification: the map's partition flag or
///   reachability disagrees with an independent component census, or a
///   cross-partition pair still has a route (it must get the sentinel and
///   be reported `Partitioned`, never hang).
pub fn prove_fault_region(cfg: &NocConfig, diags: &mut Vec<Diagnostic>) -> ConeProof {
    let mesh = cfg.mesh;
    let mut cases = 0u64;
    let mut violations = 0u64;
    let mut fail = |code, msg: String| {
        violations += 1;
        if violations <= 5 {
            diags.push(violation(code, msg));
        }
    };
    for sc in region_universe(mesh) {
        let mut map = FaultRegionMap::new(mesh);
        for &(node, d) in &sc.dead {
            map.kill_link(node, d);
        }
        for &node in &sc.faulty {
            map.mark_router_faulty(node);
        }
        map.rebuild();
        let (comp, ncomp) = census(&map, mesh);
        cases += 1;
        if (ncomp > 1) != map.partitioned() {
            fail(
                "NL217",
                format!(
                    "{}: {ncomp} live components but partitioned() = {}",
                    sc.label,
                    map.partitioned()
                ),
            );
            continue;
        }
        cases += 1;
        if !cdg_acyclic(&map, mesh) {
            fail(
                "NL216",
                format!("{}: channel dependency graph has a cycle", sc.label),
            );
            continue;
        }
        if !map.engaged() {
            // A damage-free map installs no tables; the routers fall back
            // to the XY baseline, whose liveness/minimality NL211–NL214
            // prove. Here the delegation contract is pinned: no table
            // route exists and the static `route` arm equals XY.
            for src in mesh.nodes() {
                for dest in mesh.nodes() {
                    cases += 1;
                    if map.next_hop(src, dest, false).is_some() {
                        fail(
                            "NL215",
                            format!("{}: disengaged map serves a table route", sc.label),
                        );
                    }
                    let (s, t) = (mesh.coord(src), mesh.coord(dest));
                    if route(RoutingAlgorithm::FaultRegion, s, t)
                        != route(RoutingAlgorithm::XY, s, t)
                    {
                        fail(
                            "NL215",
                            format!("{}: XY delegation broken at {s}→{t}", sc.label),
                        );
                    }
                }
            }
            continue;
        }
        for src in mesh.nodes() {
            for dest in mesh.nodes() {
                if map.absorbed(src) || map.absorbed(dest) {
                    continue;
                }
                cases += 1;
                let connected = comp[src.index()] == comp[dest.index()];
                if map.reachable(src, dest) != connected {
                    fail(
                        "NL217",
                        format!(
                            "{}: reachable(n{}, n{}) disagrees with the census",
                            sc.label, src.0, dest.0
                        ),
                    );
                    continue;
                }
                if !connected {
                    if map.next_hop(src, dest, false).is_some() {
                        fail(
                            "NL217",
                            format!(
                                "{}: cross-partition pair n{}→n{} has a route",
                                sc.label, src.0, dest.0
                            ),
                        );
                    }
                    continue;
                }
                let mut cur = src;
                let mut committed = false;
                let mut in_port = Direction::Local;
                let mut hops = 0usize;
                let Some(mut dist) = map.distance(cur, dest, committed) else {
                    fail(
                        "NL215",
                        format!(
                            "{}: reachable n{}→n{} has no distance",
                            sc.label, src.0, dest.0
                        ),
                    );
                    continue;
                };
                loop {
                    let Some(out) = map.next_hop(cur, dest, committed) else {
                        fail(
                            "NL215",
                            format!(
                                "{}: n{}→n{} lost its route at n{}",
                                sc.label, src.0, dest.0, cur.0
                            ),
                        );
                        break;
                    };
                    if out == Direction::Local {
                        if cur != dest {
                            fail(
                                "NL215",
                                format!(
                                    "{}: n{}→n{} ejected short at n{}",
                                    sc.label, src.0, dest.0, cur.0
                                ),
                            );
                        }
                        break;
                    }
                    if !turn_legal(RoutingAlgorithm::FaultRegion, in_port, out) {
                        fail(
                            "NL215",
                            format!("{}: illegal turn {in_port}→{out} at n{}", sc.label, cur.0),
                        );
                        break;
                    }
                    if map.link_dead(cur, out) {
                        fail(
                            "NL215",
                            format!("{}: route over dead link at n{}", sc.label, cur.0),
                        );
                        break;
                    }
                    let Some(next) = mesh.neighbor(cur, out) else {
                        fail(
                            "NL215",
                            format!("{}: walked off-mesh at n{}", sc.label, cur.0),
                        );
                        break;
                    };
                    if map.absorbed(next) {
                        fail(
                            "NL215",
                            format!("{}: routed into a region at n{}", sc.label, cur.0),
                        );
                        break;
                    }
                    let down = map.rank_of(next).unwrap_or(0) > map.rank_of(cur).unwrap_or(0);
                    if committed && !down {
                        fail(
                            "NL216",
                            format!(
                                "{}: down→up transition at n{} toward n{}",
                                sc.label, cur.0, dest.0
                            ),
                        );
                        break;
                    }
                    committed = committed || down;
                    let Some(ndist) = map.distance(next, dest, committed) else {
                        fail(
                            "NL215",
                            format!("{}: route dies at n{} toward n{}", sc.label, next.0, dest.0),
                        );
                        break;
                    };
                    if ndist + 1 != dist {
                        fail(
                            "NL215",
                            format!(
                                "{}: unproductive hop at n{} toward n{} ({dist}→{ndist})",
                                sc.label, cur.0, dest.0
                            ),
                        );
                        break;
                    }
                    dist = ndist;
                    in_port = out.opposite();
                    cur = next;
                    hops += 1;
                    if hops > 4 * mesh.len() {
                        fail(
                            "NL215",
                            format!("{}: n{}→n{} did not converge", sc.label, src.0, dest.0),
                        );
                        break;
                    }
                }
            }
        }
    }
    ConeProof {
        cone: format!("routing-{:?}", RoutingAlgorithm::FaultRegion).to_lowercase(),
        cases,
        violations,
    }
}

/// NL218 — every [`RoutingAlgorithm`] variant must have a prover cone
/// (`routing-<alg>`); an uncovered variant means a routing function could
/// ship without any deadlock/liveness proof.
pub fn check_prover_coverage(proofs: &[ConeProof], diags: &mut Vec<Diagnostic>) {
    for alg in RoutingAlgorithm::ALL {
        let cone = format!("routing-{alg:?}").to_lowercase();
        if !proofs.iter().any(|p| p.cone == cone) {
            diags.push(violation(
                "NL218",
                format!("routing algorithm {alg:?} has no prover cone ({cone})"),
            ));
        }
    }
}

/// Runs all provers for one configuration (every routing algorithm is
/// proved regardless of which one `cfg` selects), then cross-checks that
/// no `RoutingAlgorithm` variant escaped prover coverage (NL218).
///
/// The cones are independent, so they fan out across up to `jobs` worker
/// threads; results are merged in cone order, making the diagnostics —
/// and therefore the whole report — byte-identical for every `jobs`
/// value. A worker that produces no result (NL290) still surfaces as a
/// hard error rather than a silently missing proof.
pub fn prove_all(cfg: &NocConfig, jobs: usize) -> (Vec<Diagnostic>, Vec<ConeProof>) {
    type ConeTask<'a> = Box<dyn FnOnce() -> (Vec<Diagnostic>, ConeProof) + Send + 'a>;
    fn task<'a>(f: impl FnOnce(&mut Vec<Diagnostic>) -> ConeProof + Send + 'a) -> ConeTask<'a> {
        Box::new(move || {
            let mut d = Vec::new();
            let p = f(&mut d);
            (d, p)
        })
    }
    let tasks: Vec<ConeTask> = vec![
        task(|d| prove_arbiter(cfg, d)),
        task(|d| prove_routing(cfg, RoutingAlgorithm::XY, d)),
        task(|d| prove_routing(cfg, RoutingAlgorithm::WestFirst, d)),
        task(|d| prove_fault_region(cfg, d)),
        task(prove_vc_state),
        task(prove_batched_lanes),
    ];
    let mut diags = Vec::new();
    let mut proofs = Vec::new();
    for (i, slot) in crate::exec::run_tasks(jobs, tasks).into_iter().enumerate() {
        match slot {
            Some((d, p)) => {
                diags.extend(d);
                proofs.push(p);
            }
            None => diags.push(violation(
                "NL290",
                format!("internal: prover cone task #{i} produced no result"),
            )),
        }
    }
    check_prover_coverage(&proofs, &mut diags);
    (diags, proofs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cones_prove_clean_on_baseline() {
        let cfg = NocConfig::paper_baseline();
        let (diags, proofs) = prove_all(&cfg, 1);
        assert!(diags.is_empty(), "{diags:#?}");
        for p in &proofs {
            assert_eq!(p.violations, 0, "{p:?}");
            assert!(p.cases > 0, "{p:?}");
        }
    }

    #[test]
    fn prove_all_is_jobs_invariant() {
        let cfg = NocConfig::small_test();
        let (d1, p1) = prove_all(&cfg, 1);
        for jobs in [2, 8] {
            let (dj, pj) = prove_all(&cfg, jobs);
            assert_eq!(dj, d1);
            assert_eq!(pj, p1);
        }
    }

    #[test]
    fn arbiter_cone_counts_full_input_space() {
        let cfg = NocConfig::paper_baseline();
        let mut diags = Vec::new();
        let p = prove_arbiter(&cfg, &mut diags);
        // Widths 1..=8 (4 and 5 already included): sum w·2^w.
        let expect: u64 = (1..=8u32).map(|w| w as u64 * (1u64 << w)).sum();
        assert_eq!(p.cases, expect);
        assert!(diags.is_empty());
    }

    #[test]
    fn vc_state_cone_is_an_equivalence_proof() {
        let mut diags = Vec::new();
        let p = prove_vc_state(&mut diags);
        assert_eq!(p.cases, 64);
        assert_eq!(p.violations, 0, "{diags:#?}");
    }

    #[test]
    fn routing_cone_walks_every_pair() {
        let cfg = NocConfig::small_test();
        let mut diags = Vec::new();
        let p = prove_routing(&cfg, RoutingAlgorithm::XY, &mut diags);
        // ≥ one case per (src, dest) pair, including src == dest ejections.
        assert!(p.cases >= 16 * 16, "{}", p.cases);
        assert_eq!(p.violations, 0);
    }

    #[test]
    fn fault_region_cone_proves_clean_on_the_small_mesh() {
        let cfg = NocConfig::small_test();
        let mut diags = Vec::new();
        let p = prove_fault_region(&cfg, &mut diags);
        assert_eq!(p.violations, 0, "{diags:#?}");
        assert_eq!(p.cone, "routing-faultregion");
        // The universe holds the healthy mesh, every single dead link and
        // faulty router, block regions and cuts — far more walks than one
        // all-pairs sweep.
        assert!(p.cases > 16 * 16 * 10, "{}", p.cases);
    }

    #[test]
    fn region_universe_includes_partitioning_cuts() {
        let mesh = NocConfig::small_test().mesh;
        let universe = region_universe(mesh);
        let cuts = universe.iter().filter(|s| s.label.contains("cut")).count();
        assert_eq!(cuts, 6, "3 column + 3 row cuts on 4x4");
        // And the cuts really partition: the census on a rebuilt map
        // reports more than one component.
        let cut = universe
            .iter()
            .find(|s| s.label.contains("column cut"))
            .expect("cut scenario");
        let mut map = FaultRegionMap::new(mesh);
        for &(node, d) in &cut.dead {
            map.kill_link(node, d);
        }
        map.rebuild();
        let (_, ncomp) = census(&map, mesh);
        assert!(ncomp > 1);
        assert!(map.partitioned());
    }

    #[test]
    fn prover_coverage_flags_missing_algorithms() {
        let mut diags = Vec::new();
        check_prover_coverage(&[], &mut diags);
        assert_eq!(diags.len(), RoutingAlgorithm::ALL.len());
        assert!(diags.iter().all(|d| d.code == "NL218"));
        // A full prove_all leaves no NL218 behind.
        let (diags, proofs) = prove_all(&NocConfig::small_test(), 2);
        assert!(diags.iter().all(|d| d.code != "NL218"), "{diags:#?}");
        assert_eq!(proofs.len(), 6);
    }

    #[test]
    fn batched_lane_cone_is_exhaustive_and_clean() {
        let mut diags = Vec::new();
        let p = prove_batched_lanes(&mut diags);
        assert_eq!(p.cone, "batched-lanes");
        // 2^16 arbiter wire pairs + 64 inv17 inputs × 64 lanes + 5 fault
        // kinds × 64 lanes × wire × activity.
        assert_eq!(p.cases, 65_536 + 64 * 64 + 5 * 64 * 4);
        assert_eq!(p.violations, 0, "{diags:#?}");
    }
}
