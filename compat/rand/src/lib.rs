//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so the workspace carries the tiny slice of the `rand 0.8` API it
//! actually uses: [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64,
//! the same generator family upstream `SmallRng` uses on 64-bit targets),
//! the [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`, the
//! [`SeedableRng::seed_from_u64`] constructor, and
//! [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! The streams are deterministic across platforms and releases — the
//! property every campaign, golden reference and checkpoint/resume test
//! in this workspace relies on — but they are **not** bit-compatible with
//! upstream `rand`; nothing in the workspace assumes they are.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// The next 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision, like upstream's
    /// `Standard` distribution for `f64`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy {
    /// Uniform draw from `[lo, hi)`. `hi > lo` is the caller's contract.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                debug_assert!(span > 0, "gen_range over an empty range");
                // Debiased multiply-shift (Lemire): reject the short tail.
                loop {
                    let x = rng.next_u64();
                    let hi128 = ((x as u128 * span as u128) >> 64) as u64;
                    let lo64 = (x as u128 * span as u128) as u64;
                    if lo64 >= span.wrapping_neg() % span {
                        return lo.wrapping_add(hi128 as $t);
                    }
                }
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// Extension methods over any [`RngCore`] — the subset of `rand::Rng`
/// used in this workspace.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a half-open integer range.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the range is empty.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, matching the `rand::SeedableRng` entry point
/// this workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with
    /// SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 step — used to expand seeds into full state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A small, fast, deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling support for slices — the `shuffle` half of
    /// `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::UniformInt::sample_range(rng, 0usize, i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_range_covers_and_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let x = r.gen_range(0u16..7);
            assert!(x < 7);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues drawn: {seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle moved something");
    }
}
