//! Offline stand-in for `criterion`.
//!
//! The build environment has no registry access, so this crate provides
//! the benchmark-harness surface the workspace's `benches/` files use —
//! [`Criterion`], benchmark groups, [`Bencher::iter`], the
//! [`criterion_group!`]/[`criterion_main!`] macros and [`BenchmarkId`] —
//! backed by a plain wall-clock timer instead of criterion's statistical
//! machinery. Each benchmark runs a short calibration pass, then a fixed
//! number of timed batches, and reports the median per-iteration time.
//!
//! The point is that `cargo bench` compiles, runs and prints something
//! useful offline; rigorous statistics are out of scope.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so bench files can use `criterion::black_box` if they want;
/// the workspace's benches import `std::hint::black_box` directly.
pub use std::hint::black_box;

/// A labelled benchmark id: a function name plus a parameter.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _c: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim's sample count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark under `group/name`.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, name), f);
        self
    }

    /// Runs a parameterized benchmark under `group/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id.name), |b| f(b, input));
        self
    }

    /// Ends the group (no-op; exists for call-site compatibility).
    pub fn finish(self) {}
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this batch's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    // Calibrate: grow the batch until one batch takes >= 5 ms.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 24 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    // Measure: a handful of batches, report the median.
    const BATCHES: usize = 7;
    let mut per_iter: Vec<f64> = (0..BATCHES)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[BATCHES / 2];
    println!(
        "{name:<40} {:>12}/iter  ({iters} iters/batch)",
        fmt_time(median)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10);
        let mut acc = 0u64;
        g.bench_function("add", |b| {
            b.iter(|| {
                acc = acc.wrapping_add(1);
                acc
            })
        });
        g.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &k| {
            b.iter(|| acc.wrapping_mul(k))
        });
        g.finish();
        c.bench_function("top", |b| b.iter(|| acc));
    }
}
