//! Human-readable event tracing — a debugging observer that renders the
//! wire-level activity of selected routers as text, the closest software
//! analogue to hanging a logic analyzer off the router.
//!
//! Used by tests and examples when diagnosing a misbehaving scenario;
//! scoping to a router set and a cycle window keeps the output usable.

use crate::network::Observer;
use noc_types::record::{CycleRecord, EjectEvent};
use noc_types::{Cycle, Flit};
use std::fmt::Write as _;
use std::ops::Range;

/// Observer that renders traffic-relevant events into an internal buffer.
#[derive(Debug, Clone)]
pub struct TraceObserver {
    routers: Vec<u16>,
    window: Range<Cycle>,
    buffer: String,
    max_len: usize,
}

impl TraceObserver {
    /// Traces `routers` (empty ⇒ all) during `window`.
    pub fn new(routers: Vec<u16>, window: Range<Cycle>) -> TraceObserver {
        TraceObserver {
            routers,
            window,
            buffer: String::new(),
            max_len: 1 << 22,
        }
    }

    /// The rendered trace so far.
    pub fn text(&self) -> &str {
        &self.buffer
    }

    fn wants(&self, cycle: Cycle, router: u16) -> bool {
        self.window.contains(&cycle)
            && (self.routers.is_empty() || self.routers.contains(&router))
            && self.buffer.len() < self.max_len
    }
}

impl Observer for TraceObserver {
    fn on_cycle_record(&mut self, cycle: Cycle, rec: &CycleRecord) {
        if !self.wants(cycle, rec.router) || rec.is_quiet() {
            return;
        }
        let b = &mut self.buffer;
        for e in &rec.rc {
            let _ = writeln!(
                b,
                "c{cycle} n{} RC    p{}v{} dest=({},{}) -> dir {}",
                rec.router, e.port, e.vc, e.dest_x, e.dest_y, e.out_dir
            );
        }
        for e in &rec.va2 {
            if e.grant != 0 {
                let _ = writeln!(
                    b,
                    "c{cycle} n{} VA2   out p{} grant={:05b} vc={}",
                    rec.router, e.out_port, e.grant, e.out_vc
                );
            }
        }
        for e in &rec.sa2 {
            if e.grant != 0 {
                let _ = writeln!(
                    b,
                    "c{cycle} n{} SA2   out p{} grant={:05b}",
                    rec.router, e.out_port, e.grant
                );
            }
        }
        for e in &rec.reads {
            let _ = writeln!(
                b,
                "c{cycle} n{} READ  p{}v{}{}",
                rec.router,
                e.port,
                e.vc,
                if e.was_empty { " (EMPTY!)" } else { "" }
            );
        }
        for e in &rec.writes {
            let _ = writeln!(
                b,
                "c{cycle} n{} WRITE p{}v{} kind={}{}",
                rec.router,
                e.port,
                e.vc,
                e.kind,
                if e.buf_was_full { " (FULL!)" } else { "" }
            );
        }
    }

    fn on_inject(&mut self, cycle: Cycle, flit: &Flit) {
        if self.window.contains(&cycle) && self.buffer.len() < self.max_len {
            let _ = writeln!(self.buffer, "c{cycle} INJECT {flit}");
        }
    }

    fn on_eject(&mut self, ev: &EjectEvent) {
        if self.window.contains(&ev.cycle) && self.buffer.len() < self.max_len {
            let _ = writeln!(
                self.buffer,
                "c{} EJECT  {} at {}",
                ev.cycle, ev.flit, ev.node
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use noc_types::NocConfig;

    #[test]
    fn trace_captures_windowed_events() {
        let mut cfg = NocConfig::small_test();
        cfg.injection_rate = 0.1;
        let mut net = Network::new(cfg);
        let mut trace = TraceObserver::new(vec![], 100..200);
        for _ in 0..300 {
            net.step_observed(&mut trace);
        }
        let text = trace.text();
        assert!(text.contains("RC"), "trace has RC events");
        assert!(text.contains("WRITE"));
        assert!(text.lines().all(|l| {
            let c: u64 = l[1..l.find(' ').unwrap()].parse().unwrap();
            (100..200).contains(&c)
        }));
    }

    #[test]
    fn trace_scopes_to_router_set() {
        let mut cfg = NocConfig::small_test();
        cfg.injection_rate = 0.2;
        let mut net = Network::new(cfg);
        let mut trace = TraceObserver::new(vec![5], 0..500);
        for _ in 0..500 {
            net.step_observed(&mut trace);
        }
        for line in trace.text().lines() {
            if line.contains(" n") && !line.contains("INJECT") && !line.contains("EJECT") {
                assert!(line.contains(" n5 "), "foreign router in trace: {line}");
            }
        }
    }
}
