//! Derive macros for the in-tree `serde` stand-in.
//!
//! These parse the item's `TokenStream` by hand (no `syn`/`quote` — the
//! build environment is offline) and emit `Serialize` / `Deserialize`
//! impls that call into the runtime helpers in the `serde` shim crate.
//!
//! Supported shapes — exactly what this workspace declares:
//!
//! * named-field structs → JSON objects;
//! * tuple structs → JSON arrays (newtype structs → the inner value);
//! * unit structs → `null`;
//! * enums with unit variants (ignoring `= discriminant`) → strings;
//! * enums with tuple / struct variants → externally tagged objects
//!   `{"Variant": ...}`.
//!
//! Not supported (and not used anywhere in the workspace): generics,
//! lifetimes on the item, and `#[serde(...)]` attributes. Outer
//! attributes such as `#[derive(...)]`, `#[repr(u8)]` and doc comments
//! are skipped.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the in-tree stand-in's trait).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.data {
        Data::Struct(fields) => struct_ser(&item.name, fields),
        Data::Enum(variants) => enum_ser(&item.name, variants),
    };
    let out = format!(
        "impl ::serde::Serialize for {} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{}\n}}\n}}",
        item.name, body
    );
    out.parse()
        .expect("derive(Serialize): generated code parses")
}

/// Derives `serde::Deserialize` (the in-tree stand-in's trait).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.data {
        Data::Struct(fields) => struct_de(&item.name, fields),
        Data::Enum(variants) => enum_de(&item.name, variants),
    };
    let out = format!(
        "impl ::serde::Deserialize for {} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{}\n}}\n}}",
        item.name, body
    );
    out.parse()
        .expect("derive(Deserialize): generated code parses")
}

// ---- code generation ----

fn struct_ser(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => "let _ = self; ::serde::Value::Null".to_string(),
        Fields::Named(names) => {
            let mut s = String::from("::serde::Value::Object(vec![\n");
            for f in names {
                s.push_str(&format!(
                    "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),\n"
                ));
            }
            s.push_str("])");
            s
        }
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let mut s = String::from("::serde::Value::Array(vec![\n");
            for i in 0..*n {
                s.push_str(&format!("::serde::Serialize::to_value(&self.{i}),\n"));
            }
            s.push_str("])");
            s
        }
        Fields::Unknown => panic!("derive(Serialize): unsupported fields on struct {name}"),
    }
}

fn struct_de(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!("let _ = v; Ok({name})"),
        Fields::Named(names) => {
            let mut s = format!("Ok({name} {{\n");
            for f in names {
                s.push_str(&format!(
                    "{f}: ::serde::de_field(v, \"{f}\", \"{name}\")?,\n"
                ));
            }
            s.push_str("})");
            s
        }
        Fields::Tuple(1) => format!(
            "Ok({name}(::serde::Deserialize::from_value(v).map_err(|e| \
             ::serde::DeError::new(format!(\"{name}: {{e}}\")))?))"
        ),
        Fields::Tuple(n) => {
            let mut s = format!("Ok({name}(\n");
            for i in 0..*n {
                s.push_str(&format!("::serde::tuple_elem(v, {i}, \"{name}\")?,\n"));
            }
            s.push_str("))");
            s
        }
        Fields::Unknown => panic!("derive(Deserialize): unsupported fields on struct {name}"),
    }
}

fn enum_ser(name: &str, variants: &[Variant]) -> String {
    let mut s = String::from("match self {\n");
    for var in variants {
        let v = &var.name;
        match &var.fields {
            Fields::Unit => s.push_str(&format!(
                "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),\n"
            )),
            Fields::Tuple(1) => s.push_str(&format!(
                "{name}::{v}(x0) => ::serde::variant_value(\"{v}\", ::serde::Serialize::to_value(x0)),\n"
            )),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                let elems: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                s.push_str(&format!(
                    "{name}::{v}({}) => ::serde::variant_value(\"{v}\", ::serde::Value::Array(vec![{}])),\n",
                    binds.join(", "),
                    elems.join(", ")
                ));
            }
            Fields::Named(fields) => {
                let binds = fields.join(", ");
                let mut obj = String::from("::serde::Value::Object(vec![");
                for f in fields {
                    obj.push_str(&format!(
                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),"
                    ));
                }
                obj.push_str("])");
                s.push_str(&format!(
                    "{name}::{v} {{ {binds} }} => ::serde::variant_value(\"{v}\", {obj}),\n"
                ));
            }
            Fields::Unknown => panic!("derive(Serialize): unsupported variant {name}::{v}"),
        }
    }
    s.push('}');
    s
}

fn enum_de(name: &str, variants: &[Variant]) -> String {
    let all_unit = variants.iter().all(|v| matches!(v.fields, Fields::Unit));
    let mut s = String::new();
    // Unit variants may arrive as plain strings.
    s.push_str("if let Some(tag) = v.as_str() {\nreturn match tag {\n");
    for var in variants {
        if matches!(var.fields, Fields::Unit) {
            let v = &var.name;
            s.push_str(&format!("\"{v}\" => Ok({name}::{v}),\n"));
        }
    }
    s.push_str(&format!(
        "other => Err(::serde::DeError::unknown_variant(other, \"{name}\")),\n}};\n}}\n"
    ));
    if all_unit {
        s.push_str(&format!(
            "Err(::serde::DeError::expected(\"variant string\", \"{name}\"))"
        ));
        return s;
    }
    // Data-carrying variants arrive as {"Variant": inner}.
    s.push_str(&format!(
        "let (tag, inner) = ::serde::variant_parts(v, \"{name}\")?;\nmatch tag {{\n"
    ));
    for var in variants {
        let v = &var.name;
        let ctx = format!("{name}::{v}");
        match &var.fields {
            Fields::Unit => {
                // Also tolerate the object form for unit variants.
                s.push_str(&format!(
                    "\"{v}\" => {{ let _ = inner; Ok({name}::{v}) }},\n"
                ));
            }
            Fields::Tuple(1) => s.push_str(&format!(
                "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_value(inner).map_err(|e| \
                 ::serde::DeError::new(format!(\"{ctx}: {{e}}\")))?)),\n"
            )),
            Fields::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::tuple_elem(inner, {i}, \"{ctx}\")?"))
                    .collect();
                s.push_str(&format!(
                    "\"{v}\" => Ok({name}::{v}({})),\n",
                    elems.join(", ")
                ));
            }
            Fields::Named(fields) => {
                let mut inits = String::new();
                for f in fields {
                    inits.push_str(&format!(
                        "{f}: ::serde::de_field(inner, \"{f}\", \"{ctx}\")?,"
                    ));
                }
                s.push_str(&format!("\"{v}\" => Ok({name}::{v} {{ {inits} }}),\n"));
            }
            Fields::Unknown => panic!("derive(Deserialize): unsupported variant {ctx}"),
        }
    }
    s.push_str(&format!(
        "other => Err(::serde::DeError::unknown_variant(other, \"{name}\")),\n}}\n"
    ));
    s
}

// ---- item parsing ----

struct Item {
    name: String,
    data: Data,
}

enum Data {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Fields {
    Unit,
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields — only the arity matters.
    Tuple(usize),
    Unknown,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes `#[...]` and visibility `pub` / `pub(...)`.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected item name, got {other:?}"),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive: generic items are not supported by the offline serde shim ({name})");
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                // `struct Name;`
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                None => Fields::Unit,
                Some(TokenTree::Group(g)) => parse_fields(g.delimiter(), g.stream()),
                other => panic!("derive: unexpected token after struct {name}: {other:?}"),
            };
            Item {
                name,
                data: Data::Struct(fields),
            }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("derive: expected enum body for {name}, got {other:?}"),
            };
            Item {
                name,
                data: Data::Enum(parse_variants(body)),
            }
        }
        other => panic!("derive: expected struct or enum, got `{other}`"),
    }
}

/// Splits a field/variant list on top-level commas (angle-bracket aware,
/// so commas inside `Option<(u8, u8)>` don't split).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut pieces = vec![Vec::new()];
    let mut angle_depth: i32 = 0;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                pieces.push(Vec::new());
                continue;
            }
            _ => {}
        }
        pieces.last_mut().expect("non-empty").push(t);
    }
    if pieces.last().map(Vec::is_empty).unwrap_or(false) {
        pieces.pop(); // trailing comma
    }
    pieces
}

/// Strips leading attributes and visibility from one field/variant piece.
fn strip_attrs_vis(piece: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    loop {
        match piece.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = piece.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return &piece[i..],
        }
    }
}

fn parse_fields(delim: Delimiter, stream: TokenStream) -> Fields {
    match delim {
        Delimiter::Brace => {
            let mut names = Vec::new();
            for piece in split_top_level(stream) {
                let piece = strip_attrs_vis(&piece);
                match piece.first() {
                    Some(TokenTree::Ident(id)) => names.push(id.to_string()),
                    None => continue,
                    other => panic!("derive: expected field name, got {other:?}"),
                }
            }
            Fields::Named(names)
        }
        Delimiter::Parenthesis => Fields::Tuple(split_top_level(stream).len()),
        _ => Fields::Unknown,
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    for piece in split_top_level(stream) {
        let piece = strip_attrs_vis(&piece);
        let mut it = piece.iter();
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => continue,
            other => panic!("derive: expected variant name, got {other:?}"),
        };
        // After the name: nothing (unit), `= discr` (unit with
        // discriminant), `(...)` (tuple) or `{...}` (struct).
        let fields = match it.next() {
            None => Fields::Unit,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => Fields::Unit,
            Some(TokenTree::Group(g)) => parse_fields(g.delimiter(), g.stream()),
            other => panic!("derive: unexpected token in variant {name}: {other:?}"),
        };
        variants.push(Variant { name, fields });
    }
    variants
}
