//! Property-based integration tests over the whole stack: across random
//! configurations (mesh shape, VC count, buffer policy, routing algorithm,
//! traffic pattern, load), a fault-free network conserves flits, delivers
//! in order, drains, and never trips a NoCAlert checker or a ForEVeR
//! alarm.

use proptest::prelude::*;
use nocalert_repro::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone, Default)]
struct Log {
    injected: Vec<Flit>,
    ejected: Vec<(NodeId, Flit)>,
}

impl Observer for Log {
    fn on_inject(&mut self, _c: u64, f: &Flit) {
        self.injected.push(*f);
    }
    fn on_eject(&mut self, ev: &noc_types::record::EjectEvent) {
        self.ejected.push((ev.node, ev.flit));
    }
}

fn arb_config() -> impl Strategy<Value = NocConfig> {
    (
        2u8..=4,            // width
        2u8..=4,            // height
        prop_oneof![Just(2u8), Just(4u8)],
        2u8..=5,            // depth
        prop_oneof![Just(noc_types::BufferPolicy::Atomic), Just(noc_types::BufferPolicy::NonAtomic)],
        prop_oneof![
            Just(noc_types::RoutingAlgorithm::XY),
            Just(noc_types::RoutingAlgorithm::WestFirst)
        ],
        prop_oneof![
            Just(TrafficPattern::UniformRandom),
            Just(TrafficPattern::Transpose),
            Just(TrafficPattern::Tornado),
            Just(TrafficPattern::Neighbor),
        ],
        0.02f64..0.25,
        1u16..=6, // packet length
        0u64..1_000_000, // seed
    )
        .prop_map(|(w, h, vcs, depth, policy, routing, traffic, rate, len, seed)| {
            let mut cfg = NocConfig::paper_baseline();
            cfg.mesh = Mesh::new(w, h);
            cfg.vcs_per_port = vcs;
            cfg.message_classes = 2;
            cfg.packet_lengths = vec![len, len];
            cfg.buffer_depth = depth;
            cfg.buffer_policy = policy;
            cfg.routing = routing;
            cfg.traffic = traffic;
            cfg.injection_rate = rate;
            cfg.seed = seed;
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]

    #[test]
    fn fault_free_network_is_correct_and_silent(cfg in arb_config()) {
        let mut net = Network::new(cfg.clone());
        let mut bank = AlertBank::new(&cfg);
        let mut fv = Forever::new(&cfg, 700);
        let mut log = Log::default();
        for _ in 0..1_200 {
            net.step_observed(&mut (&mut bank, &mut fv, &mut log));
        }
        let drained = net.drain(&mut (&mut bank, &mut fv, &mut log), 15_000);
        prop_assert!(drained, "fault-free network failed to drain");

        // Conservation: every injected flit delivered exactly once at its
        // destination, in intra-packet order, uncorrupted.
        let mut delivered: HashMap<u64, u32> = HashMap::new();
        let mut next_seq: HashMap<u64, u16> = HashMap::new();
        for (node, f) in &log.ejected {
            prop_assert_eq!(f.dest, *node);
            prop_assert!(!f.corrupted);
            *delivered.entry(f.uid).or_default() += 1;
            let e = next_seq.entry(f.packet.0).or_default();
            prop_assert_eq!(f.seq, *e);
            *e += 1;
        }
        for f in &log.injected {
            prop_assert_eq!(delivered.get(&f.uid).copied().unwrap_or(0), 1);
        }
        prop_assert_eq!(log.injected.len(), log.ejected.len());

        // Silence: neither detector may raise anything without a fault.
        prop_assert!(bank.assertions().is_empty(),
            "NoCAlert spurious: {:?}", bank.assertions().first());
        prop_assert!(fv.detections().is_empty(),
            "ForEVeR spurious: {:?}", fv.detections().first());
    }

    #[test]
    fn single_bit_faults_never_produce_undetected_violations(
        cfg in arb_config(),
        site_sel in 0usize..5_000,
        warm in 200u64..900,
    ) {
        // The headline property (Observation 1), fuzzed across the whole
        // configuration space rather than just the paper baseline.
        let mut cfg = cfg;
        cfg.injection_rate = cfg.injection_rate.max(0.05);
        let cc = CampaignConfig {
            noc: cfg.clone(),
            warmup: warm,
            active_window: 400,
            drain_deadline: 8_000,
            forever_epoch: 350,
        };
        let campaign = Campaign::new(cc);
        let sites = enumerate_sites(&cfg);
        let site = sites[site_sel % sites.len()];
        let r = campaign.run_site(site);
        if r.malicious() {
            prop_assert!(r.nocalert.detected,
                "false negative at {} (verdict {:?})", site, r.verdict.violations);
        }
        if !r.nocalert.detected {
            prop_assert!(!r.malicious(), "Observation 5 violated at {}", site);
        }
    }
}
