//! VC buffers with physically honest "stale slot" semantics.
//!
//! Section 4.1 of the paper: *"since buffers employ pointers to maintain
//! FIFO order, an 'empty' buffer slot is not blank"* — a faulty read of an
//! empty FIFO forwards whatever stale bits the slot holds, which is how
//! spontaneous flit generation happens in real hardware. [`VcBuffer`]
//! therefore models the ring storage explicitly: popped flits stay in their
//! slots, and [`VcBuffer::read_stale`] replays them.

use noc_types::flit::{Flit, FlitKind, FlitOrigin};
use noc_types::geometry::NodeId;
use noc_types::PacketId;
use serde::{Deserialize, Serialize};

/// A fixed-capacity FIFO of flits backed by a ring of persistent slots.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct VcBuffer {
    slots: Vec<Option<Flit>>,
    head: usize,
    len: usize,
}

// Manual impl so `clone_from` (the arena reset path) reuses the slot
// allocation instead of reallocating one ring per VC per run.
impl Clone for VcBuffer {
    fn clone(&self) -> VcBuffer {
        VcBuffer {
            slots: self.slots.clone(),
            head: self.head,
            len: self.len,
        }
    }

    fn clone_from(&mut self, src: &VcBuffer) {
        self.slots.clone_from(&src.slots);
        self.head = src.head;
        self.len = src.len;
    }
}

impl VcBuffer {
    /// Creates a buffer of `depth` slots.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: u8) -> VcBuffer {
        assert!(depth > 0, "buffer depth must be non-zero");
        VcBuffer {
            slots: vec![None; depth as usize],
            head: 0,
            len: 0,
        }
    }

    /// Number of buffered flits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no live flit is buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when every slot holds a live flit.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.slots.len()
    }

    /// Capacity in flits.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The flit at the FIFO head, if any.
    #[inline]
    pub fn peek(&self) -> Option<&Flit> {
        if self.len > 0 {
            self.slots[self.head].as_ref()
        } else {
            None
        }
    }

    /// Iterates over the live flits in FIFO order.
    pub fn iter(&self) -> impl Iterator<Item = &Flit> + '_ {
        (0..self.len).filter_map(move |i| self.slots[(self.head + i) % self.slots.len()].as_ref())
    }

    /// Appends a flit.
    ///
    /// When the buffer is already full — which only happens under a fault,
    /// since credit-based flow control normally prevents it — the write
    /// physically lands on the head slot and **destroys the oldest flit**,
    /// exactly what an overrun write does to a ring buffer. The destroyed
    /// flit is returned so callers can account for the loss.
    pub fn push(&mut self, flit: Flit) -> Option<Flit> {
        if self.is_full() {
            let lost = self.slots[self.head].replace(flit);
            // Oldest flit overwritten; occupancy unchanged.
            return lost;
        }
        let idx = (self.head + self.len) % self.slots.len();
        self.slots[idx] = Some(flit);
        self.len += 1;
        None
    }

    /// Removes and returns the head flit.
    ///
    /// The slot *keeps a stale copy* of the flit — only the pointers move —
    /// so a later faulty [`read_stale`](VcBuffer::read_stale) can replay it.
    pub fn pop(&mut self) -> Option<Flit> {
        if self.len == 0 {
            return None;
        }
        let flit = self.slots[self.head];
        self.head = (self.head + 1) % self.slots.len();
        self.len -= 1;
        flit
    }

    /// Reads the head slot of an **empty** buffer: the stale-garbage replay
    /// of invariance 24 / the "new flit generation" discussion in the paper.
    ///
    /// Returns the stale content of the slot the head pointer rests on,
    /// re-marked as [`FlitOrigin::StaleReplay`]; a never-written slot yields
    /// a fabricated null flit (all-zero wires).
    pub fn read_stale(&self) -> Flit {
        let mut flit = self.slots[self.head].unwrap_or(Flit {
            uid: 0,
            packet: PacketId(0),
            seq: 0,
            kind: FlitKind::Head,
            src: NodeId(0),
            dest: NodeId(0),
            class: 0,
            injected_at: 0,
            origin: FlitOrigin::StaleReplay,
            corrupted: false,
        });
        flit.origin = FlitOrigin::StaleReplay;
        flit
    }

    /// Drops every live flit (a recovery-controller VC reset), returning
    /// how many were destroyed. The slots keep their stale copies and the
    /// head pointer is left in place — physically this is a pointer reset,
    /// not a storage wipe.
    pub fn clear(&mut self) -> usize {
        let dropped = self.len;
        self.len = 0;
        dropped
    }

    /// The wire value a head-kind observer sees: the live head's kind, or
    /// the stale slot's kind when the buffer is empty.
    pub fn head_kind_wire(&self) -> FlitKind {
        self.peek()
            .map(|f| f.kind)
            .unwrap_or_else(|| self.read_stale().kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::flit::make_packet;

    fn flits(n: u16) -> Vec<Flit> {
        make_packet(PacketId(1), 100, NodeId(0), NodeId(5), 0, n, 0)
    }

    #[test]
    fn fifo_order_preserved() {
        let mut b = VcBuffer::new(5);
        for f in flits(5) {
            assert!(b.push(f).is_none());
        }
        assert!(b.is_full());
        for i in 0..5 {
            let f = b.pop().unwrap();
            assert_eq!(f.seq, i);
        }
        assert!(b.is_empty());
    }

    #[test]
    fn wraparound_keeps_order() {
        let mut b = VcBuffer::new(3);
        let fs = flits(6);
        b.push(fs[0]);
        b.push(fs[1]);
        assert_eq!(b.pop().unwrap().seq, 0);
        b.push(fs[2]);
        b.push(fs[3]);
        assert_eq!(b.pop().unwrap().seq, 1);
        b.push(fs[4]);
        assert_eq!(b.pop().unwrap().seq, 2);
        assert_eq!(b.pop().unwrap().seq, 3);
        assert_eq!(b.pop().unwrap().seq, 4);
        assert!(b.pop().is_none());
    }

    #[test]
    fn overrun_write_destroys_oldest() {
        let mut b = VcBuffer::new(2);
        let fs = flits(3);
        b.push(fs[0]);
        b.push(fs[1]);
        let lost = b.push(fs[2]);
        assert_eq!(lost.unwrap().seq, 0);
        assert_eq!(b.len(), 2);
        // The overwritten head slot now yields the new flit.
        assert_eq!(b.pop().unwrap().seq, 2);
        assert_eq!(b.pop().unwrap().seq, 1);
    }

    #[test]
    fn stale_read_replays_last_popped() {
        let mut b = VcBuffer::new(2);
        let fs = flits(3);
        // Fill and drain the two slots twice so the head pointer wraps onto
        // slots that retain stale flit copies.
        b.push(fs[0]);
        b.push(fs[1]);
        b.pop();
        b.pop();
        assert!(b.is_empty());
        // Head is back at slot 0, which still holds fs[0]'s stale bits.
        let stale = b.read_stale();
        assert_eq!(stale.origin, FlitOrigin::StaleReplay);
        assert_eq!(stale.uid, fs[0].uid, "replays the stale slot content");
        // After one more push/pop, the head rests on the fs[1] slot.
        b.push(fs[2]);
        b.pop();
        let stale2 = b.read_stale();
        assert_eq!(stale2.origin, FlitOrigin::StaleReplay);
        assert_eq!(stale2.uid, fs[1].uid);
    }

    #[test]
    fn stale_read_of_virgin_buffer_is_null_flit() {
        let b = VcBuffer::new(3);
        let stale = b.read_stale();
        assert_eq!(stale.uid, 0);
        assert_eq!(stale.origin, FlitOrigin::StaleReplay);
    }

    #[test]
    fn head_kind_wire_reads_live_or_stale() {
        let mut b = VcBuffer::new(2);
        let fs = flits(2); // Head, Tail
        b.push(fs[0]);
        b.push(fs[1]);
        assert_eq!(b.head_kind_wire(), FlitKind::Head);
        b.pop();
        assert_eq!(b.head_kind_wire(), FlitKind::Tail);
        b.pop();
        // Empty: the head pointer wrapped back onto the stale header slot.
        assert_eq!(b.head_kind_wire(), FlitKind::Head);
    }

    #[test]
    #[should_panic(expected = "depth must be non-zero")]
    fn zero_depth_panics() {
        VcBuffer::new(0);
    }
}
