//! The fault-injection campaign driver (Section 5.3 of the paper) and
//! its resilient execution runtime.
//!
//! A [`Campaign`] warms a network up to the chosen injection instant
//! (cycle 0 for an empty network, 32K for steady state), snapshots it,
//! runs the fault-free **golden reference** rollout once, and then rolls
//! out one clone per fault site with NoCAlert, ForEVeR and the run log
//! attached. Each rollout yields a [`RunResult`]: ground-truth verdict
//! (malicious/benign), detection flags and latencies for all three
//! detector views, and the per-checker statistics behind Figures 8 and 9.
//!
//! # Resilient execution
//!
//! Fault injection drives the simulator into corners; the resilient
//! runtime ([`Campaign::run_many_resilient`]) keeps multi-hour sweeps
//! alive through them:
//!
//! * **panic isolation** ([`resilience`]) — each run executes behind
//!   `catch_unwind`; a panicking run becomes a structured
//!   [`RunOutcome::Crashed`] carrying the site and payload;
//! * **watchdogs** ([`fault::Watchdog`]) — a per-run cycle budget plus
//!   progress-based hang detection during drain turn wedged runs into
//!   deterministic [`RunOutcome::Deadlock`] outcomes whose oracle
//!   comparison still completes;
//! * **deterministic retry** — crashed/hung runs re-execute once with
//!   identical state; a divergent second outcome is flagged as a
//!   [`Determinism::Violated`] harness bug;
//! * **checkpoint/resume** ([`checkpoint`]) — workers flush each
//!   completed site to JSONL shards; a resumed campaign skips completed
//!   sites and reproduces the aggregates of an uninterrupted run for any
//!   worker count;
//! * **cancellation** — a shared flag requests flush-and-exit; the
//!   partial report says so via [`CampaignReport::interrupted`].

pub(crate) mod batch;
pub mod checkpoint;
pub mod error;
pub mod jsonl;
pub mod outcome;
pub(crate) mod resilience;

pub use checkpoint::Checkpoint;
pub use error::CampaignError;
pub use outcome::{
    outcome, Detector, DetectorOutcome, Determinism, Outcome, RunOutcome, RunResult, SiteReport,
};

use crate::oracle::{classify, GoldenReference, RunLog};
use fault::{rollout, rollout_watched, FaultSpec, Hang, Watchdog};
use forever::Forever;
use noc_sim::Network;
use noc_types::site::SiteRef;
use noc_types::{Cycle, NocConfig};
use nocalert::{AlertBank, CheckerId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// Campaign parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Network configuration (the paper: 8×8 baseline, uniform random).
    pub noc: NocConfig,
    /// Cycles of fault-free warm-up before injection (0 or 32,000 in the
    /// paper's Figure 6).
    pub warmup: Cycle,
    /// Cycles of live traffic after the injection instant.
    pub active_window: Cycle,
    /// Drain budget after traffic generation stops; a network that cannot
    /// drain within this window is declared deadlocked.
    pub drain_deadline: Cycle,
    /// ForEVeR epoch length (paper: 1,500).
    pub forever_epoch: u64,
}

impl CampaignConfig {
    /// Paper-shaped defaults on top of `noc`: 2,000 active cycles after
    /// injection, 20,000-cycle drain budget, 1,500-cycle ForEVeR epochs.
    pub fn paper_defaults(noc: NocConfig, warmup: Cycle) -> CampaignConfig {
        CampaignConfig {
            noc,
            warmup,
            active_window: 2_000,
            drain_deadline: 20_000,
            forever_epoch: 1_500,
        }
    }
}

/// Execution policy for [`Campaign::run_many_resilient`].
#[derive(Debug, Clone, Default)]
pub struct ResilienceOptions {
    /// Hang-detection policy. `None` uses [`Watchdog::default_policy`].
    pub watchdog: Option<Watchdog>,
    /// Directory for JSONL result shards; `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Skip sites already present in the checkpoint. Without `resume`, a
    /// checkpoint directory that already holds shards is refused.
    pub resume: bool,
    /// Cooperative cancellation: set to `true` (e.g. from a signal
    /// handler or another thread) and workers finish their current site,
    /// flush, and exit. The report's `interrupted` flag is set.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl ResilienceOptions {
    fn dog(&self) -> Watchdog {
        self.watchdog.unwrap_or_else(Watchdog::default_policy)
    }

    fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::SeqCst))
    }
}

/// The product of a resilient campaign execution: one [`SiteReport`] per
/// input site (in input order), plus bookkeeping about how the sweep
/// went. Completed and watchdog-terminated runs still carry full
/// [`RunResult`]s, so the Figure 6–9 statistics consume
/// [`CampaignReport::results`] unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Reports in input-site order. When `interrupted`, sites cancelled
    /// before execution are absent.
    pub reports: Vec<SiteReport>,
    /// Sites skipped because a resumed checkpoint already held them.
    pub resumed: usize,
    /// Torn trailing checkpoint lines skipped while resuming (mid-shard
    /// corruption is a [`CampaignError::ShardCorrupt`], never skipped).
    pub corrupt_lines: usize,
    /// True when cancellation stopped the sweep before every site ran.
    pub interrupted: bool,
}

impl CampaignReport {
    /// The classified results (completed + deadlocked runs), in order —
    /// the input to the `stats` module.
    pub fn results(&self) -> Vec<RunResult> {
        self.reports
            .iter()
            .filter_map(|r| r.outcome.run_result().cloned())
            .collect()
    }

    /// Runs that completed normally.
    pub fn completed(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| matches!(r.outcome, RunOutcome::Completed(_)))
            .count()
    }

    /// Runs the watchdog terminated.
    pub fn deadlocked(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| r.outcome.is_deadlock())
            .count()
    }

    /// Runs quarantined after a panic.
    pub fn crashed(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| r.outcome.is_crashed())
            .count()
    }

    /// Crashed/hung runs whose deterministic retry diverged.
    pub fn determinism_violations(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| r.determinism_violated())
            .count()
    }
}

/// A prepared injection campaign: warmed snapshot + golden reference.
///
/// The detectors and the run log are threaded through the warm-up once and
/// their warmed states are cloned into every rollout — checkers observe
/// the network from cycle 0, exactly like the hardware they model, so a
/// packet that is mid-flight at the injection instant never looks like a
/// violation.
#[derive(Debug, Clone)]
pub struct Campaign {
    cc: CampaignConfig,
    snapshot: Network,
    bank0: AlertBank,
    forever0: Forever,
    log0: RunLog,
    golden: GoldenReference,
    /// Lazily built golden trajectory cache backing the batched rollout
    /// engine ([`batch`]): checkpoint ladder, full golden event streams,
    /// and eligibility flags. Built on first batched use, shared
    /// read-only across worker threads.
    traj: OnceLock<batch::GoldenTrajectory>,
}

/// Reusable per-worker simulation state: one network, detector pair and
/// run log that campaign rollouts rewind (via `clone_from`) and reuse
/// instead of reconstructing per site. Rewinding restores every field
/// from the warm snapshot, so results are bit-identical to fresh-cloned
/// runs — the steady-state cost per site is a memcpy-shaped reset, not
/// thousands of allocations.
#[derive(Debug, Clone)]
pub struct CampaignArena {
    net: Network,
    bank: AlertBank,
    forever: Forever,
    log: RunLog,
}

impl Campaign {
    /// Warms the network up, snapshots it, and runs the golden rollout.
    ///
    /// # Panics
    ///
    /// Panics where [`Campaign::try_new`] would return an error.
    pub fn new(cc: CampaignConfig) -> Campaign {
        match Campaign::try_new(cc) {
            Ok(c) => c,
            Err(e) => panic!("campaign construction failed: {e}"),
        }
    }

    /// Warms the network up, snapshots it, and runs the golden rollout,
    /// reporting failures as structured errors.
    ///
    /// # Errors
    ///
    /// * [`CampaignError::Substrate`] — the configuration failed
    ///   validation;
    /// * [`CampaignError::WarmupViolation`] — a detector raised during
    ///   the fault-free warm-up;
    /// * [`CampaignError::GoldenNotDrained`] — the fault-free golden
    ///   rollout deadlocked, so no classification would be meaningful.
    pub fn try_new(cc: CampaignConfig) -> Result<Campaign, CampaignError> {
        let mut net = Network::try_new(cc.noc.clone())?;
        let mut bank0 = AlertBank::new(&cc.noc);
        let mut forever0 = Forever::new(&cc.noc, cc.forever_epoch);
        let mut log0 = RunLog::new();
        for _ in 0..cc.warmup {
            net.step_observed(&mut (&mut bank0, &mut forever0, &mut log0));
        }
        if bank0.any_asserted() {
            return Err(CampaignError::WarmupViolation {
                detector: "NoCAlert",
                cycle: cc.warmup,
                detail: format!("{:?}", bank0.assertions().first()),
            });
        }
        if forever0.any_detected() {
            return Err(CampaignError::WarmupViolation {
                detector: "ForEVeR",
                cycle: cc.warmup,
                detail: format!("{:?}", forever0.detections().first()),
            });
        }
        let snapshot = net;
        let mut gnet = snapshot.clone();
        let mut glog = log0.clone();
        let out = rollout(
            &mut gnet,
            None,
            cc.active_window,
            cc.drain_deadline,
            &mut glog,
        );
        let golden = GoldenReference::try_from_log(&glog, out.drained)?;
        Ok(Campaign {
            cc,
            snapshot,
            bank0,
            forever0,
            log0,
            golden,
            traj: OnceLock::new(),
        })
    }

    /// The configuration this campaign runs under.
    pub fn config(&self) -> &CampaignConfig {
        &self.cc
    }

    /// The cycle at which faults are injected (`warmup`).
    pub fn injection_cycle(&self) -> Cycle {
        self.snapshot.cycle()
    }

    /// The golden reference (for external analyses).
    pub fn golden(&self) -> &GoldenReference {
        &self.golden
    }

    /// Disables one NoCAlert checker for every subsequent rollout —
    /// ablation support for redundancy studies ("no single checker is
    /// redundant", Section 5.4).
    pub fn disable_checker(&mut self, id: CheckerId) {
        self.bank0.disable(id);
    }

    /// Allocates a reusable [`CampaignArena`] pre-warmed with this
    /// campaign's snapshot state. One arena per worker thread turns the
    /// per-site cost from "construct a network" into "rewind a network".
    pub fn arena(&self) -> CampaignArena {
        CampaignArena {
            net: self.snapshot.clone(),
            bank: self.bank0.clone(),
            forever: self.forever0.clone(),
            log: self.log0.clone(),
        }
    }

    /// Runs one single-bit **transient** injection at `site` — the paper's
    /// campaign fault model.
    pub fn run_site(&self, site: SiteRef) -> RunResult {
        self.run_site_in(&mut self.arena(), site)
    }

    /// [`Campaign::run_site`] into a caller-provided arena.
    pub fn run_site_in(&self, arena: &mut CampaignArena, site: SiteRef) -> RunResult {
        self.run_spec_in(arena, FaultSpec::transient(site, self.injection_cycle()))
    }

    /// Runs an arbitrary fault spec (permanent/intermittent for the
    /// Observation-3 experiments). The spec's `start` should not precede
    /// the snapshot cycle.
    pub fn run_spec(&self, spec: FaultSpec) -> RunResult {
        self.run_spec_in(&mut self.arena(), spec)
    }

    /// [`Campaign::run_spec`] into a caller-provided arena.
    pub fn run_spec_in(&self, arena: &mut CampaignArena, spec: FaultSpec) -> RunResult {
        let (result, _hang) = self.run_spec_watched_in(
            arena,
            spec,
            Watchdog {
                cycle_budget: u64::MAX,
                stall_window: u64::MAX,
            },
        );
        result
    }

    /// [`Campaign::run_spec`] under a [`Watchdog`]: identical results on
    /// healthy runs; wedged runs terminate deterministically with a
    /// [`Hang`] and are still classified against the golden reference on
    /// the truncated log (the verdict then includes `NotDrained`).
    pub fn run_spec_watched(&self, spec: FaultSpec, dog: Watchdog) -> (RunResult, Option<Hang>) {
        self.run_spec_watched_in(&mut self.arena(), spec, dog)
    }

    /// [`Campaign::run_spec_watched`] into a caller-provided arena. The
    /// arena is rewound to the warm snapshot before the rollout, so the
    /// result is bit-identical to a fresh-cloned run regardless of what
    /// the arena ran before — including a run that panicked out of it.
    pub fn run_spec_watched_in(
        &self,
        arena: &mut CampaignArena,
        spec: FaultSpec,
        dog: Watchdog,
    ) -> (RunResult, Option<Hang>) {
        self.rewind(arena);
        let CampaignArena {
            net,
            bank,
            forever: fv,
            log,
        } = arena;
        let watched = rollout_watched(
            net,
            Some(&spec),
            self.cc.active_window,
            self.cc.drain_deadline,
            dog,
            &mut (&mut *bank, &mut *fv, &mut *log),
        );
        // A watchdog-terminated run skips the coda: its budget is spent,
        // and its ForEVeR view is reported as-of termination.
        if watched.hang.is_none() {
            self.coda(net, &mut (&mut *bank, &mut *fv, &mut *log));
        }
        let out = watched.outcome;
        let verdict = classify(&self.golden, log, out.drained);
        let result = self.assemble(spec, out.fault_hits, verdict, bank, fv);
        (result, watched.hang)
    }

    /// Resets an arena to the warm snapshot state.
    fn rewind(&self, arena: &mut CampaignArena) {
        arena.net.clone_from(&self.snapshot);
        arena.bank.clone_from(&self.bank0);
        arena.forever.clone_from(&self.forever0);
        arena.log.clone_from(&self.log0);
    }

    /// Coda: keep the clock running past the next two ForEVeR epoch
    /// boundaries so its end-of-epoch counter checks can evaluate the
    /// settled state (the paper's simulations run long enough for the
    /// epoch mechanism to conclude). A fully quiescent network with an
    /// inert fault plane and observers that certify the skip is
    /// fast-forwarded in O(1); anything else (sustained faults, stuck
    /// flits, imbalanced ForEVeR counters) steps cycle by cycle.
    fn coda<O: noc_sim::Observer>(&self, net: &mut Network, obs: &mut O) {
        let n = 2 * self.cc.forever_epoch + 1;
        if !net.try_fast_forward_quiescent(n, obs) {
            for _ in 0..n {
                net.step_observed(obs);
            }
        }
    }

    /// Builds the [`RunResult`] from a finished rollout's detector state.
    fn assemble(
        &self,
        spec: FaultSpec,
        fault_hits: u64,
        verdict: crate::oracle::Verdict,
        bank: &AlertBank,
        fv: &Forever,
    ) -> RunResult {
        let lat = |c: Option<Cycle>| c.map(|c| c.saturating_sub(spec.start));
        RunResult {
            site: spec.site,
            kind: spec.kind,
            injected_at: spec.start,
            fault_hits,
            verdict,
            nocalert: DetectorOutcome {
                detected: bank.any_asserted(),
                latency: lat(bank.first_detection()),
            },
            cautious: DetectorOutcome {
                detected: bank.first_detection_cautious().is_some(),
                latency: lat(bank.first_detection_cautious()),
            },
            forever: DetectorOutcome {
                detected: fv.any_detected(),
                latency: lat(fv.first_detection()),
            },
            checkers: bank.asserted_set(),
            simultaneous: bank.first_cycle_checkers().len() as u8,
        }
    }

    /// Runs one spec behind the full isolation stack: panic boundary,
    /// watchdog, and (for crashed/hung runs) one deterministic retry.
    /// Never panics, whatever the fault does to the simulator.
    pub fn run_spec_resilient(&self, spec: FaultSpec, dog: Watchdog) -> SiteReport {
        self.run_spec_resilient_in(&mut self.arena(), spec, dog)
    }

    /// [`Campaign::run_spec_resilient`] into a caller-provided arena. A
    /// panicking run may leave the arena torn mid-rollout; that is fine —
    /// the next use (including the deterministic retry below) rewinds
    /// every field from the warm snapshot first.
    pub fn run_spec_resilient_in(
        &self,
        arena: &mut CampaignArena,
        spec: FaultSpec,
        dog: Watchdog,
    ) -> SiteReport {
        let mut attempt = || -> RunOutcome {
            // The batched engine declines (returns `None`) outside its
            // equivalence proof; its results are bit-identical where it
            // applies, so retry determinism is unaffected by which path a
            // given attempt takes.
            match resilience::catch_payload(|| {
                match self.run_transient_batched_in(arena, spec, dog) {
                    Some(out) => out,
                    None => self.run_spec_watched_in(arena, spec, dog),
                }
            }) {
                Ok((result, None)) => RunOutcome::Completed(result),
                Ok((result, Some(hang))) => RunOutcome::Deadlock { result, hang },
                Err(payload) => RunOutcome::Crashed {
                    site: spec.site,
                    kind: spec.kind,
                    injected_at: spec.start,
                    payload,
                },
            }
        };
        let first = attempt();
        let determinism = if first.is_crashed() || first.is_deadlock() {
            let second = attempt();
            Some(if second == first {
                Determinism::Confirmed
            } else {
                Determinism::Violated {
                    second: second.summary(),
                }
            })
        } else {
            None
        };
        SiteReport {
            spec,
            outcome: first,
            determinism,
        }
    }

    /// Runs a batch of transient injections, one per site, across
    /// `threads` worker threads (`0`/`1` ⇒ sequential). Results are in
    /// site order and bit-identical regardless of thread count — the
    /// workers shard round-robin (worker `w` takes sites `w`, `w+threads`,
    /// …) and results are reassembled by input index, so the per-site
    /// results never depend on how the batch was split.
    ///
    /// Rollouts go through the batched bit-plane engine ([`batch`]) where
    /// its equivalence proof applies and through the scalar path where it
    /// does not; either way each result is bit-identical to
    /// [`Campaign::run_site`]'s.
    ///
    /// This is the fail-fast path: a panicking run propagates. Use
    /// [`Campaign::run_many_resilient`] for sweeps that must survive
    /// poisoned sites.
    pub fn run_many(&self, sites: &[SiteRef], threads: usize) -> Vec<RunResult> {
        let specs: Vec<FaultSpec> = sites
            .iter()
            .map(|&s| FaultSpec::transient(s, self.injection_cycle()))
            .collect();
        self.run_specs_batched(&specs, threads)
    }

    /// The resilient batch driver: panic isolation, watchdogs,
    /// deterministic retry, optional JSONL checkpointing with resume, and
    /// cooperative cancellation. One [`SiteReport`] per input spec, in
    /// input order, bit-identical for any `threads` value — shard layout
    /// depends on the worker count, aggregates never do.
    ///
    /// # Errors
    ///
    /// Checkpoint I/O and configuration-mismatch failures; per-run
    /// crashes and hangs are *outcomes*, not errors.
    pub fn run_many_resilient(
        &self,
        specs: &[FaultSpec],
        threads: usize,
        opts: &ResilienceOptions,
    ) -> Result<CampaignReport, CampaignError> {
        let ck = match &opts.checkpoint_dir {
            Some(dir) => Some(Checkpoint::open(dir, &self.cc)?),
            None => None,
        };
        let mut done: HashMap<FaultSpec, SiteReport> = HashMap::new();
        let mut corrupt_lines = 0usize;
        if let Some(ck) = &ck {
            let (reports, corrupt) = ck.load_reports()?;
            if !opts.resume && !reports.is_empty() {
                return Err(CampaignError::Checkpoint {
                    path: ck.dir().to_path_buf(),
                    detail: format!(
                        "directory already holds {} completed sites; pass resume=true to continue or point at a fresh directory",
                        reports.len()
                    ),
                });
            }
            if opts.resume {
                corrupt_lines = corrupt;
                for r in reports {
                    done.insert(r.spec, r); // later shards win on duplicates
                }
            }
        }
        let resumed = specs.iter().filter(|s| done.contains_key(s)).count();
        let todo: Vec<FaultSpec> = specs
            .iter()
            .copied()
            .filter(|s| !done.contains_key(s))
            .collect();
        let dog = self.dog_for(opts);

        let mut fresh: Vec<SiteReport> = Vec::new();
        if threads <= 1 || todo.len() < 2 {
            let mut writer = match &ck {
                Some(c) => Some(c.shard_writer(0)?),
                None => None,
            };
            let mut arena = self.arena();
            for &spec in &todo {
                if opts.cancelled() {
                    break;
                }
                let rep = self.run_spec_resilient_in(&mut arena, spec, dog);
                if let Some(w) = &mut writer {
                    w.append(&rep)?;
                }
                fresh.push(rep);
            }
        } else {
            // Round-robin sharding: worker `w` takes specs `w`,
            // `w+workers`, … — like `run_many`, so a straggler spec slows
            // one lane instead of serializing a whole contiguous chunk,
            // and the shard a spec lands in is a pure function of its
            // input index and the worker count.
            let workers = threads.min(todo.len());
            // Open every shard writer before spawning so I/O errors
            // surface eagerly.
            let mut writers: Vec<Option<checkpoint::ShardWriter>> = Vec::new();
            for i in 0..workers {
                writers.push(match &ck {
                    Some(c) => Some(c.shard_writer(i)?),
                    None => None,
                });
            }
            let todo = &todo;
            let results = std::thread::scope(|scope| {
                let handles: Vec<_> = writers
                    .into_iter()
                    .enumerate()
                    .map(|(w, mut writer)| {
                        scope.spawn(move || -> Result<Vec<SiteReport>, CampaignError> {
                            let mut arena = self.arena();
                            let mut out = Vec::new();
                            for &spec in todo.iter().skip(w).step_by(workers) {
                                if opts.cancelled() {
                                    break;
                                }
                                let rep = self.run_spec_resilient_in(&mut arena, spec, dog);
                                if let Some(wr) = &mut writer {
                                    wr.append(&rep)?;
                                }
                                out.push(rep);
                            }
                            Ok(out)
                        })
                    })
                    .collect();
                let mut results = Vec::new();
                for h in handles {
                    results.push(h.join());
                }
                results
            });
            for r in results {
                match r {
                    Ok(Ok(v)) => fresh.extend(v),
                    Ok(Err(e)) => return Err(e),
                    Err(p) => {
                        return Err(CampaignError::WorkerLost {
                            detail: resilience::panic_detail(p),
                        })
                    }
                }
            }
        }

        for r in fresh {
            done.insert(r.spec, r);
        }
        let mut reports = Vec::with_capacity(specs.len());
        let mut interrupted = false;
        for spec in specs {
            match done.get(spec) {
                Some(r) => reports.push(r.clone()),
                None => interrupted = true,
            }
        }
        Ok(CampaignReport {
            reports,
            resumed,
            corrupt_lines,
            interrupted,
        })
    }

    fn dog_for(&self, opts: &ResilienceOptions) -> Watchdog {
        opts.dog()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::site::{FaultKind, SignalKind};

    fn small_campaign() -> Campaign {
        let mut noc = NocConfig::small_test();
        noc.injection_rate = 0.08;
        let cc = CampaignConfig {
            noc,
            warmup: 300,
            active_window: 400,
            drain_deadline: 10_000,
            forever_epoch: 300,
        };
        Campaign::new(cc)
    }

    #[test]
    fn golden_reference_is_clean_against_itself() {
        let c = small_campaign();
        // A fault-free "injection" (no site armed) must be a clean run.
        let mut net = c.snapshot.clone();
        let mut log = c.log0.clone();
        let out = rollout(&mut net, None, 400, 10_000, &mut log);
        let verdict = classify(&c.golden, &log, out.drained);
        assert!(!verdict.malicious(), "{verdict:?}");
    }

    #[test]
    fn vacuous_injection_is_true_negative() {
        let c = small_campaign();
        // A dead-quiet wire: RC destination input on a corner router port
        // that sees no traffic within the window is likely vacuous; instead
        // use a site whose router is guaranteed idle by picking a transient
        // 1 cycle before any evaluation — simplest: bit on a VcOutVc of an
        // idle VC is only evaluated when the VC is active. Use hits == 0 as
        // the vacuousness witness.
        let site = SiteRef {
            router: 15,
            port: 0,
            vc: 3,
            signal: SignalKind::VcOutVc,
            bit: 0,
        };
        let r = c.run_site(site);
        if r.fault_hits == 0 {
            assert_eq!(r.outcome(Detector::NoCAlert), Outcome::TrueNegative);
            assert!(!r.malicious());
        }
    }

    #[test]
    fn rc_outdir_fault_is_detected_when_hit() {
        let c = small_campaign();
        // Permanent stuck bit on a local-port RC output: every routed
        // header from node 5's NI is misdirected.
        let site = SiteRef {
            router: 5,
            port: 4,
            vc: 0,
            signal: SignalKind::RcOutDir,
            bit: 1,
        };
        let spec = FaultSpec::permanent(site, c.injection_cycle());
        let r = c.run_spec(spec);
        assert!(r.fault_hits > 0, "node 5 injects within the window");
        assert!(r.nocalert.detected);
        assert_eq!(r.nocalert.latency, Some(r.nocalert.latency.unwrap()));
        // Detection is instantaneous: the checker sees the same wire.
        assert!(r.checkers.iter().any(|c| [1, 2, 3].contains(&c.0)));
    }

    #[test]
    fn run_many_is_deterministic_and_thread_invariant() {
        let c = small_campaign();
        let sites = fault::sample::stride(&fault::enumerate_sites(&c.cc.noc), 6);
        let seq = c.run_many(&sites, 1);
        let par = c.run_many(&sites, 3);
        assert_eq!(seq, par);
        assert_eq!(seq.len(), sites.len());
    }

    #[test]
    fn watched_run_matches_plain_run_when_healthy() {
        // The watchdog must be a pure observer: the default policy on a
        // healthy run yields a bit-identical RunResult to run_spec.
        let c = small_campaign();
        let site = SiteRef {
            router: 5,
            port: 4,
            vc: 0,
            signal: SignalKind::RcOutDir,
            bit: 1,
        };
        let spec = FaultSpec::permanent(site, c.injection_cycle());
        let plain = c.run_spec(spec);
        let (watched, hang) = c.run_spec_watched(spec, Watchdog::default_policy());
        assert!(hang.is_none());
        assert_eq!(plain, watched);
    }

    #[test]
    fn cycle_budget_trips_deterministically() {
        let c = small_campaign();
        let site = SiteRef {
            router: 0,
            port: 0,
            vc: 0,
            signal: SignalKind::Sa1Req,
            bit: 0,
        };
        let spec = FaultSpec::transient(site, c.injection_cycle());
        let dog = Watchdog {
            cycle_budget: 50, // far below active_window = 400
            stall_window: u64::MAX,
        };
        let rep = c.run_spec_resilient(spec, dog);
        match &rep.outcome {
            RunOutcome::Deadlock { hang, .. } => {
                assert_eq!(hang.kind, fault::HangKind::CycleBudget);
                assert_eq!(hang.at_cycle, c.injection_cycle() + 50);
            }
            other => panic!("expected Deadlock, got {}", other.summary()),
        }
        assert_eq!(rep.determinism, Some(Determinism::Confirmed));
    }

    #[test]
    fn panicking_run_is_quarantined_as_crashed() {
        let c = small_campaign();
        let site = SiteRef {
            router: 1,
            port: 0,
            vc: 0,
            signal: SignalKind::Sa1Req,
            bit: 0,
        };
        // period = 0 divides by zero inside the fault model the first
        // time the armed signal is evaluated.
        let spec = FaultSpec {
            site,
            kind: FaultKind::Intermittent { period: 0, duty: 1 },
            start: c.injection_cycle(),
        };
        let rep = c.run_spec_resilient(spec, Watchdog::default_policy());
        match &rep.outcome {
            RunOutcome::Crashed {
                payload, site: s, ..
            } => {
                assert_eq!(*s, site);
                // `delta % period` with period = 0 panics with the
                // remainder flavour of the division-by-zero message.
                assert!(payload.contains("divisor of zero"), "{payload}");
            }
            other => panic!("expected Crashed, got {}", other.summary()),
        }
        assert_eq!(rep.determinism, Some(Determinism::Confirmed));
    }

    #[test]
    fn resilient_batch_mixes_outcomes_and_stays_thread_invariant() {
        let c = small_campaign();
        let healthy = fault::sample::stride(&fault::enumerate_sites(&c.cc.noc), 40);
        let mut specs: Vec<FaultSpec> = healthy
            .iter()
            .map(|&s| FaultSpec::transient(s, c.injection_cycle()))
            .collect();
        // Poison one site in the middle of the batch.
        specs.insert(
            specs.len() / 2,
            FaultSpec {
                site: healthy[0],
                kind: FaultKind::Intermittent { period: 0, duty: 1 },
                start: c.injection_cycle(),
            },
        );
        let opts = ResilienceOptions::default();
        let seq = c.run_many_resilient(&specs, 1, &opts).unwrap();
        let par = c.run_many_resilient(&specs, 4, &opts).unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq.reports.len(), specs.len());
        assert_eq!(seq.crashed(), 1);
        assert!(!seq.interrupted);
        assert_eq!(seq.determinism_violations(), 0);
        // The poisoned site is excluded from stats; the rest classify.
        assert_eq!(seq.results().len(), specs.len() - 1);
    }

    #[test]
    fn fresh_checkpoint_dir_with_leftover_shards_is_refused() {
        let c = small_campaign();
        let dir = std::env::temp_dir().join(format!("nocalert-stale-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = FaultSpec::transient(fault::enumerate_sites(&c.cc.noc)[0], c.injection_cycle());
        let opts = ResilienceOptions {
            checkpoint_dir: Some(dir.clone()),
            ..ResilienceOptions::default()
        };
        c.run_many_resilient(&[spec], 1, &opts).unwrap();
        // Same dir, resume not requested: refuse rather than duplicate.
        let err = c.run_many_resilient(&[spec], 1, &opts).unwrap_err();
        assert!(matches!(err, CampaignError::Checkpoint { .. }), "{err}");
        // With resume it is a no-op: everything already done.
        let resumed = ResilienceOptions {
            resume: true,
            ..opts
        };
        let rep = c.run_many_resilient(&[spec], 1, &resumed).unwrap();
        assert_eq!(rep.resumed, 1);
        assert_eq!(rep.reports.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cancel_interrupts_and_resume_completes() {
        let c = small_campaign();
        let sites = fault::sample::stride(&fault::enumerate_sites(&c.cc.noc), 60);
        let specs: Vec<FaultSpec> = sites
            .iter()
            .map(|&s| FaultSpec::transient(s, c.injection_cycle()))
            .collect();
        let dir = std::env::temp_dir().join(format!("nocalert-cancel-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Pre-tripped cancel flag: workers stop before running anything.
        let flag = Arc::new(AtomicBool::new(true));
        let opts = ResilienceOptions {
            checkpoint_dir: Some(dir.clone()),
            cancel: Some(flag),
            ..ResilienceOptions::default()
        };
        let rep = c.run_many_resilient(&specs, 2, &opts).unwrap();
        assert!(rep.interrupted);
        assert!(rep.reports.is_empty());
        // Resume without the flag finishes the sweep; aggregates match an
        // uninterrupted run exactly.
        let opts = ResilienceOptions {
            checkpoint_dir: Some(dir.clone()),
            resume: true,
            ..ResilienceOptions::default()
        };
        let rep = c.run_many_resilient(&specs, 2, &opts).unwrap();
        assert!(!rep.interrupted);
        let uninterrupted = c
            .run_many_resilient(&specs, 1, &ResilienceOptions::default())
            .unwrap();
        assert_eq!(rep.reports, uninterrupted.reports);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
