//! Observation 2 — the "NoCAlert Cautious" recovery policy.
//!
//! Invariances 1 (illegal turn) and 3 (non-minimal route) are *low risk*:
//! when one of them fires alone, the packet was merely misdirected to a
//! still-legal direction and almost always arrives anyway. A recovery
//! controller driven by raw assertions would roll back immediately; the
//! cautious controller defers until a normal-risk checker corroborates.
//!
//! This example injects two faults and shows how the two policies react:
//!
//! 1. an RC destination-wire flip (misdirection — benign, lone inv 1/3),
//! 2. a crossbar column-control flip (packet mixing — malicious).
//!
//! Run with: `cargo run --release --example cautious_recovery`

use noc_types::site::SignalKind;
use nocalert_repro::prelude::*;

fn scenario(name: &str, site: SiteRef, cfg: &NocConfig) {
    println!("\n--- scenario: {name} ({site}) ---");
    let mut net = Network::new(cfg.clone());
    let mut bank = AlertBank::new(cfg);
    net.run(3_000);
    let t0 = net.cycle();
    net.arm_fault(site, FaultKind::Transient, t0);
    for _ in 0..6_000 {
        net.step_observed(&mut bank);
    }
    if net.fault_hits() == 0 {
        println!("fault hit no live wire this time");
        return;
    }
    let checkers: Vec<String> = bank.asserted_set().iter().map(|c| c.to_string()).collect();
    println!("asserted checkers: {}", checkers.join(", "));
    match bank.first_detection() {
        Some(c) => println!(
            "raw policy:      trigger recovery at cycle {c} (+{})",
            c - t0
        ),
        None => println!("raw policy:      no trigger"),
    }
    match bank.first_detection_cautious() {
        Some(c) => println!(
            "cautious policy: trigger recovery at cycle {c} (+{})",
            c - t0
        ),
        None => println!(
            "cautious policy: deferred — low-risk assertions only, packet likely delivered anyway"
        ),
    }
}

fn main() {
    let mut cfg = NocConfig::paper_baseline();
    cfg.injection_rate = 0.12;
    println!("== Observation 2: risk-aware recovery triggering ==");

    // Misdirection: flip a destination-X wire at a busy central router.
    scenario(
        "RC misdirection (low risk)",
        SiteRef {
            router: 27,
            port: 4,
            vc: 0,
            signal: SignalKind::RcDestX,
            bit: 0,
        },
        &cfg,
    );

    // Mixing: flip a crossbar column-control bit — flits collide.
    scenario(
        "crossbar column corruption (normal risk)",
        SiteRef {
            router: 27,
            port: 1,
            vc: 0,
            signal: SignalKind::XbarCol,
            bit: 3,
        },
        &cfg,
    );

    println!(
        "\nFigure-6 effect: deferring lone inv-1/inv-3 assertions lowers the false-positive\n\
         rate (paper: 30.62% -> 22.01% at cycle 0) at zero cost in false negatives."
    );
}
