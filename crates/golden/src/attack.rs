//! Adversarial rollouts: compromised-router attack models judged by a
//! detection/mitigation oracle (DESIGN.md §14).
//!
//! The fault campaigns ask whether NoCAlert sees *broken hardware*. This
//! module asks the harder question the checkers alone cannot answer:
//! what happens when a router is **malicious** — its pipeline behaves,
//! its wires check clean, and the damage happens on the output links
//! *after* the observation point ([`noc_sim::Adversary`] interposes in
//! the link phase of `step_observed`)? The closed loop here is the same
//! as [`crate::recovery`] (bank alerts → containment, ARQ transport
//! restoring delivery) plus the attacker's out-of-band actions: forged
//! and replayed control packets are physically injected at the
//! attacker's node and registered with the transport's wire registry,
//! and fabricated alerts are fed straight into containment.
//!
//! Every rollout is classified into exactly one [`AttackClass`] cell of
//! the detection/mitigation matrix. The classifier is deliberately
//! conservative: a cell where the attacker interfered but the run ends
//! apparently healthy with **no** detection evidence and **no**
//! mitigation trace is reported as [`AttackClass::UndetectedLoss`] even
//! if nothing measurable was lost — survival must be *explained*, not
//! assumed. The `attack` bench bin (and CI's `--smoke` gate) accept a
//! matrix only when no cell is an undetected loss.
//!
//! Evidence is kept honest under the alert-channel attacks: fabricated
//! alerts ([`noc_types::AttackKind::AlertFlood`]) bypass the
//! [`nocalert::AlertBank`] entirely (they are injected directly into
//! containment via `Network::notify_alert`), so bank assertions always
//! reflect genuine checker observations; and alert *suppression*
//! ([`noc_types::AttackKind::AlertSuppress`]) blocks the
//! alert-to-containment wire of the compromised router without touching
//! the bank's record — detection stands, reaction is what the attacker
//! starves.

use crate::campaign::jsonl;
use crate::campaign::resilience::catch_payload;
use crate::campaign::CampaignError;
use crate::recovery::{verify_delivery, DeliveryVerdict, RecoveryOptions, RecoveryOutcome};
use fault::{FaultSpec, Hang, HangKind};
use noc_sim::{
    AttackIntent, AttackStats, ControlCapture, Network, RecoveryStats, Transport, TransportStats,
};
use noc_types::{AttackKind, AttackSpec, Cycle, NocConfig, SimError};
use nocalert::{info, AlertBank};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Which mechanism accounts for an attack cell's outcome — exactly one
/// bucket per (attacker model × site × intensity) cell of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AttackClass {
    /// The attacker never effectively acted (armed too late, no victims
    /// traversed, every intent unperformable). The oracle must not claim
    /// a mitigation that was never exercised.
    Vacuous,
    /// Genuine detection evidence exists: checker-bank assertions,
    /// forgery suspicions scored by the transport, or a router escalated
    /// to malicious.
    DetectedByBank,
    /// Delivery was violated, but *loudly*: the sender gave up after
    /// `max_retries`, a watchdog tripped, the topology partitioned, or
    /// the rollout crashed — the system knows it failed.
    CaughtByOracle,
    /// Delivery held with no detection evidence, and the survival is
    /// explained by transport/containment activity (retransmissions,
    /// dedup, discarded misroutes, stale/forged controls absorbed,
    /// containment actions).
    MitigatedByArq,
    /// The failure mode the matrix exists to rule out: either messages
    /// were silently lost / duplicated towards the application, or the
    /// attacker interfered and the run ended apparently healthy with no
    /// trace explaining why. Zero cells may land here.
    UndetectedLoss,
}

/// Interference the attacker actually *performed*, as opposed to merely
/// intended: link-layer manipulations plus executed out-of-band intents
/// plus suppressed alert deliveries. [`AttackStats::interference`] counts
/// emitted intents too, but a `CtlReplay` intent that resolved to a data
/// packet is skipped by the harness and must not count — vacuity is
/// judged on actions, not intentions.
pub fn effective_interference(attack: &AttackStats, performed: u64, suppressed: u64) -> u64 {
    attack.packets_dropped
        + attack.flits_dropped
        + attack.flits_corrupted
        + attack.packets_misrouted
        + performed
        + suppressed
}

/// The pure cell classifier. `evidence` is genuine detection evidence
/// (bank assertions + transport suspicions + malicious escalations);
/// `mitigation` is transport/containment activity that explains survival.
///
/// Severity order: application-level duplicates or silent loss in an
/// apparently-quiescent run always classify as
/// [`AttackClass::UndetectedLoss`], regardless of what else fired — a
/// detection event does not excuse a broken delivery guarantee.
pub fn classify(
    interference: u64,
    outcome: &RecoveryOutcome,
    verdict: DeliveryVerdict,
    evidence: u64,
    mitigation: u64,
) -> AttackClass {
    if interference == 0 {
        return AttackClass::Vacuous;
    }
    if let DeliveryVerdict::Violated {
        undelivered,
        gave_up,
        duplicates,
    } = verdict
    {
        let silent = duplicates > 0
            || (undelivered > gave_up && matches!(outcome, RecoveryOutcome::Quiescent));
        if silent {
            return AttackClass::UndetectedLoss;
        }
        return if evidence > 0 {
            AttackClass::DetectedByBank
        } else {
            AttackClass::CaughtByOracle
        };
    }
    if evidence > 0 {
        AttackClass::DetectedByBank
    } else if mitigation > 0 {
        AttackClass::MitigatedByArq
    } else {
        AttackClass::UndetectedLoss
    }
}

/// Full result of one adversarial rollout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackRun {
    /// The attacker model that was armed.
    pub spec: AttackSpec,
    /// Co-located hardware fault, if the cell pairs one with the attack
    /// (the alert-suppression cells need genuine alerts to suppress).
    pub fault: Option<FaultSpec>,
    /// The cell's bucket in the detection/mitigation matrix.
    pub class: AttackClass,
    /// How the rollout ended.
    pub outcome: RecoveryOutcome,
    /// The delivery oracle's judgement.
    pub verdict: DeliveryVerdict,
    /// The attacker's own interference counters.
    pub attack: AttackStats,
    /// Transport counters (retransmits, forged controls ignored…).
    pub transport: TransportStats,
    /// Containment counters (squashes, suspicions noted, malicious…).
    pub recovery: RecoveryStats,
    /// Genuine checker-bank assertions (fabricated alerts bypass the
    /// bank, so this never counts attacker noise).
    pub bank_alerts: u64,
    /// Alert deliveries the compromised router suppressed before they
    /// reached containment (recorded by the bank regardless).
    pub suppressed_alerts: u64,
    /// Forgery suspicions the transport raised (failed tag or source
    /// validation on a control packet).
    pub suspicions: u64,
    /// Out-of-band intents the harness executed.
    pub intents_performed: u64,
    /// Intents that could not be executed (victim slot retired, replay
    /// target was a data packet) — interference that never happened.
    pub intents_skipped: u64,
    /// Cycle of the first genuine detection evidence (bank assertion or
    /// transport suspicion), if any.
    pub first_evidence_at: Option<Cycle>,
    /// Final simulation cycle.
    pub end_cycle: Cycle,
}

impl AttackRun {
    /// Cycles from the attacker going live to the first genuine
    /// detection evidence (`None` when nothing ever fired).
    pub fn detection_latency(&self) -> Option<Cycle> {
        self.first_evidence_at
            .map(|c| c.saturating_sub(self.spec.start))
    }

    /// Wire overhead beyond one transmission per message, mirroring
    /// [`crate::recovery::RecoveryRun::overhead_per_message`].
    pub fn overhead_per_message(&self) -> f64 {
        if self.transport.offered == 0 {
            return 0.0;
        }
        let extra =
            self.transport.retransmits + self.transport.acks_sent + self.transport.nacks_sent;
        extra as f64 / self.transport.offered as f64
    }
}

/// The adversarial closed-loop harness: one instance, many rollouts.
#[derive(Debug, Clone)]
pub struct AttackHarness {
    cfg: NocConfig,
    opts: RecoveryOptions,
}

/// Mutable per-rollout accounting threaded through the step loop.
#[derive(Debug, Default)]
struct StepCtx {
    consumed: usize,
    bank_alerts: u64,
    suppressed: u64,
    suspicions: u64,
    performed: u64,
    skipped: u64,
    first_evidence: Option<Cycle>,
}

impl AttackHarness {
    /// Builds a harness after validating `opts`.
    ///
    /// # Errors
    ///
    /// Propagates [`RecoveryOptions::validate`] failures.
    pub fn try_new(cfg: NocConfig, opts: RecoveryOptions) -> Result<AttackHarness, SimError> {
        opts.validate()?;
        Ok(AttackHarness { cfg, opts })
    }

    /// The options the harness runs with.
    pub fn options(&self) -> &RecoveryOptions {
        &self.opts
    }

    /// The configuration rollouts execute under.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// The cycle at which the measurement window ends and draining begins.
    pub fn active_end(&self) -> Cycle {
        self.opts.warmup.saturating_add(self.opts.active_window)
    }

    /// One adversarial rollout: arm the attacker (and the optional
    /// co-located fault), close the detection→containment→ARQ loop,
    /// execute the attacker's out-of-band intents, and classify the cell.
    ///
    /// # Errors
    ///
    /// [`SimError`] when the attack spec or co-fault is rejected by
    /// validation (nonexistent router, quarantined site, degenerate
    /// parameters) — a rejected cell is an error, not a matrix entry.
    pub fn run(&self, spec: &AttackSpec, fault: Option<&FaultSpec>) -> Result<AttackRun, SimError> {
        let mut net = Network::new(self.cfg.clone());
        net.enable_recovery(self.opts.policy);
        let mut bank = AlertBank::new(&self.cfg);
        // The full bank stays armed, as in the recovery harness: the
        // turn/progress checkers are region-aware and excuse degraded
        // routes per RC execution instead of disarming.
        let mut transport = Transport::new(&self.cfg, self.opts.arq);
        if let Some(f) = fault {
            f.validate_in(&net)?;
            net.arm_fault(f.site, f.kind, f.start);
        }
        net.arm_attack(spec)?;

        let dog = self.opts.watchdog;
        let active_end = self.active_end();
        let mut ctx = StepCtx::default();
        let mut hang: Option<Hang> = None;

        while net.cycle() < active_end {
            if net.cycle() >= dog.cycle_budget {
                hang = Some(Hang {
                    kind: HangKind::CycleBudget,
                    at_cycle: net.cycle(),
                    stalled_for: 0,
                });
                break;
            }
            self.step_once(spec, &mut net, &mut bank, &mut transport, &mut ctx);
        }

        if hang.is_none() {
            net.set_injection_enabled(false);
            let mut sig = net.progress_signature();
            let mut stalled: Cycle = 0;
            loop {
                if net.is_drained() && transport.quiescent() {
                    break;
                }
                if net.cycle() >= dog.cycle_budget {
                    hang = Some(Hang {
                        kind: HangKind::CycleBudget,
                        at_cycle: net.cycle(),
                        stalled_for: stalled,
                    });
                    break;
                }
                if transport.quiescent() && stalled >= dog.stall_window {
                    hang = Some(Hang {
                        kind: HangKind::NoProgress,
                        at_cycle: net.cycle(),
                        stalled_for: stalled,
                    });
                    break;
                }
                self.step_once(spec, &mut net, &mut bank, &mut transport, &mut ctx);
                let now = net.progress_signature();
                if now == sig {
                    stalled += 1;
                } else {
                    sig = now;
                    stalled = 0;
                }
            }
        }

        let verdict = verify_delivery(&transport);
        let partition = net
            .fault_region_map()
            .filter(|m| m.partitioned())
            .map(|m| m.live_components());
        let outcome = match (partition, hang) {
            (Some(components), _) => RecoveryOutcome::Partitioned { components },
            (None, Some(h)) => RecoveryOutcome::Hung(h),
            (None, None) => RecoveryOutcome::Quiescent,
        };
        let attack = net.attack_stats();
        let tstats = transport.stats();
        let recovery = net.recovery_stats();
        let interference = effective_interference(&attack, ctx.performed, ctx.suppressed);
        let evidence = ctx.bank_alerts + ctx.suspicions + recovery.routers_marked_malicious;
        let mitigation = tstats.retransmits
            + tstats.duplicates_suppressed
            + tstats.misrouted_flits
            + tstats.stray_flits
            + tstats.corrupted_arrivals
            + tstats.stale_controls
            + tstats.forged_controls_ignored
            + recovery.alerts_consumed
            + recovery.squashes
            + recovery.resets
            + recovery.disables;
        let class = classify(interference, &outcome, verdict, evidence, mitigation);
        Ok(AttackRun {
            spec: *spec,
            fault: fault.copied(),
            class,
            outcome,
            verdict,
            attack,
            transport: tstats,
            recovery,
            bank_alerts: ctx.bank_alerts,
            suppressed_alerts: ctx.suppressed,
            suspicions: ctx.suspicions,
            intents_performed: ctx.performed,
            intents_skipped: ctx.skipped,
            first_evidence_at: ctx.first_evidence,
            end_cycle: net.cycle(),
        })
    }

    /// [`AttackHarness::run`] behind the campaign panic-isolation
    /// boundary: a panicking rollout becomes a `Crashed` report (a crash
    /// is loud by construction, so it classifies as
    /// [`AttackClass::CaughtByOracle`]; the bench still refuses to accept
    /// crashed cells).
    ///
    /// # Errors
    ///
    /// Validation failures propagate exactly as from
    /// [`AttackHarness::run`]; only panics are converted to reports.
    pub fn run_isolated(
        &self,
        spec: &AttackSpec,
        fault: Option<&FaultSpec>,
    ) -> Result<AttackRun, SimError> {
        match catch_payload(|| self.run(spec, fault)) {
            Ok(result) => result,
            Err(panic) => Ok(AttackRun {
                spec: *spec,
                fault: fault.copied(),
                class: AttackClass::CaughtByOracle,
                outcome: RecoveryOutcome::Crashed(panic),
                verdict: DeliveryVerdict::Violated {
                    undelivered: 0,
                    gave_up: 0,
                    duplicates: 0,
                },
                attack: AttackStats::default(),
                transport: TransportStats::default(),
                recovery: RecoveryStats::default(),
                bank_alerts: 0,
                suppressed_alerts: 0,
                suspicions: 0,
                intents_performed: 0,
                intents_skipped: 0,
                first_evidence_at: None,
                end_cycle: 0,
            }),
        }
    }

    /// One simulated cycle of the adversarial closed loop. Beyond the
    /// recovery harness's alert translation, this (a) withholds the
    /// compromised router's own alerts from containment when the model is
    /// [`AttackKind::AlertSuppress`], (b) executes the attacker's
    /// out-of-band intents through public APIs (forged traffic is
    /// physically injected at the attacker's node, so its wire source is
    /// honest — in-model, sources cannot be forged), and (c) feeds
    /// transport forgery suspicions back into the containment plane's
    /// malice scoring.
    fn step_once(
        &self,
        spec: &AttackSpec,
        net: &mut Network,
        bank: &mut AlertBank,
        transport: &mut Transport,
        ctx: &mut StepCtx,
    ) {
        net.step_observed(&mut (&mut *bank, &mut *transport));
        let fresh = bank.events_since(ctx.consumed);
        ctx.consumed = bank.assertions().len();
        let suppressing = spec.kind == AttackKind::AlertSuppress;
        for ev in fresh {
            ctx.bank_alerts += 1;
            if ctx.first_evidence.is_none() {
                ctx.first_evidence = Some(ev.cycle);
            }
            if suppressing && ev.router == spec.router && ev.cycle >= spec.start {
                // The compromised router eats its own alert wire: the
                // bank has recorded the assertion (detection stands) but
                // containment never hears about it.
                ctx.suppressed += 1;
                continue;
            }
            if let Some(module) = info(ev.checker).module {
                net.notify_alert(ev.router, ev.port, ev.vc, module.port_is_output());
            }
        }
        for intent in net.drain_attack_intents() {
            match intent {
                AttackIntent::ForgeAck {
                    victim,
                    sender,
                    claimed_src,
                    class,
                    tag,
                } => {
                    // The forged control claims the swallowed packet's
                    // app id; if the victim's wire slot already retired,
                    // there is nothing left to forge against.
                    let Some(app) = transport.data_app(victim) else {
                        ctx.skipped += 1;
                        continue;
                    };
                    let len =
                        self.cfg.packet_lengths[class as usize % self.cfg.packet_lengths.len()];
                    let Some(pid) = net.enqueue_packet(spec.router, sender, class, len) else {
                        ctx.skipped += 1;
                        continue;
                    };
                    // Injected downstream of the attacker's egress filter:
                    // a full-rate attacker must not swallow the forgery it
                    // just asked for on its way out.
                    net.mark_attack_injection(pid);
                    transport.register_forged_control(
                        pid,
                        net.cycle(),
                        ControlCapture {
                            app,
                            nack: false,
                            claimed_src,
                            dest: sender,
                            class,
                            len,
                            tag,
                        },
                    );
                    ctx.performed += 1;
                }
                AttackIntent::Replay { captured } => {
                    // Only captured *control* packets replay bit-faithfully
                    // (genuine tag included); captured data packets carry
                    // nothing a replay could close.
                    let Some(cap) = transport.control_meta(captured) else {
                        ctx.skipped += 1;
                        continue;
                    };
                    let Some(pid) = net.enqueue_packet(spec.router, cap.dest, cap.class, cap.len)
                    else {
                        ctx.skipped += 1;
                        continue;
                    };
                    net.mark_attack_injection(pid);
                    transport.register_forged_control(pid, net.cycle(), cap);
                    ctx.performed += 1;
                }
                AttackIntent::RaiseAlert { port, vc } => {
                    // Fabricated alerts go straight to containment and
                    // deliberately bypass the bank: bank assertions must
                    // remain genuine detection evidence.
                    net.notify_alert(spec.router, port, vc, false);
                    ctx.performed += 1;
                }
            }
        }
        transport.post_step(net);
        for s in transport.take_suspicions() {
            ctx.suspicions += 1;
            if ctx.first_evidence.is_none() {
                ctx.first_evidence = Some(s.cycle);
            }
            if let Some(r) = s.router {
                net.note_suspicion(r);
            }
        }
    }
}

/// Finds a containment-covered fault site on `router` and wraps it in a
/// permanent fault starting at `start` — the co-fault the
/// alert-suppression cells need (an attacker with nothing to suppress is
/// vacuous).
pub fn covered_fault_for(cfg: &NocConfig, router: u16, start: Cycle) -> Option<FaultSpec> {
    fault::enumerate_sites(cfg)
        .into_iter()
        .find(|s| s.router == router && crate::recovery::containment_covered(s.signal))
        .map(|s| FaultSpec::permanent(s, start))
}

/// One cell of the attack matrix: an attacker model, optionally paired
/// with a co-located hardware fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AttackCell {
    /// The compromised-router model.
    pub spec: AttackSpec,
    /// Co-located fault (only the alert-suppression cells use one).
    pub fault: Option<FaultSpec>,
}

/// The standard matrix row for one compromised router at one intensity:
/// every attacker model, deterministic per-cell seeds derived from
/// `seed`, the attacker going live at `start`. Alert-suppression cells
/// are paired with a covered co-fault via [`covered_fault_for`]; routers
/// without a covered site simply omit that cell.
pub fn standard_cells(
    cfg: &NocConfig,
    routers: &[u16],
    every: u32,
    start: Cycle,
    seed: u64,
) -> Vec<AttackCell> {
    let kinds = [
        AttackKind::PacketDrop { every },
        AttackKind::FlitDrop { every },
        AttackKind::PayloadCorrupt { every },
        AttackKind::Misroute { every },
        AttackKind::AckSpoof { every },
        AttackKind::CtlReplay { every },
        AttackKind::AlertSuppress,
        AttackKind::AlertFlood { per_cycle: 2 },
    ];
    let mut cells = Vec::new();
    for (r_ix, &router) in routers.iter().enumerate() {
        for (k_ix, &kind) in kinds.iter().enumerate() {
            let fault = match kind {
                AttackKind::AlertSuppress => match covered_fault_for(cfg, router, start) {
                    Some(f) => Some(f),
                    None => continue,
                },
                _ => None,
            };
            cells.push(AttackCell {
                spec: AttackSpec {
                    router,
                    kind,
                    start,
                    // A pure function of the cell's position: bit-identical
                    // campaigns at any worker count, distinct attacker RNG
                    // streams per cell.
                    seed: seed
                        .wrapping_mul(1_000_003)
                        .wrapping_add((r_ix * kinds.len() + k_ix) as u64),
                },
                fault,
            });
        }
    }
    cells
}

/// Everything that identifies an attack campaign: mixing cells computed
/// under different configurations would corrupt the matrix, so the
/// journal refuses a directory whose config differs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackCampaignConfig {
    /// Network configuration.
    pub noc: NocConfig,
    /// Closed-loop rollout options.
    pub opts: RecoveryOptions,
}

/// One journal line: a cell and its completed rollout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackCellReport {
    /// The matrix cell.
    pub cell: AttackCell,
    /// Its rollout result.
    pub run: AttackRun,
}

/// Aggregated campaign result, in input-cell order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackCampaignReport {
    /// One report per input cell (cells missing after a cancelled sweep
    /// are absent and flagged via `interrupted`).
    pub reports: Vec<AttackCellReport>,
    /// Cells restored from the journal instead of re-run.
    pub resumed: usize,
    /// Torn trailing journal lines skipped on resume (mid-shard
    /// corruption is refused as a structured error, never skipped).
    pub corrupt_lines: usize,
    /// True when cancellation stopped the sweep before every cell ran.
    pub interrupted: bool,
}

impl AttackCampaignReport {
    /// Cells per class, in [`AttackClass`] severity order.
    pub fn matrix(&self) -> BTreeMap<AttackClass, u64> {
        let mut m = BTreeMap::new();
        for r in &self.reports {
            *m.entry(r.run.class).or_insert(0) += 1;
        }
        m
    }

    /// True when no cell is an undetected loss and no rollout crashed —
    /// the acceptance bar the bench bin enforces.
    pub fn accepted(&self) -> bool {
        self.reports.iter().all(|r| {
            r.run.class != AttackClass::UndetectedLoss
                && !matches!(r.run.outcome, RecoveryOutcome::Crashed(_))
        })
    }
}

/// Resilience knobs of the attack sweep (mirrors
/// [`crate::campaign::ResilienceOptions`]).
#[derive(Debug, Default)]
pub struct AttackCampaignOptions {
    /// Journal directory for kill-safe incremental progress.
    pub checkpoint_dir: Option<PathBuf>,
    /// Load previously completed cells from the journal instead of
    /// refusing a populated directory.
    pub resume: bool,
    /// Cooperative cancellation flag, checked between cells.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl AttackCampaignOptions {
    fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
    }
}

/// The attack campaign's journal: `meta.json` pins the configuration,
/// `shard-w<worker>.jsonl` holds one [`AttackCellReport`] per line,
/// appended and flushed as each cell completes. The durability semantics
/// (kill-safety, torn-tail repair, mid-shard refusal) are the shared
/// [`jsonl`] substrate's, identical to [`crate::campaign::Checkpoint`].
#[derive(Debug, Clone)]
struct Journal {
    dir: PathBuf,
}

impl Journal {
    fn open(dir: impl Into<PathBuf>, cc: &AttackCampaignConfig) -> Result<Journal, CampaignError> {
        let dir = dir.into();
        jsonl::ensure_meta(&dir, 1, cc)?;
        Ok(Journal { dir })
    }

    fn load(&self) -> Result<(Vec<AttackCellReport>, usize), CampaignError> {
        jsonl::load_shards(&self.dir)
    }

    fn shard_writer(&self, worker: usize) -> Result<jsonl::Appender, CampaignError> {
        jsonl::Appender::open_shard(&self.dir, worker)
    }
}

/// The attack matrix driver: panic isolation per cell, optional JSONL
/// journalling with resume, cooperative cancellation, and round-robin
/// worker sharding. Reports are reassembled in input-cell order, so the
/// aggregate is bit-identical for any worker count.
#[derive(Debug, Clone)]
pub struct AttackCampaign {
    cc: AttackCampaignConfig,
    harness: AttackHarness,
}

impl AttackCampaign {
    /// Builds the campaign after validating the rollout options.
    ///
    /// # Errors
    ///
    /// Propagates [`RecoveryOptions::validate`] failures.
    pub fn try_new(cc: AttackCampaignConfig) -> Result<AttackCampaign, CampaignError> {
        let harness =
            AttackHarness::try_new(cc.noc.clone(), cc.opts).map_err(CampaignError::Substrate)?;
        Ok(AttackCampaign { cc, harness })
    }

    /// The campaign's configuration.
    pub fn config(&self) -> &AttackCampaignConfig {
        &self.cc
    }

    /// Runs every cell, `threads`-wide. One report per input cell, in
    /// input order; cells already present in a resumed journal are not
    /// re-run.
    ///
    /// # Errors
    ///
    /// Journal I/O and configuration-mismatch failures, and cell
    /// validation rejections ([`CampaignError::Substrate`]); per-cell
    /// crashes are *outcomes*, not errors.
    pub fn run_cells(
        &self,
        cells: &[AttackCell],
        threads: usize,
        opts: &AttackCampaignOptions,
    ) -> Result<AttackCampaignReport, CampaignError> {
        let journal = match &opts.checkpoint_dir {
            Some(dir) => Some(Journal::open(dir, &self.cc)?),
            None => None,
        };
        let mut done: HashMap<AttackCell, AttackCellReport> = HashMap::new();
        let mut corrupt_lines = 0usize;
        if let Some(j) = &journal {
            let (reports, corrupt) = j.load()?;
            if !opts.resume && !reports.is_empty() {
                return Err(CampaignError::Checkpoint {
                    path: j.dir.clone(),
                    detail: format!(
                        "directory already holds {} completed cells; pass resume=true to continue or point at a fresh directory",
                        reports.len()
                    ),
                });
            }
            if opts.resume {
                corrupt_lines = corrupt;
                for r in reports {
                    done.insert(r.cell, r); // later shards win on duplicates
                }
            }
        }
        let resumed = cells.iter().filter(|c| done.contains_key(c)).count();
        let todo: Vec<AttackCell> = cells
            .iter()
            .copied()
            .filter(|c| !done.contains_key(c))
            .collect();

        let run_cell = |cell: &AttackCell| -> Result<AttackCellReport, CampaignError> {
            let run = self
                .harness
                .run_isolated(&cell.spec, cell.fault.as_ref())
                .map_err(CampaignError::Substrate)?;
            Ok(AttackCellReport { cell: *cell, run })
        };

        let mut fresh: Vec<AttackCellReport> = Vec::new();
        if threads <= 1 || todo.len() < 2 {
            let mut writer = match &journal {
                Some(j) => Some(j.shard_writer(0)?),
                None => None,
            };
            for cell in &todo {
                if opts.cancelled() {
                    break;
                }
                let rep = run_cell(cell)?;
                if let Some(w) = &mut writer {
                    w.append(&rep)?;
                }
                fresh.push(rep);
            }
        } else {
            // Round-robin sharding, like the fault campaigns: worker `w`
            // takes cells `w`, `w+workers`, …, so the shard a cell lands
            // in is a pure function of its index and the worker count.
            let workers = threads.min(todo.len());
            let mut writers: Vec<Option<jsonl::Appender>> = Vec::new();
            for i in 0..workers {
                writers.push(match &journal {
                    Some(j) => Some(j.shard_writer(i)?),
                    None => None,
                });
            }
            let todo = &todo;
            let run_cell = &run_cell;
            let results = std::thread::scope(|scope| {
                let handles: Vec<_> = writers
                    .into_iter()
                    .enumerate()
                    .map(|(w, mut writer)| {
                        scope.spawn(move || -> Result<Vec<AttackCellReport>, CampaignError> {
                            let mut out = Vec::new();
                            for cell in todo.iter().skip(w).step_by(workers) {
                                if opts.cancelled() {
                                    break;
                                }
                                let rep = run_cell(cell)?;
                                if let Some(wr) = &mut writer {
                                    wr.append(&rep)?;
                                }
                                out.push(rep);
                            }
                            Ok(out)
                        })
                    })
                    .collect();
                let mut results = Vec::new();
                for h in handles {
                    results.push(h.join());
                }
                results
            });
            for r in results {
                match r {
                    Ok(Ok(v)) => fresh.extend(v),
                    Ok(Err(e)) => return Err(e),
                    Err(p) => {
                        return Err(CampaignError::WorkerLost {
                            detail: format!("{p:?}"),
                        })
                    }
                }
            }
        }

        for r in fresh {
            done.insert(r.cell, r);
        }
        let mut reports = Vec::with_capacity(cells.len());
        let mut interrupted = false;
        for cell in cells {
            match done.get(cell) {
                Some(r) => reports.push(r.clone()),
                None => interrupted = true,
            }
        }
        Ok(AttackCampaignReport {
            reports,
            resumed,
            corrupt_lines,
            interrupted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fault::Watchdog;
    use std::fs;

    fn noc() -> NocConfig {
        let mut cfg = NocConfig::small_test();
        cfg.injection_rate = 0.05;
        cfg
    }

    fn small_opts() -> RecoveryOptions {
        RecoveryOptions {
            warmup: 200,
            active_window: 1_500,
            watchdog: Watchdog {
                cycle_budget: 60_000,
                stall_window: 1_500,
            },
            ..RecoveryOptions::paper_defaults()
        }
    }

    fn harness() -> AttackHarness {
        AttackHarness::try_new(noc(), small_opts()).expect("valid options")
    }

    fn spec(kind: AttackKind) -> AttackSpec {
        AttackSpec {
            router: 5,
            kind,
            start: 300,
            seed: 7,
        }
    }

    #[test]
    fn classify_is_conservative() {
        let q = RecoveryOutcome::Quiescent;
        assert_eq!(
            classify(0, &q, DeliveryVerdict::ExactlyOnce, 5, 5),
            AttackClass::Vacuous
        );
        assert_eq!(
            classify(3, &q, DeliveryVerdict::ExactlyOnce, 1, 0),
            AttackClass::DetectedByBank
        );
        assert_eq!(
            classify(3, &q, DeliveryVerdict::ExactlyOnce, 0, 2),
            AttackClass::MitigatedByArq
        );
        assert_eq!(
            classify(3, &q, DeliveryVerdict::ExactlyOnce, 0, 0),
            AttackClass::UndetectedLoss,
            "unexplained survival is not accepted"
        );
        // Loud loss: every lost message was given up on.
        let loud = DeliveryVerdict::Violated {
            undelivered: 2,
            gave_up: 2,
            duplicates: 0,
        };
        assert_eq!(classify(3, &q, loud, 0, 9), AttackClass::CaughtByOracle);
        assert_eq!(classify(3, &q, loud, 1, 9), AttackClass::DetectedByBank);
        // Silent loss in an apparently-healthy run is never excused.
        let silent = DeliveryVerdict::Violated {
            undelivered: 2,
            gave_up: 0,
            duplicates: 0,
        };
        assert_eq!(classify(3, &q, silent, 9, 9), AttackClass::UndetectedLoss);
        let dup = DeliveryVerdict::Violated {
            undelivered: 0,
            gave_up: 0,
            duplicates: 1,
        };
        assert_eq!(classify(3, &q, dup, 9, 9), AttackClass::UndetectedLoss);
        // A watchdog trip makes in-flight loss loud.
        let hung = RecoveryOutcome::Hung(Hang {
            kind: HangKind::CycleBudget,
            at_cycle: 1,
            stalled_for: 0,
        });
        assert_eq!(
            classify(3, &hung, silent, 0, 0),
            AttackClass::CaughtByOracle
        );
    }

    #[test]
    fn attacker_armed_after_the_window_is_vacuous() {
        let run = harness()
            .run(
                &AttackSpec {
                    start: 1_000_000,
                    ..spec(AttackKind::PacketDrop { every: 1 })
                },
                None,
            )
            .expect("valid cell");
        assert_eq!(run.class, AttackClass::Vacuous);
        assert_eq!(run.verdict, DeliveryVerdict::ExactlyOnce);
        assert_eq!(run.attack.interference(), 0);
    }

    #[test]
    fn ack_spoof_never_fakes_exactly_once() {
        // Full rate: the attacker swallows *every* passing data worm and
        // forges an ACK for each. Its forgeries are injected downstream of
        // its own egress filter, so every one genuinely reaches a NIC and
        // must be rejected by the keyed-tag check — the loudest possible
        // exercise of the spoof-hardened ARQ path.
        let run = harness()
            .run(&spec(AttackKind::AckSpoof { every: 1 }), None)
            .expect("valid cell");
        assert!(run.attack.packets_dropped > 0, "{run:?}");
        assert!(run.intents_performed > 0, "forged ACKs must be injected");
        assert!(
            run.transport.forged_controls_ignored > 0,
            "the hardened control path must reject the guessed tags: {run:?}"
        );
        assert!(run.suspicions > 0, "forgeries must be attributed");
        // The pinned property: a forged ACK never closes a window without
        // delivery, so any ExactlyOnce verdict is genuine and any loss is
        // loud. The full-rate cell's classification is pinned exactly —
        // the black-holed worms raise genuine bank evidence.
        assert_eq!(run.class, AttackClass::DetectedByBank, "{run:?}");
        if run.verdict == DeliveryVerdict::ExactlyOnce {
            assert_eq!(run.transport.delivered, run.transport.offered);
        }
    }

    #[test]
    fn misroute_is_discarded_at_the_wrong_nic_and_recovered_by_arq() {
        let run = harness()
            .run(&spec(AttackKind::Misroute { every: 1 }), None)
            .expect("valid cell");
        assert!(run.attack.packets_misrouted > 0, "{run:?}");
        assert!(
            run.transport.misrouted_flits > 0,
            "wrong-destination ejects must be discarded, not delivered: {run:?}"
        );
        assert_ne!(run.class, AttackClass::UndetectedLoss, "{run:?}");
        if let DeliveryVerdict::Violated { duplicates, .. } = run.verdict {
            assert_eq!(duplicates, 0, "misroute must never duplicate deliveries");
        }
    }

    #[test]
    fn suppression_cells_keep_detection_while_starving_containment() {
        let cfg = noc();
        let fault = covered_fault_for(&cfg, 5, 300).expect("router 5 has a covered site");
        let run = harness()
            .run(&spec(AttackKind::AlertSuppress), Some(&fault))
            .expect("valid cell");
        assert!(run.suppressed_alerts > 0, "{run:?}");
        assert!(run.bank_alerts >= run.suppressed_alerts);
        assert_ne!(run.class, AttackClass::UndetectedLoss, "{run:?}");
    }

    #[test]
    fn rejected_cells_are_errors_not_matrix_entries() {
        let h = harness();
        let bad = AttackSpec {
            router: 999,
            ..spec(AttackKind::PacketDrop { every: 1 })
        };
        assert!(h.run(&bad, None).is_err());
        let degenerate = spec(AttackKind::PacketDrop { every: 0 });
        assert!(h.run(&degenerate, None).is_err());
    }

    #[test]
    fn standard_cells_are_deterministic_and_cover_every_kind() {
        let cfg = noc();
        let a = standard_cells(&cfg, &[5, 6], 2, 300, 1);
        let b = standard_cells(&cfg, &[5, 6], 2, 300, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16, "8 kinds × 2 routers");
        let seeds: std::collections::BTreeSet<u64> = a.iter().map(|c| c.spec.seed).collect();
        assert_eq!(seeds.len(), a.len(), "per-cell seeds are distinct");
        assert!(a
            .iter()
            .all(|c| (c.spec.kind == AttackKind::AlertSuppress) == c.fault.is_some()));
    }

    #[test]
    fn journal_refuses_mismatched_config_and_populated_dir_without_resume() {
        let dir = std::env::temp_dir().join(format!("nocalert-attack-jr-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cc = AttackCampaignConfig {
            noc: noc(),
            opts: small_opts(),
        };
        let campaign = AttackCampaign::try_new(cc.clone()).expect("valid");
        let cells = standard_cells(&cc.noc, &[5], 2, 300, 1);
        let one = &cells[..1];
        let opts = AttackCampaignOptions {
            checkpoint_dir: Some(dir.clone()),
            ..AttackCampaignOptions::default()
        };
        let first = campaign.run_cells(one, 1, &opts).expect("first run");
        assert_eq!(first.reports.len(), 1);
        assert_eq!(first.resumed, 0);

        // Populated dir without resume is refused.
        let err = campaign.run_cells(one, 1, &opts).unwrap_err();
        assert!(matches!(err, CampaignError::Checkpoint { .. }), "{err:?}");

        // Resume restores the completed cell bit-identically.
        let resumed = campaign
            .run_cells(
                one,
                1,
                &AttackCampaignOptions {
                    checkpoint_dir: Some(dir.clone()),
                    resume: true,
                    cancel: None,
                },
            )
            .expect("resume");
        assert_eq!(resumed.resumed, 1);
        assert_eq!(resumed.reports, first.reports);

        // A different configuration is refused outright.
        let mut other = cc;
        other.opts.warmup = 999;
        let mismatch = AttackCampaign::try_new(other).expect("valid");
        let err = mismatch
            .run_cells(
                one,
                1,
                &AttackCampaignOptions {
                    checkpoint_dir: Some(dir.clone()),
                    resume: true,
                    cancel: None,
                },
            )
            .unwrap_err();
        assert!(matches!(err, CampaignError::CheckpointMismatch { .. }));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_refuses_mid_shard_corruption_but_repairs_torn_tail() {
        let dir =
            std::env::temp_dir().join(format!("nocalert-attack-poison-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cc = AttackCampaignConfig {
            noc: noc(),
            opts: small_opts(),
        };
        let journal = Journal::open(&dir, &cc).expect("fresh journal");
        let shard = dir.join("shard-w0.jsonl");

        // A torn trailing fragment alone is a kill signature: skipped,
        // counted, never an error.
        fs::write(&shard, b"{\"cell\":{\"sp").unwrap();
        let (reports, corrupt) = journal.load().expect("torn tail is benign");
        assert!(reports.is_empty());
        assert_eq!(corrupt, 1);

        // A complete-but-unparseable line is file damage: every row after
        // it would silently vanish on resume, so loading must refuse with
        // the shard and line pinpointed.
        fs::write(&shard, b"{\"cell\": garbage}\n").unwrap();
        let err = journal.load().unwrap_err();
        match err {
            CampaignError::ShardCorrupt { path, line, .. } => {
                assert_eq!(path, shard);
                assert_eq!(line, 1);
            }
            other => panic!("expected ShardCorrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
