//! The Golden Reference oracle (Section 5.2/5.3 of the paper).
//!
//! *"The exact same experiments were also run in a fault-free environment
//! and detailed flit ejection logs were collected and compiled in a so
//! called Golden Reference (GR) report. The GR is then used to ensure that
//! no violations of the four network correctness rules occur."*
//!
//! [`RunLog`] records a run's injections and ejections; a fault-free run's
//! log becomes the [`GoldenReference`]; [`classify`] diffs an under-fault
//! log against it and lists the network-correctness violations — the
//! ground truth that decides whether an injected fault was *malicious* or
//! *benign*, independent of what any detector said.

use noc_sim::Observer;
use noc_types::flit::FlitOrigin;
use noc_types::geometry::NodeId;
use noc_types::record::EjectEvent;
use noc_types::{Cycle, Flit, PacketId};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Black-box record of one run: what went in and what came out.
#[derive(Debug, Default, PartialEq)]
pub struct RunLog {
    /// Flits handed to the network by NIs, in order.
    pub injected: Vec<(Cycle, Flit)>,
    /// Flits delivered to NIs, in order.
    pub ejected: Vec<EjectEvent>,
}

// Manual impl so `clone_from` (the campaign arena's per-run reset) reuses
// the two (large) trace vectors across runs.
impl Clone for RunLog {
    fn clone(&self) -> RunLog {
        RunLog {
            injected: self.injected.clone(),
            ejected: self.ejected.clone(),
        }
    }

    fn clone_from(&mut self, src: &RunLog) {
        self.injected.clone_from(&src.injected);
        self.ejected.clone_from(&src.ejected);
    }
}

impl RunLog {
    /// An empty log.
    pub fn new() -> RunLog {
        RunLog::default()
    }

    /// Clears the log for reuse.
    pub fn reset(&mut self) {
        self.injected.clear();
        self.ejected.clear();
    }
}

impl Observer for RunLog {
    fn on_inject(&mut self, cycle: Cycle, flit: &Flit) {
        self.injected.push((cycle, *flit));
    }
    fn on_eject(&mut self, ev: &EjectEvent) {
        self.ejected.push(ev.clone());
    }
    fn on_quiescent_cycles(&self, _cycle: Cycle, _n: u64) -> bool {
        // The log only records injections and ejections; quiescent cycles
        // have neither.
        true
    }
}

/// The fault-free reference a faulty run is compared against.
#[derive(Debug, Clone)]
pub struct GoldenReference {
    /// uid → destination node of every flit the reference run delivered.
    delivered: HashMap<u64, NodeId>,
    /// uid set the reference run injected.
    injected: HashSet<u64>,
    /// The reference drained (sanity: it always must).
    pub drained: bool,
}

impl GoldenReference {
    /// Builds the reference from a fault-free run's log.
    ///
    /// # Panics
    ///
    /// Panics if `drained` is false — a fault-free run that deadlocks means
    /// the simulator substrate itself is broken, and no classification
    /// made against it would be meaningful.
    pub fn from_log(log: &RunLog, drained: bool) -> GoldenReference {
        match GoldenReference::try_from_log(log, drained) {
            Ok(gr) => gr,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds the reference from a fault-free run's log, returning a
    /// structured error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`crate::campaign::CampaignError::GoldenNotDrained`] when
    /// `drained` is false — a fault-free run that deadlocks means the
    /// simulator substrate itself is broken, and no classification made
    /// against it would be meaningful.
    pub fn try_from_log(
        log: &RunLog,
        drained: bool,
    ) -> Result<GoldenReference, crate::campaign::CampaignError> {
        if !drained {
            return Err(crate::campaign::CampaignError::GoldenNotDrained {
                injected: log.injected.len(),
                ejected: log.ejected.len(),
            });
        }
        Ok(GoldenReference {
            delivered: log.ejected.iter().map(|e| (e.flit.uid, e.node)).collect(),
            injected: log.injected.iter().map(|(_, f)| f.uid).collect(),
            drained,
        })
    }

    /// Number of flits the reference delivered.
    pub fn delivered_count(&self) -> usize {
        self.delivered.len()
    }
}

/// One way a faulty run violated network-level correctness. The variants
/// map onto the four fundamental conditions of Figure 3 (plus intra-packet
/// ordering, which the paper adds when restating them at flit level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ViolationKind {
    /// A flit the reference delivered never came out (no-flit-drop rule).
    FlitDropped,
    /// The network failed to drain: flits stuck forever (bounded delivery —
    /// deadlock/livelock).
    NotDrained,
    /// A flit was delivered to a node other than its destination.
    Misdelivered,
    /// The same flit was delivered more than once (no-new-flit rule:
    /// duplication).
    Duplicate,
    /// A flit came out that was never injected (stale-replay garbage —
    /// no-new-flit rule).
    NewFlit,
    /// A flit was delivered with damaged contents (datapath collision —
    /// no-data-corruption rule).
    Corrupted,
    /// Intra-packet flit order was violated at the destination.
    OutOfOrder,
}

/// The full ground-truth verdict for one run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Verdict {
    /// Distinct violations, sorted.
    pub violations: Vec<ViolationKind>,
}

impl Verdict {
    /// A fault is *malicious* iff it caused at least one network-level
    /// correctness violation; otherwise it is benign.
    pub fn malicious(&self) -> bool {
        !self.violations.is_empty()
    }
}

/// Compares a faulty run against the golden reference.
///
/// `drained` is the faulty run's drain status from the rollout. The
/// comparison is timing-insensitive on purpose: a fault that only delays
/// traffic (but still delivers everything correctly before the deadline)
/// is benign — exactly the paper's notion of "degraded performance (at
/// best)" faults.
pub fn classify(gr: &GoldenReference, log: &RunLog, drained: bool) -> Verdict {
    let mut v = HashSet::new();
    let mut seen: HashMap<u64, u32> = HashMap::new();
    let mut next_seq: HashMap<PacketId, u16> = HashMap::new();
    for ev in &log.ejected {
        let f = &ev.flit;
        let known = gr.injected.contains(&f.uid) || gr.delivered.contains_key(&f.uid);
        if f.origin == FlitOrigin::StaleReplay || !known {
            v.insert(ViolationKind::NewFlit);
            continue;
        }
        let n = seen.entry(f.uid).or_insert(0);
        *n += 1;
        if *n > 1 {
            v.insert(ViolationKind::Duplicate);
        }
        if f.dest != ev.node {
            v.insert(ViolationKind::Misdelivered);
        }
        if f.corrupted {
            v.insert(ViolationKind::Corrupted);
        }
        let expect = next_seq.entry(f.packet).or_insert(0);
        if f.seq != *expect {
            v.insert(ViolationKind::OutOfOrder);
        }
        *expect = (*expect).max(f.seq.saturating_add(1));
    }

    // Missing real flits: everything the reference delivered must come out
    // of the faulty run too. If the run failed to drain, the missing flits
    // are stuck (bounded-delivery violation: deadlock/livelock); if it
    // drained, they vanished (flit drop). Note the converse: an undrained
    // network whose *real* traffic was all delivered — e.g. a fabricated
    // garbage flit parked in a buffer forever — shows **no violation at
    // the network outputs** and is therefore benign, matching the paper's
    // ejection-log-based Golden Reference semantics.
    let missing = gr.delivered.keys().any(|uid| !seen.contains_key(uid));
    if missing {
        v.insert(if drained {
            ViolationKind::FlitDropped
        } else {
            ViolationKind::NotDrained
        });
    }

    let mut violations: Vec<ViolationKind> = v.into_iter().collect();
    violations.sort_unstable();
    Verdict { violations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::flit::make_packet;

    fn golden_one_packet() -> (GoldenReference, Vec<Flit>) {
        let flits = make_packet(PacketId(1), 1, NodeId(0), NodeId(5), 0, 3, 0);
        let mut log = RunLog::new();
        for (i, f) in flits.iter().enumerate() {
            log.on_inject(i as u64, f);
            log.on_eject(&EjectEvent {
                node: NodeId(5),
                cycle: 20 + i as u64,
                flit: *f,
            });
        }
        (GoldenReference::from_log(&log, true), flits)
    }

    fn eject_all(flits: &[Flit], node: u16) -> RunLog {
        let mut log = RunLog::new();
        for (i, f) in flits.iter().enumerate() {
            log.on_inject(i as u64, f);
            log.on_eject(&EjectEvent {
                node: NodeId(node),
                cycle: 100 + i as u64,
                flit: *f,
            });
        }
        log
    }

    #[test]
    fn identical_run_is_clean() {
        let (gr, flits) = golden_one_packet();
        let log = eject_all(&flits, 5);
        let verdict = classify(&gr, &log, true);
        assert!(!verdict.malicious(), "{verdict:?}");
    }

    #[test]
    fn late_delivery_is_benign() {
        let (gr, flits) = golden_one_packet();
        let mut log = RunLog::new();
        for (i, f) in flits.iter().enumerate() {
            log.on_inject(i as u64, f);
            log.on_eject(&EjectEvent {
                node: NodeId(5),
                cycle: 9_000 + i as u64, // much later than golden
                flit: *f,
            });
        }
        assert!(!classify(&gr, &log, true).malicious());
    }

    #[test]
    fn missing_flit_is_dropped() {
        let (gr, flits) = golden_one_packet();
        let log = eject_all(&flits[..2], 5);
        let verdict = classify(&gr, &log, true);
        assert_eq!(verdict.violations, vec![ViolationKind::FlitDropped]);
    }

    #[test]
    fn undrained_run_is_bounded_delivery_violation() {
        let (gr, flits) = golden_one_packet();
        let log = eject_all(&flits[..2], 5);
        let verdict = classify(&gr, &log, false);
        assert!(verdict.violations.contains(&ViolationKind::NotDrained));
        assert!(!verdict.violations.contains(&ViolationKind::FlitDropped));
    }

    #[test]
    fn undrained_garbage_with_all_real_traffic_delivered_is_benign() {
        // A stale-replay flit stuck in a buffer forever does not manifest
        // at the network outputs: the paper's GR semantics call it benign.
        let (gr, flits) = golden_one_packet();
        let log = eject_all(&flits, 5);
        let verdict = classify(&gr, &log, false);
        assert!(!verdict.malicious(), "{verdict:?}");
    }

    #[test]
    fn wrong_destination_is_misdelivery() {
        let (gr, flits) = golden_one_packet();
        let log = eject_all(&flits, 3);
        assert!(classify(&gr, &log, true)
            .violations
            .contains(&ViolationKind::Misdelivered));
    }

    #[test]
    fn duplicate_and_garbage_flits() {
        let (gr, flits) = golden_one_packet();
        let mut log = eject_all(&flits, 5);
        // Duplicate of flit 0.
        log.on_eject(&EjectEvent {
            node: NodeId(5),
            cycle: 200,
            flit: flits[0],
        });
        // Stale-replay garbage.
        let mut garbage = flits[1];
        garbage.origin = FlitOrigin::StaleReplay;
        log.on_eject(&EjectEvent {
            node: NodeId(5),
            cycle: 201,
            flit: garbage,
        });
        let verdict = classify(&gr, &log, true);
        assert!(verdict.violations.contains(&ViolationKind::Duplicate));
        assert!(verdict.violations.contains(&ViolationKind::NewFlit));
    }

    #[test]
    fn corruption_and_reordering() {
        let (gr, flits) = golden_one_packet();
        let mut log = RunLog::new();
        for (i, f) in flits.iter().enumerate() {
            log.on_inject(i as u64, f);
        }
        let order = [1usize, 0, 2];
        for (i, &idx) in order.iter().enumerate() {
            let mut f = flits[idx];
            if i == 2 {
                f.corrupted = true;
            }
            log.on_eject(&EjectEvent {
                node: NodeId(5),
                cycle: 50 + i as u64,
                flit: f,
            });
        }
        let verdict = classify(&gr, &log, true);
        assert!(verdict.violations.contains(&ViolationKind::OutOfOrder));
        assert!(verdict.violations.contains(&ViolationKind::Corrupted));
    }

    #[test]
    #[should_panic(expected = "golden (fault-free) run failed to drain")]
    fn undrained_golden_panics() {
        let log = RunLog::new();
        GoldenReference::from_log(&log, false);
    }
}
