//! Wiring between the static coverage model and the recovery layer.
//!
//! Containment can only act on an alert it can localize; the recovery
//! harness therefore leans on two properties of the checker metadata that
//! nothing else would pin down:
//!
//! 1. the canonical 8×8/2-VC configuration keeps **zero blind spots**
//!    (every fault site constrained by at least one checker), so a fault
//!    at a covered site is guaranteed to be *detected*, and
//! 2. every *containment-covered* signal (see
//!    [`golden::containment_covered`]) is constrained by at least one
//!    **localizing** checker — one whose [`nocalert::CheckerInfo::module`]
//!    names the router module, giving `notify_alert` a (port, vc) target.
//!
//! Deleting or de-localizing a checker the recovery loop depends on now
//! fails here rather than silently degrading survival.

use analysis::{analyze, canonical_config, CheckerModel};
use golden::containment_covered;
use noc_types::site::SignalKind;

#[test]
fn canonical_config_has_zero_blind_spots() {
    let cfg = canonical_config();
    let report = analyze(&cfg, &CheckerModel::from_table1());
    assert!(
        report.clean(),
        "coverage regressed on the canonical 8x8/2-VC config: {:?}",
        report.stats
    );
}

#[test]
fn every_containment_covered_signal_has_a_localizing_checker() {
    let cfg = canonical_config();
    let model = CheckerModel::from_table1();
    for sig in SignalKind::ALL {
        if !containment_covered(sig) {
            continue;
        }
        let localizing = model
            .constrainers(&cfg, sig)
            .into_iter()
            .filter(|&id| nocalert::info(id).module.is_some())
            .count();
        assert!(
            localizing > 0,
            "{sig:?} is containment-covered but no checker localizes it \
             — containment would have no (port, vc) target"
        );
    }
}

#[test]
fn containment_covered_is_a_strict_subset_of_detection() {
    // The recovery layer narrows, never widens, the detection guarantees:
    // signals like RcDestX stay detected (via the end-to-end invariance)
    // while being excluded from the survival bar.
    assert!(!containment_covered(SignalKind::RcDestX));
    assert!(!containment_covered(SignalKind::VcStateCode));
    assert!(containment_covered(SignalKind::BufEmpty));
    let covered = SignalKind::ALL
        .into_iter()
        .filter(|&s| containment_covered(s))
        .count();
    assert!(covered < SignalKind::ALL.len());
    assert!(covered >= 5);
}
