//! The durable multi-tenant job registry.
//!
//! Every job owns a directory under `data_dir/jobs/<id>/`:
//!
//! * `job.json` — the submitted [`JobSpec`] plus the current
//!   [`JobState`], rewritten on every lifecycle transition;
//! * `checkpoint/` — the campaign engines' JSONL shard directory
//!   (written by [`golden::JobDriver`], flushed per completed unit);
//! * `result.json` — the [`JobResult`] aggregate, written once on
//!   completion.
//!
//! The registry's in-memory side is a map of [`JobHandle`]s, each
//! carrying a live event feed (a vector + condvar) that SSE consumers
//! tail. On restart, [`Registry::open`] reloads every `job.json`,
//! rebuilds handles, and reports which jobs were left non-terminal —
//! the server re-enqueues those with resume enabled so their shards
//! are restored instead of re-run.

use noc_types::{JobEvent, JobResult, JobSpec, JobState, JobStatus};
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

fn data_err(path: &Path, detail: impl std::fmt::Display) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{}: {detail}", path.display()),
    )
}

/// The mutable half of a job: lifecycle state plus the event feed.
#[derive(Debug)]
struct Feed {
    state: JobState,
    error: Option<String>,
    events: Vec<JobEvent>,
}

/// One job's live handle: immutable spec + the guarded feed.
#[derive(Debug)]
pub struct JobHandle {
    /// Service-assigned id (`job-0001`, …).
    pub id: String,
    /// The submitted spec.
    pub spec: JobSpec,
    /// True when this handle was recovered from disk after a restart —
    /// the worker passes it through as the driver's resume flag.
    pub recovered: bool,
    /// Cooperative cancellation flag shared with the running driver.
    pub cancel: Arc<AtomicBool>,
    feed: Mutex<Feed>,
    cond: Condvar,
}

impl JobHandle {
    fn new(id: String, spec: JobSpec, state: JobState, recovered: bool) -> JobHandle {
        JobHandle {
            id,
            spec,
            recovered,
            cancel: Arc::new(AtomicBool::new(false)),
            feed: Mutex::new(Feed {
                state,
                error: None,
                events: Vec::new(),
            }),
            cond: Condvar::new(),
        }
    }

    fn feed(&self) -> std::sync::MutexGuard<'_, Feed> {
        self.feed.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The job's current lifecycle state.
    pub fn state(&self) -> JobState {
        self.feed().state
    }

    /// The job's queryable status.
    pub fn status(&self) -> JobStatus {
        let feed = self.feed();
        JobStatus {
            id: self.id.clone(),
            spec: self.spec.clone(),
            state: feed.state,
            error: feed.error.clone(),
        }
    }

    /// Appends an event to the feed and wakes every tailing consumer.
    pub fn push_event(&self, event: JobEvent) {
        self.feed().events.push(event);
        self.cond.notify_all();
    }

    /// Transitions the lifecycle state (recording `error` for
    /// [`JobState::Failed`]) and appends the matching state event.
    pub fn set_state(&self, state: JobState, error: Option<String>) {
        {
            let mut feed = self.feed();
            feed.state = state;
            feed.error = error;
            feed.events.push(JobEvent::State(state));
        }
        self.cond.notify_all();
    }

    /// A non-blocking copy of every event emitted so far.
    pub fn events_snapshot(&self) -> Vec<JobEvent> {
        self.feed().events.clone()
    }

    /// Blocks until the feed holds events past `from` or the job is
    /// terminal; returns the new events and whether the feed is fully
    /// drained on a terminal job (the consumer's stop condition).
    pub fn wait_events(&self, from: usize) -> (Vec<JobEvent>, bool) {
        let mut feed = self.feed();
        loop {
            if feed.events.len() > from || feed.state.terminal() {
                let start = from.min(feed.events.len());
                let events = feed.events[start..].to_vec();
                let drained = feed.state.terminal() && start + events.len() == feed.events.len();
                return (events, drained);
            }
            let (next, _timeout) = self
                .cond
                .wait_timeout(feed, Duration::from_millis(500))
                .unwrap_or_else(PoisonError::into_inner);
            feed = next;
        }
    }
}

/// The durable job registry.
#[derive(Debug)]
pub struct Registry {
    data_dir: PathBuf,
    jobs: Mutex<HashMap<String, Arc<JobHandle>>>,
    next_id: Mutex<u64>,
}

impl Registry {
    /// Opens (creating if needed) a registry under `data_dir` and
    /// reloads every persisted job. Returns the registry plus the ids
    /// of jobs that were left non-terminal by a previous process, in
    /// id order — the server re-enqueues them with resume enabled.
    ///
    /// # Errors
    ///
    /// I/O failures and unreadable `job.json` records.
    pub fn open(data_dir: &Path) -> io::Result<(Registry, Vec<String>)> {
        let jobs_dir = data_dir.join("jobs");
        fs::create_dir_all(&jobs_dir)?;
        let mut handles = HashMap::new();
        let mut max_id = 0u64;
        let mut pending = Vec::new();
        let mut entries: Vec<PathBuf> = fs::read_dir(&jobs_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        entries.sort();
        for dir in entries {
            let record = dir.join("job.json");
            let text = match fs::read_to_string(&record) {
                Ok(t) => t,
                // A directory without a record is debris from a crash
                // between mkdir and the first persist; skip it.
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e),
            };
            let status: JobStatus =
                serde_json::from_str(&text).map_err(|e| data_err(&record, e))?;
            if let Some(n) = status
                .id
                .strip_prefix("job-")
                .and_then(|s| s.parse::<u64>().ok())
            {
                max_id = max_id.max(n);
            }
            let recovered = !status.state.terminal();
            // A non-terminal job found on disk goes back to the queue.
            let state = if recovered {
                JobState::Queued
            } else {
                status.state
            };
            if recovered {
                pending.push(status.id.clone());
            }
            let handle = Arc::new(JobHandle::new(
                status.id.clone(),
                status.spec,
                state,
                recovered,
            ));
            handles.insert(status.id, handle);
        }
        pending.sort();
        let registry = Registry {
            data_dir: data_dir.to_path_buf(),
            jobs: Mutex::new(handles),
            next_id: Mutex::new(max_id + 1),
        };
        for id in &pending {
            registry.persist(id)?;
        }
        Ok((registry, pending))
    }

    fn jobs(&self) -> std::sync::MutexGuard<'_, HashMap<String, Arc<JobHandle>>> {
        self.jobs.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The job's directory under the registry.
    pub fn job_dir(&self, id: &str) -> PathBuf {
        self.data_dir.join("jobs").join(id)
    }

    /// Creates a queued job for `spec`, persists its record, and
    /// returns its handle.
    ///
    /// # Errors
    ///
    /// I/O failures creating the job directory or record.
    pub fn create(&self, spec: JobSpec) -> io::Result<Arc<JobHandle>> {
        let id = {
            let mut next = self.next_id.lock().unwrap_or_else(PoisonError::into_inner);
            let id = format!("job-{:04}", *next);
            *next += 1;
            id
        };
        fs::create_dir_all(self.job_dir(&id))?;
        let handle = Arc::new(JobHandle::new(id.clone(), spec, JobState::Queued, false));
        self.jobs().insert(id.clone(), Arc::clone(&handle));
        self.persist(&id)?;
        Ok(handle)
    }

    /// Looks a job up by id.
    pub fn get(&self, id: &str) -> Option<Arc<JobHandle>> {
        self.jobs().get(id).cloned()
    }

    /// Every job's status, in id order.
    pub fn list(&self) -> Vec<JobStatus> {
        let mut statuses: Vec<JobStatus> = self.jobs().values().map(|h| h.status()).collect();
        statuses.sort_by(|a, b| a.id.cmp(&b.id));
        statuses
    }

    /// Rewrites a job's durable `job.json` from its live status.
    ///
    /// # Errors
    ///
    /// I/O failures; an unknown id.
    pub fn persist(&self, id: &str) -> io::Result<()> {
        let handle = self
            .get(id)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no job {id}")))?;
        let record = self.job_dir(id).join("job.json");
        let text =
            serde_json::to_string_pretty(&handle.status()).map_err(|e| data_err(&record, e))?;
        fs::write(&record, text)
    }

    /// Writes a completed job's `result.json`.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn write_result(&self, id: &str, result: &JobResult) -> io::Result<()> {
        let path = self.job_dir(id).join("result.json");
        let text = serde_json::to_string_pretty(result).map_err(|e| data_err(&path, e))?;
        fs::write(&path, text)
    }

    /// Reads a job's `result.json`, if it exists yet.
    ///
    /// # Errors
    ///
    /// I/O failures other than the file not existing; an unreadable
    /// record.
    pub fn read_result(&self, id: &str) -> io::Result<Option<JobResult>> {
        let path = self.job_dir(id).join("result.json");
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let result = serde_json::from_str(&text).map_err(|e| data_err(&path, e))?;
        Ok(Some(result))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::{JobKind, NocConfig};

    fn spec() -> JobSpec {
        JobSpec {
            kind: JobKind::Transient,
            noc: NocConfig::paper_baseline(),
            warmup: 100,
            window: 1_000,
            limit: Some(2),
            threads: 1,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "nocalert-registry-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn create_persist_reload_requeues_non_terminal_jobs() {
        let dir = temp_dir("reload");
        let _ = fs::remove_dir_all(&dir);
        {
            let (reg, pending) = Registry::open(&dir).unwrap();
            assert!(pending.is_empty());
            let a = reg.create(spec()).unwrap();
            let b = reg.create(spec()).unwrap();
            assert_eq!(a.id, "job-0001");
            assert_eq!(b.id, "job-0002");
            // Job a completes; job b is still running when we "crash".
            a.set_state(JobState::Completed, None);
            reg.persist(&a.id).unwrap();
            b.set_state(JobState::Running, None);
            reg.persist(&b.id).unwrap();
            reg.write_result(
                &a.id,
                &JobResult {
                    digest: "00".into(),
                    summary: "s".into(),
                    incidents: Vec::new(),
                    resumed: 0,
                    interrupted: false,
                },
            )
            .unwrap();
        }
        let (reg, pending) = Registry::open(&dir).unwrap();
        assert_eq!(pending, vec!["job-0002".to_string()]);
        let b = reg.get("job-0002").unwrap();
        assert_eq!(b.state(), JobState::Queued);
        assert!(b.recovered);
        let a = reg.get("job-0001").unwrap();
        assert_eq!(a.state(), JobState::Completed);
        assert!(reg.read_result("job-0001").unwrap().is_some());
        // New ids continue past the reloaded maximum.
        assert_eq!(reg.create(spec()).unwrap().id, "job-0003");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn event_feed_wakes_tailing_consumers() {
        let handle = JobHandle::new("job-0001".into(), spec(), JobState::Running, false);
        handle.push_event(JobEvent::Progress { done: 1, total: 2 });
        let (events, drained) = handle.wait_events(0);
        assert_eq!(events.len(), 1);
        assert!(!drained);
        handle.set_state(JobState::Completed, None);
        let (events, drained) = handle.wait_events(1);
        assert_eq!(events, vec![JobEvent::State(JobState::Completed)]);
        assert!(drained);
    }
}
