//! Exact pipeline-timing tests: on an idle network the router must show
//! the canonical five-stage timing of Section 3.1 — headers take
//! RC, VA, SA, ST, LT (one cycle each) per hop; body/tail flits skip RC
//! and VA. These tests pin the cycle-accuracy claim to specific numbers.

use noc_sim::{Network, Observer};
use noc_types::record::EjectEvent;
use noc_types::{Cycle, Flit, Mesh, NocConfig, TrafficPattern};

#[derive(Default)]
struct Times {
    injected: Vec<(Cycle, Flit)>,
    ejected: Vec<(Cycle, Flit)>,
}

impl Observer for Times {
    fn on_inject(&mut self, c: Cycle, f: &Flit) {
        self.injected.push((c, *f));
    }
    fn on_eject(&mut self, ev: &EjectEvent) {
        self.ejected.push((ev.cycle, ev.flit));
    }
}

/// Runs a near-idle network long enough to observe isolated packets.
fn observe(cfg: NocConfig, cycles: u64) -> Times {
    let mut net = Network::new(cfg);
    let mut t = Times::default();
    for _ in 0..cycles {
        net.step_observed(&mut t);
    }
    t
}

#[test]
fn single_hop_header_latency_is_five_stages_plus_interfaces() {
    // Neighbor traffic at near-zero load on a 2-wide mesh: every packet
    // goes exactly one hop. Measure header injection→ejection latency.
    let mut cfg = NocConfig::paper_baseline();
    cfg.mesh = Mesh::new(2, 1);
    cfg.traffic = TrafficPattern::Neighbor;
    cfg.injection_rate = 0.004;
    let t = observe(cfg, 30_000);
    assert!(!t.ejected.is_empty());

    // Header path: injection lands in the source router's link register;
    // each router then costs BW, RC, VA, SA, ST (5 cycles), with link
    // traversal overlapped into the next router's buffer write; the NI
    // pops the ejection buffer one cycle after arrival. Two routers:
    // 5 + 5 + 1 = 11 cycles minimum; congestion can only add to it.
    let min_header = t
        .ejected
        .iter()
        .filter(|(_, f)| f.is_head())
        .map(|(c, f)| {
            let inj = t
                .injected
                .iter()
                .find(|(_, g)| g.uid == f.uid)
                .expect("header was injected")
                .0;
            c - inj
        })
        .min()
        .unwrap();
    assert_eq!(
        min_header, 11,
        "2-router header path must be exactly 11 cycles on an idle network"
    );
}

#[test]
fn per_hop_header_increment_is_five_cycles() {
    // Each extra hop costs the header one full router traversal:
    // BW + RC + VA + SA + ST = 5 cycles (link traversal overlaps the next
    // buffer write).
    let mut lat = Vec::new();
    for width in [2u8, 3, 4] {
        let mut cfg = NocConfig::paper_baseline();
        cfg.mesh = Mesh::new(width, 1);
        cfg.traffic = TrafficPattern::BitComplement; // (x) -> (w-1-x)
        cfg.injection_rate = 0.004;
        let t = observe(cfg, 40_000);
        let min_header = t
            .ejected
            .iter()
            .filter(|(_, f)| f.is_head() && f.src.0 == 0)
            .map(|(c, f)| {
                let inj = t.injected.iter().find(|(_, g)| g.uid == f.uid).unwrap().0;
                c - inj
            })
            .min()
            .expect("corner-to-corner headers observed");
        lat.push(min_header);
    }
    // Every additional hop adds a constant 5 cycles.
    assert_eq!(lat[1] - lat[0], 5, "{lat:?}");
    assert_eq!(lat[2] - lat[1], 5, "{lat:?}");
}

#[test]
fn body_flits_stream_back_to_back() {
    // After the wormhole is set up, one flit leaves per cycle: the tail
    // ejects exactly (len - 1) cycles after the header.
    let mut cfg = NocConfig::paper_baseline();
    cfg.mesh = Mesh::new(2, 1);
    cfg.traffic = TrafficPattern::Neighbor;
    cfg.injection_rate = 0.004;
    let t = observe(cfg, 30_000);
    let mut per_packet: std::collections::HashMap<u64, (Cycle, Cycle)> =
        std::collections::HashMap::new();
    for (c, f) in &t.ejected {
        let e = per_packet.entry(f.packet.0).or_insert((u64::MAX, 0));
        if f.is_head() {
            e.0 = *c;
        }
        if f.is_tail() {
            e.1 = *c;
        }
    }
    let min_spread = per_packet
        .values()
        .filter(|(h, t)| *h != u64::MAX && *t > *h)
        .map(|(h, t)| t - h)
        .min()
        .expect("complete packets observed");
    assert_eq!(
        min_spread, 4,
        "5-flit worm must stream its tail 4 cycles after the header"
    );
}

#[test]
fn speculative_mode_saves_exactly_one_cycle_per_hop_for_headers() {
    let mut lat = Vec::new();
    for speculative in [false, true] {
        let mut cfg = NocConfig::paper_baseline();
        cfg.mesh = Mesh::new(2, 1);
        cfg.traffic = TrafficPattern::Neighbor;
        cfg.injection_rate = 0.004;
        cfg.speculative = speculative;
        let t = observe(cfg, 30_000);
        let min_header = t
            .ejected
            .iter()
            .filter(|(_, f)| f.is_head())
            .map(|(c, f)| {
                let inj = t.injected.iter().find(|(_, g)| g.uid == f.uid).unwrap().0;
                c - inj
            })
            .min()
            .unwrap();
        lat.push(min_header);
    }
    // Two routers on the path, one cycle saved at each (SA overlaps VA).
    assert_eq!(lat[0] - lat[1], 2, "{lat:?}");
}
