//! Per-VC pipeline state and per-output-port allocation bookkeeping.
//!
//! Each input VC owns a status table (Figure 2(b) of the paper): a 2-bit
//! pipeline state plus the latched RC result (output port) and VA result
//! (downstream VC). The state is stored **as raw bits** and every use goes
//! through the fault plane, so a flipped state register misbehaves in every
//! stage that reads it — the consistency checks of invariance 17 exist
//! precisely because of this failure mode.

use crate::buffer::VcBuffer;
use serde::{Deserialize, Serialize};

/// Raw state encodings of the 2-bit VC pipeline state register.
pub mod state {
    /// VC is free: no packet owns it.
    pub const IDLE: u64 = 0;
    /// A header is buffered and awaits Routing Computation.
    pub const ROUTING: u64 = 1;
    /// RC done ("VA done = 0" in Figure 2(b)); awaiting VC allocation.
    pub const VA_PENDING: u64 = 2;
    /// VA done; flits contend for the switch.
    pub const ACTIVE: u64 = 3;
}

/// One virtual channel of an input port.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct VirtualChannel {
    /// The flit FIFO.
    pub buffer: VcBuffer,
    /// Raw 2-bit pipeline state (see [`state`]).
    pub state: u64,
    /// Raw 3-bit latched RC output direction.
    pub out_port: u64,
    /// Raw latched downstream VC index.
    pub out_vc: u64,
    /// Flits of the current packet that have arrived (for invariance 28).
    pub arrived: u16,
    /// Whether the previously written flit was a tail (for invariance 27);
    /// starts `true` so the first flit into a fresh VC must be a header.
    pub prev_written_was_tail: bool,
}

// Manual impl so `clone_from` (the arena reset path) reuses the buffer's
// ring allocation.
impl Clone for VirtualChannel {
    fn clone(&self) -> VirtualChannel {
        VirtualChannel {
            buffer: self.buffer.clone(),
            state: self.state,
            out_port: self.out_port,
            out_vc: self.out_vc,
            arrived: self.arrived,
            prev_written_was_tail: self.prev_written_was_tail,
        }
    }

    fn clone_from(&mut self, src: &VirtualChannel) {
        self.buffer.clone_from(&src.buffer);
        self.state = src.state;
        self.out_port = src.out_port;
        self.out_vc = src.out_vc;
        self.arrived = src.arrived;
        self.prev_written_was_tail = src.prev_written_was_tail;
    }
}

impl VirtualChannel {
    /// A fresh, idle VC with a buffer of `depth` slots.
    pub fn new(depth: u8) -> VirtualChannel {
        VirtualChannel {
            buffer: VcBuffer::new(depth),
            state: state::IDLE,
            out_port: 0,
            out_vc: 0,
            arrived: 0,
            prev_written_was_tail: true,
        }
    }

    /// Resets the table after the current packet's tail has left.
    ///
    /// Write-side bookkeeping (`arrived`, `prev_written_was_tail`) is *not*
    /// touched: with non-atomic buffers the next packet may already be
    /// arriving while this one drains.
    pub fn release(&mut self) {
        self.state = state::IDLE;
        self.out_port = 0;
        self.out_vc = 0;
    }

    /// Recovery-controller VC reset: destroys every buffered flit and
    /// returns the VC to its power-on condition (including the write-side
    /// bookkeeping, since the partial worm it tracked is being squashed).
    /// Returns how many flits were dropped.
    pub fn hard_reset(&mut self) -> usize {
        let dropped = self.buffer.clear();
        self.state = state::IDLE;
        self.out_port = 0;
        self.out_vc = 0;
        self.arrived = 0;
        self.prev_written_was_tail = true;
        dropped
    }
}

/// Downstream bookkeeping of one output port: which downstream VCs are
/// allocatable and how many buffer slots (credits) each has left.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct OutputPort {
    /// False for off-mesh (edge/corner) ports: no neighbour exists.
    pub live: bool,
    /// Per downstream VC: free for a new wormhole?
    pub free: Vec<bool>,
    /// Per downstream VC: remaining credits.
    pub credits: Vec<u8>,
    /// Per downstream VC: the local input `(port, vc)` currently holding
    /// the allocation (diagnostics; not a wire).
    pub owner: Vec<Option<(u8, u8)>>,
    /// Per downstream VC: quarantined by the recovery controller after a
    /// permanent-fault inference. A disabled VC is never free again.
    pub disabled: Vec<bool>,
}

// Manual impl so `clone_from` (the arena reset path) reuses the four
// per-VC bookkeeping vectors.
impl Clone for OutputPort {
    fn clone(&self) -> OutputPort {
        OutputPort {
            live: self.live,
            free: self.free.clone(),
            credits: self.credits.clone(),
            owner: self.owner.clone(),
            disabled: self.disabled.clone(),
        }
    }

    fn clone_from(&mut self, src: &OutputPort) {
        self.live = src.live;
        self.free.clone_from(&src.free);
        self.credits.clone_from(&src.credits);
        self.owner.clone_from(&src.owner);
        self.disabled.clone_from(&src.disabled);
    }
}

impl OutputPort {
    /// A live/dead output port toward a neighbour with `vcs` VCs of
    /// `depth`-flit buffers.
    pub fn new(live: bool, vcs: u8, depth: u8) -> OutputPort {
        OutputPort {
            live,
            free: vec![live; vcs as usize],
            credits: vec![if live { depth } else { 0 }; vcs as usize],
            owner: vec![None; vcs as usize],
            disabled: vec![false; vcs as usize],
        }
    }

    /// Bitmask over downstream VCs that are free (allocatable).
    pub fn free_mask(&self) -> u64 {
        self.free
            .iter()
            .enumerate()
            .filter(|(_, f)| **f)
            .fold(0u64, |m, (i, _)| m | 1 << i)
    }

    /// Lowest free VC within `[lo, hi)` (a message-class partition).
    pub fn lowest_free_in(&self, lo: u8, hi: u8) -> Option<u8> {
        (lo..hi.min(self.free.len() as u8)).find(|&v| self.free[v as usize])
    }

    /// Marks `vc` allocated to `owner`. Out-of-range indices (which only a
    /// fault can produce) are ignored — the demux simply selects nothing.
    pub fn allocate(&mut self, vc: u64, owner: (u8, u8)) {
        if let Some(slot) = self.free.get_mut(vc as usize) {
            *slot = false;
            self.owner[vc as usize] = Some(owner);
        }
    }

    /// Releases `vc` for a new wormhole. A quarantined (disabled) VC stays
    /// unallocatable forever.
    pub fn release(&mut self, vc: u64) {
        if let Some(slot) = self.free.get_mut(vc as usize) {
            *slot = !self.disabled[vc as usize];
            self.owner[vc as usize] = None;
        }
    }

    /// Quarantines `vc`: drops any allocation and pins it un-free so no
    /// future wormhole can be assigned to it.
    pub fn disable(&mut self, vc: u8) {
        if let Some(slot) = self.disabled.get_mut(vc as usize) {
            *slot = true;
            self.free[vc as usize] = false;
            self.owner[vc as usize] = None;
        }
    }

    /// Restores `vc` to its reset condition (full credits, free unless
    /// disabled, no owner) — the downstream half of a VC chain reset.
    pub fn reset_vc(&mut self, vc: u8, depth: u8) {
        let v = vc as usize;
        if v >= self.free.len() {
            return;
        }
        self.owner[v] = None;
        self.credits[v] = if self.live { depth } else { 0 };
        self.free[v] = self.live && !self.disabled[v];
    }

    /// Consumes one credit of `vc` (saturating: a faulty double-send cannot
    /// underflow the counter).
    pub fn consume_credit(&mut self, vc: u64) {
        if let Some(c) = self.credits.get_mut(vc as usize) {
            *c = c.saturating_sub(1);
        }
    }

    /// Returns one credit of `vc`, capped at the buffer depth.
    pub fn return_credit(&mut self, vc: u64, depth: u8) {
        if let Some(c) = self.credits.get_mut(vc as usize) {
            *c = (*c + 1).min(depth);
        }
    }

    /// Whether `vc` has at least one credit. Out-of-range → `false`.
    pub fn has_credit(&self, vc: u64) -> bool {
        self.credits.get(vc as usize).is_some_and(|&c| c > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_vc_is_idle_and_expects_header() {
        let vc = VirtualChannel::new(5);
        assert_eq!(vc.state, state::IDLE);
        assert!(vc.prev_written_was_tail);
        assert!(vc.buffer.is_empty());
    }

    #[test]
    fn release_resets_table() {
        let mut vc = VirtualChannel::new(5);
        vc.state = state::ACTIVE;
        vc.out_port = 3;
        vc.out_vc = 2;
        vc.arrived = 5;
        vc.release();
        assert_eq!(vc.state, state::IDLE);
        assert_eq!(vc.out_port, 0);
        assert_eq!(vc.arrived, 5, "write-side counter untouched by release");
    }

    #[test]
    fn output_port_alloc_release_cycle() {
        let mut op = OutputPort::new(true, 4, 5);
        assert_eq!(op.free_mask(), 0b1111);
        assert_eq!(op.lowest_free_in(2, 4), Some(2));
        op.allocate(2, (1, 0));
        assert_eq!(op.free_mask(), 0b1011);
        assert_eq!(op.lowest_free_in(2, 4), Some(3));
        assert_eq!(op.owner[2], Some((1, 0)));
        op.release(2);
        assert_eq!(op.free_mask(), 0b1111);
        assert_eq!(op.owner[2], None);
    }

    #[test]
    fn out_of_range_allocation_is_ignored() {
        let mut op = OutputPort::new(true, 4, 5);
        op.allocate(9, (0, 0));
        assert_eq!(op.free_mask(), 0b1111);
        op.release(9);
        op.consume_credit(9);
        assert!(!op.has_credit(9));
    }

    #[test]
    fn credits_saturate_both_ways() {
        let mut op = OutputPort::new(true, 2, 3);
        assert!(op.has_credit(0));
        for _ in 0..5 {
            op.consume_credit(0);
        }
        assert!(!op.has_credit(0));
        for _ in 0..10 {
            op.return_credit(0, 3);
        }
        assert_eq!(op.credits[0], 3);
    }

    #[test]
    fn disabled_vc_is_quarantined_forever() {
        let mut op = OutputPort::new(true, 4, 5);
        op.allocate(1, (2, 0));
        op.disable(1);
        assert_eq!(op.owner[1], None);
        assert!(!op.free[1]);
        // Neither release nor reset may resurrect it.
        op.release(1);
        assert!(!op.free[1]);
        op.reset_vc(1, 5);
        assert!(!op.free[1]);
        assert_eq!(op.lowest_free_in(0, 4), Some(0));
        assert_eq!(op.free_mask() & 0b0010, 0);
    }

    #[test]
    fn reset_vc_restores_credits_and_freedom() {
        let mut op = OutputPort::new(true, 2, 3);
        op.allocate(0, (1, 1));
        op.consume_credit(0);
        op.consume_credit(0);
        op.reset_vc(0, 3);
        assert!(op.free[0]);
        assert_eq!(op.credits[0], 3);
        assert_eq!(op.owner[0], None);
        op.reset_vc(9, 3); // out of range: ignored
    }

    #[test]
    fn hard_reset_drops_flits_and_rearms_write_side() {
        use noc_types::flit::make_packet;
        use noc_types::{geometry::NodeId, PacketId};
        let mut vc = VirtualChannel::new(5);
        for f in make_packet(PacketId(7), 50, NodeId(0), NodeId(3), 0, 3, 0) {
            vc.buffer.push(f);
        }
        vc.state = state::ACTIVE;
        vc.arrived = 3;
        vc.prev_written_was_tail = false;
        assert_eq!(vc.hard_reset(), 3);
        assert!(vc.buffer.is_empty());
        assert_eq!(vc.state, state::IDLE);
        assert_eq!(vc.arrived, 0);
        assert!(vc.prev_written_was_tail);
    }

    #[test]
    fn dead_port_has_nothing() {
        let op = OutputPort::new(false, 4, 5);
        assert_eq!(op.free_mask(), 0);
        assert!(!op.has_credit(0));
        assert_eq!(op.lowest_free_in(0, 4), None);
    }
}
