//! Pass 4 — static fault detectability ("static ATPG") over the
//! containment-covered sites.
//!
//! The recovery layer's containment guarantee (DESIGN.md §11) only holds
//! for faults the checker array actually *detects*. This pass closes that
//! loop statically: for every fault site in the containment-covered set
//! ([`noc_types::site::containment_covered`]) it enumerates the reachable
//! micro-architectural states of the enclosing logic cone, injects each
//! fault model (stuck-at-0, stuck-at-1, single-cycle transient), and
//! proves that every *effective* fault either
//!
//! * fires at least one checker within a bounded number of evaluation
//!   steps — recording the worst-case detection latency and the set of
//!   firing checkers — or
//! * is provably masked: the corrupted wire is observation-plane only in
//!   that state (it drives no functional logic), the corruption is a pure
//!   one-cycle delay, or the flit is delivered minimally along a legal
//!   alternative path (a *benign reroute*).
//!
//! Anything else is a **blind spot** (`NL401`, hard error).
//!
//! # Soundness: the prover evaluates the real checkers
//!
//! Synthesized [`CycleRecord`]s are fed to the **real** [`AlertBank`] — the
//! identical code the simulator drives — so the pass cannot drift from the
//! shipped checker predicates. For the one multi-cycle cone (a silently
//! diverted flit after an `RcOutDir` upset) the walk continues to the next
//! router *exactly when the bank is silent*: silence at a hop implies the
//! output direction was valid, live, turn-legal and productive, so the
//! walk strictly decreases Manhattan distance and terminates within
//! `width + height` hops. Detection latency is counted in evaluation
//! steps (router cycles *excluding* arbitration queueing, which the
//! static model abstracts away — see DESIGN.md §10).
//!
//! Two cross-checks keep the cone models honest:
//!
//! * every synthesized *fault-free* state must leave the bank silent
//!   (`NL403` otherwise — the cone model and the router disagree), and
//! * every checker expected to participate must actually detect at least
//!   one fault *and* be the sole detector of at least one fault; a
//!   checker that never is is semantically dead (`NL402`, hard error) —
//!   this is what catches a weakened predicate (see the feature-gated
//!   mutation hook [`detect_all_mutated`]).
//!
//! One admitted detector is not a Table-1 checker: a persistent
//! `BufEmpty` stuck-at-1 on an active VC suppresses switch-allocation
//! bids without violating any invariant. That alert-silent stall is
//! caught by the recovery plane's worm-age progress monitor
//! ([`noc_sim::RecoveryPolicy::stall_age`]); the pass admits it as the
//! [`Detector::StallMonitor`] pseudo-detector with a latency bound of
//! `stall_age` *cycles* (not steps). If the monitor is disabled
//! (`stall_age == Cycle::MAX`) those states are reported blind.

use crate::coverage::CheckerModel;
use crate::diag::{Diagnostic, Pass, Severity};
use crate::exec::run_tasks;
use noc_sim::routing::route;
use noc_sim::signals::enumerate_router_sites;
use noc_sim::{Observer, RecoveryPolicy};
use noc_types::config::{NocConfig, RoutingAlgorithm};
use noc_types::geometry::{Coord, Direction, NodeId};
use noc_types::record::{CycleRecord, RcEvent, ReadEvent, VcEvent, WriteEvent};
use noc_types::site::{containment_covered, FaultKind, SignalKind, SiteRef};
use nocalert::{AlertBank, CheckerId};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The fault models the pass injects at every site.
const KINDS: [FaultKind; 3] = [
    FaultKind::StuckAt0,
    FaultKind::StuckAt1,
    FaultKind::Transient,
];

fn kind_name(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::StuckAt0 => "stuck-at-0",
        FaultKind::StuckAt1 => "stuck-at-1",
        _ => "transient",
    }
}

/// Something that catches a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Detector {
    /// A Table-1 invariance checker (by paper number).
    Checker(u8),
    /// The recovery plane's worm-age progress monitor — admitted for the
    /// alert-silent stall cone only (see module docs).
    StallMonitor,
}

impl fmt::Display for Detector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Detector::Checker(c) => write!(f, "inv{c}"),
            Detector::StallMonitor => f.write_str("stall-monitor"),
        }
    }
}

/// How one enumerated cone state fares under one injected fault.
enum Outcome {
    /// The fault does not change the sampled value in this state.
    NotEffective,
    /// Effective but provably non-functional (observation-plane wire or a
    /// pure one-cycle delay) and silent — masked.
    Masked,
    /// Effective, silent, but the flit is delivered minimally along a
    /// legal alternative path — a benign reroute (counted under masked).
    Benign,
    /// Caught.
    Detected {
        /// Evaluation steps from the corrupting cycle to the first alert
        /// (0 = same cycle). For the stall monitor this is its cycle
        /// bound instead — see [`DetectStats::stall_monitor_bound`].
        latency: u64,
        /// Every detector that fires in the catching step.
        detectors: Vec<Detector>,
    },
    /// Functionally corrupting, and nothing fires.
    Blind {
        /// Human description of the escaping state.
        state: String,
    },
}

/// Per-(site, fault-kind) accumulator over all enumerated states.
#[derive(Default, Clone)]
struct CaseAcc {
    effective: u64,
    detected: u64,
    masked: u64,
    blind: u64,
    benign: u64,
    worst_latency: Option<u64>,
    via_monitor: bool,
    detectors: BTreeSet<Detector>,
    blind_example: Option<String>,
}

/// Aggregate counters for the whole pass.
#[derive(Default, Clone)]
struct Tally {
    states: u64,
    fault_cases: u64,
    detected: u64,
    masked: u64,
    blind: u64,
    benign_states: u64,
    worst_latency: u64,
}

/// A checker's share of the detection duty, over every modeled fault.
#[derive(Debug, Clone, Serialize)]
pub struct CheckerRole {
    /// `inv<N>` or `stall-monitor`.
    pub detector: String,
    /// States in which this detector fires.
    pub fired_states: u64,
    /// States in which it is the *only* thing that fires.
    pub sole_states: u64,
}

/// The proof result for one (site, fault-kind) case.
#[derive(Debug, Clone, Serialize)]
pub struct SiteDetect {
    /// Site address (`n12/RC[p1]/RcOutDir.2`).
    pub site: String,
    /// Injected fault model.
    pub fault: &'static str,
    /// `detected`, `masked`, `vacuous` (no reachable state samples the
    /// wire) or `blind`.
    pub verdict: &'static str,
    /// States in which the fault changes the sampled value.
    pub effective_states: u64,
    /// Effective states caught by a detector.
    pub detected_states: u64,
    /// Effective states provably masked (including benign reroutes).
    pub masked_states: u64,
    /// Effective states that escape — always 0 on a passing run.
    pub blind_states: u64,
    /// Worst-case detection latency in evaluation steps, over the states
    /// caught by *checkers* (the stall monitor's bound is global).
    pub worst_latency_steps: Option<u64>,
    /// True when at least one state is only caught by the stall monitor.
    pub via_stall_monitor: bool,
    /// Every detector that fires for this case, sorted.
    pub detectors: Vec<String>,
}

/// Aggregate statistics of the detectability pass.
#[derive(Debug, Clone, Serialize)]
pub struct DetectStats {
    /// Containment-covered sites examined.
    pub sites: u64,
    /// (site, fault-kind) cases proved (= 3 × sites).
    pub fault_cases: u64,
    /// Cases with at least one detected state and no blind state.
    pub detected_cases: u64,
    /// Cases whose every effective state is masked (or that are vacuous).
    pub masked_cases: u64,
    /// Cases with at least one escaping state — 0 on a passing run.
    pub blind_cases: u64,
    /// Reachable cone states enumerated (fault-free, before injection).
    pub states_evaluated: u64,
    /// Silent-but-delivered misroute walks (benign reroutes).
    pub benign_reroutes: u64,
    /// Worst checker detection latency over all detected states, in
    /// evaluation steps.
    pub worst_latency_steps: u64,
    /// The stall monitor's detection bound in cycles (0 when no case
    /// relies on it).
    pub stall_monitor_bound: u64,
    /// Detection duty per participating detector.
    pub checkers: Vec<CheckerRole>,
    /// Every (site, fault-kind) verdict, in site order.
    pub per_site: Vec<SiteDetect>,
}

/// One router's share of the pass — produced by a worker, merged in
/// router order so the output is independent of `--jobs`.
struct RouterOut {
    diags: Vec<Diagnostic>,
    per_site: Vec<SiteDetect>,
    roles: BTreeMap<Detector, (u64, u64)>,
    tally: Tally,
    weak_metadata: BTreeSet<String>,
}

/// Synthesized records are evaluated by the real [`AlertBank`]; `fire`
/// returns the distinct checkers raised by the staged record and clears
/// the bank for the next probe.
struct Prober {
    bank: AlertBank,
    rec: CycleRecord,
}

impl Prober {
    fn new(cfg: &NocConfig, disabled: &[u8]) -> Prober {
        let mut bank = AlertBank::new(cfg);
        for &c in disabled {
            bank.disable(CheckerId(c));
        }
        Prober {
            bank,
            rec: CycleRecord::default(),
        }
    }

    fn begin(&mut self, router: u16) -> &mut CycleRecord {
        self.rec.reset(router);
        &mut self.rec
    }

    fn fire(&mut self) -> Vec<Detector> {
        self.bank.on_cycle_record(1, &self.rec);
        let out = self
            .bank
            .asserted_set()
            .into_iter()
            .map(|c| Detector::Checker(c.0))
            .collect();
        self.bank.reset();
        out
    }
}

/// Stages an RC execution (and the accompanying `Routing → VaPending`
/// status-table transition the router records in the same cycle).
fn push_rc(
    rec: &mut CycleRecord,
    port: u8,
    vc: u8,
    dest: Coord,
    head_valid: bool,
    buf_empty: bool,
    out_bits: u64,
) {
    rec.rc.push(RcEvent {
        port,
        vc,
        dest_x: dest.x as u64,
        dest_y: dest.y as u64,
        head_valid,
        buf_empty,
        out_dir: out_bits,
        // The cones model a healthy router on the baseline routing
        // function: no fences, no region tables.
        avoid_mask: 0,
        region_next: noc_types::record::REGION_NONE,
    });
    rec.vc.push(VcEvent {
        port,
        vc,
        state_before: 1,
        state_after: 2,
        ev_rc_done: true,
        ev_va_done: false,
        ev_sa_won: false,
        head_kind: 0,
        empty: buf_empty,
        out_port: out_bits & 0b111,
        out_vc: vc as u64,
    });
}

/// The per-router evaluation engine.
struct RouterEval<'a> {
    cfg: &'a NocConfig,
    reach: &'a BTreeMap<(u16, u8), BTreeSet<Coord>>,
    constrainers: &'a [(SignalKind, Vec<u8>)],
    stall_age: u64,
    prober: Prober,
    out: RouterOut,
}

impl RouterEval<'_> {
    fn diag(&mut self, code: &'static str, severity: Severity, site: &SiteRef, msg: String) {
        self.out
            .diags
            .push(Diagnostic::new(Pass::Detect, code, severity, msg).with_site(site));
    }

    /// Fires the staged fault-free record; a non-silent bank means the
    /// cone model disagrees with the router (`NL403`). Returns whether
    /// the state is usable.
    fn self_check(&mut self, site: &SiteRef, state: &str) -> bool {
        let dets = self.prober.fire();
        if dets.is_empty() {
            return true;
        }
        let fired = dets
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join(",");
        self.diag(
            "NL403",
            Severity::Error,
            site,
            format!("cone self-check failed: fault-free state ({state}) fires {fired}"),
        );
        false
    }

    fn record_outcome(&mut self, signal: SignalKind, case: &mut CaseAcc, outcome: Outcome) {
        match outcome {
            Outcome::NotEffective => {}
            Outcome::Masked => {
                case.effective += 1;
                case.masked += 1;
            }
            Outcome::Benign => {
                case.effective += 1;
                case.masked += 1;
                case.benign += 1;
            }
            Outcome::Blind { state } => {
                case.effective += 1;
                case.blind += 1;
                if case.blind_example.is_none() {
                    case.blind_example = Some(state);
                }
            }
            Outcome::Detected { latency, detectors } => {
                case.effective += 1;
                case.detected += 1;
                let monitor = detectors.contains(&Detector::StallMonitor);
                if monitor {
                    case.via_monitor = true;
                } else {
                    case.worst_latency = Some(case.worst_latency.unwrap_or(0).max(latency));
                }
                for &d in &detectors {
                    self.out.roles.entry(d).or_insert((0, 0)).0 += 1;
                }
                if let [only] = detectors[..] {
                    self.out.roles.entry(only).or_insert((0, 0)).1 += 1;
                }
                // Metadata cross-check (NL404): some *bank* detector of
                // the state should be a declared constrainer of the
                // faulted signal.
                let bank_ids: Vec<u8> = detectors
                    .iter()
                    .filter_map(|d| match d {
                        Detector::Checker(c) => Some(*c),
                        Detector::StallMonitor => None,
                    })
                    .collect();
                let declared = self
                    .constrainers
                    .iter()
                    .find(|(s, _)| *s == signal)
                    .map(|(_, v)| v.as_slice())
                    .unwrap_or(&[]);
                if !bank_ids.is_empty() && !bank_ids.iter().any(|c| declared.contains(c)) {
                    self.out.weak_metadata.insert(format!("{signal:?}"));
                }
                case.detectors.extend(detectors);
            }
        }
    }

    /// `RcOutDir` — fully functional: the latched direction steers the
    /// crossbar. Silent divergence is walked downstream (see module docs).
    fn eval_rc_out_dir(&mut self, site: &SiteRef, cases: &mut [CaseAcc]) {
        let mesh = self.cfg.mesh;
        let cur = mesh.coord(NodeId(site.router));
        let dests: Vec<Coord> = self
            .reach
            .get(&(site.router, site.port))
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        for dest in dests {
            self.out.tally.states += 1;
            let correct = route(self.cfg.routing, cur, dest).bits();
            self.prober.begin(site.router);
            push_rc(
                &mut self.prober.rec,
                site.port,
                site.vc,
                dest,
                true,
                false,
                correct,
            );
            if !self.self_check(site, &format!("RC toward {dest}")) {
                continue;
            }
            for (ki, &kind) in KINDS.iter().enumerate() {
                let faulty = kind.apply(correct, site.bit) & 0b111;
                if faulty == correct {
                    self.record_outcome(site.signal, &mut cases[ki], Outcome::NotEffective);
                    continue;
                }
                self.prober.begin(site.router);
                push_rc(
                    &mut self.prober.rec,
                    site.port,
                    site.vc,
                    dest,
                    true,
                    false,
                    faulty,
                );
                let dets = self.prober.fire();
                let outcome = if dets.is_empty() {
                    self.walk(site, cur, dest, faulty)
                } else {
                    Outcome::Detected {
                        latency: 0,
                        detectors: dets,
                    }
                };
                self.record_outcome(site.signal, &mut cases[ki], outcome);
            }
        }
    }

    /// Follows a silently diverted flit with fault-free routing until a
    /// downstream checker fires, it is delivered (benign), or the hop
    /// bound trips (blind — cannot happen with the full bank, which
    /// guarantees silent hops are productive).
    fn walk(&mut self, site: &SiteRef, cur: Coord, dest: Coord, faulty_bits: u64) -> Outcome {
        let mesh = self.cfg.mesh;
        let (w, h) = (mesh.width(), mesh.height());
        let Some(fd) = Direction::from_bits(faulty_bits) else {
            return Outcome::Blind {
                state: format!("silent invalid RC encoding {faulty_bits:#05b} toward {dest}"),
            };
        };
        if fd == Direction::Local {
            return Outcome::Blind {
                state: format!("silent spurious ejection toward {dest}"),
            };
        }
        let Some(mut pos) = cur.step(fd, w, h) else {
            return Outcome::Blind {
                state: format!("silent off-mesh hop via {fd:?} toward {dest}"),
            };
        };
        let mut in_dir = fd.opposite();
        let mut latency = 0u64;
        let bound = w as u64 + h as u64 + 2;
        while latency < bound {
            latency += 1;
            if pos == dest {
                return Outcome::Benign;
            }
            let out = route(self.cfg.routing, pos, dest);
            self.prober.begin(mesh.node(pos).0);
            push_rc(
                &mut self.prober.rec,
                in_dir.index() as u8,
                site.vc,
                dest,
                true,
                false,
                out.bits(),
            );
            let dets = self.prober.fire();
            if !dets.is_empty() {
                return Outcome::Detected {
                    latency,
                    detectors: dets,
                };
            }
            if out == Direction::Local {
                return Outcome::Blind {
                    state: format!("silent misdelivery at {pos} (dest {dest})"),
                };
            }
            match pos.step(out, w, h) {
                Some(n) => pos = n,
                None => {
                    return Outcome::Blind {
                        state: format!("walk stepped off-mesh at {pos} via {out:?}"),
                    }
                }
            }
            in_dir = out.opposite();
        }
        Outcome::Blind {
            state: format!(
                "misroute walk from {cur} toward {dest} exceeded {bound} hops undetected"
            ),
        }
    }

    /// `RcHeadValid` — observation-plane in the RC cone (the wire is
    /// recorded, not gating); its guarantee is carried by inv20.
    fn eval_rc_head_valid(&mut self, site: &SiteRef, cases: &mut [CaseAcc]) {
        let mesh = self.cfg.mesh;
        let cur = mesh.coord(NodeId(site.router));
        let dests: Vec<Coord> = self
            .reach
            .get(&(site.router, site.port))
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        for dest in dests {
            self.out.tally.states += 1;
            let correct = route(self.cfg.routing, cur, dest).bits();
            self.prober.begin(site.router);
            push_rc(
                &mut self.prober.rec,
                site.port,
                site.vc,
                dest,
                true,
                false,
                correct,
            );
            if !self.self_check(site, &format!("RC toward {dest}")) {
                continue;
            }
            for (ki, &kind) in KINDS.iter().enumerate() {
                // Fault-free value at an RC execution is always 1.
                if kind.apply(1, site.bit) & 1 == 1 {
                    self.record_outcome(site.signal, &mut cases[ki], Outcome::NotEffective);
                    continue;
                }
                self.prober.begin(site.router);
                push_rc(
                    &mut self.prober.rec,
                    site.port,
                    site.vc,
                    dest,
                    false,
                    false,
                    correct,
                );
                let dets = self.prober.fire();
                let outcome = if dets.is_empty() {
                    Outcome::Masked
                } else {
                    Outcome::Detected {
                        latency: 0,
                        detectors: dets,
                    }
                };
                self.record_outcome(site.signal, &mut cases[ki], outcome);
            }
        }
    }

    /// `BufEmpty` — sampled in four distinct contexts; functional only at
    /// the switch-allocation gate (suppressed or spurious bids).
    fn eval_buf_empty(&mut self, site: &SiteRef, cases: &mut [CaseAcc]) {
        let mesh = self.cfg.mesh;
        let cur = mesh.coord(NodeId(site.router));

        // S1: RC execution (header buffered, wire fault-free 0). A raised
        // wire is recorded alongside the RC event — inv21's cone.
        let dests: Vec<Coord> = self
            .reach
            .get(&(site.router, site.port))
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        for dest in dests {
            self.out.tally.states += 1;
            let correct = route(self.cfg.routing, cur, dest).bits();
            self.prober.begin(site.router);
            push_rc(
                &mut self.prober.rec,
                site.port,
                site.vc,
                dest,
                true,
                false,
                correct,
            );
            if !self.self_check(site, &format!("RC toward {dest}")) {
                continue;
            }
            for (ki, &kind) in KINDS.iter().enumerate() {
                if kind.apply(0, site.bit) & 1 == 0 {
                    self.record_outcome(site.signal, &mut cases[ki], Outcome::NotEffective);
                    continue;
                }
                self.prober.begin(site.router);
                push_rc(
                    &mut self.prober.rec,
                    site.port,
                    site.vc,
                    dest,
                    true,
                    true,
                    correct,
                );
                let dets = self.prober.fire();
                let outcome = if dets.is_empty() {
                    Outcome::Masked
                } else {
                    Outcome::Detected {
                        latency: 0,
                        detectors: dets,
                    }
                };
                self.record_outcome(site.signal, &mut cases[ki], outcome);
            }
        }

        // S3: Active VC with buffered flits bidding for the switch (wire
        // fault-free 0). A raised wire suppresses the bid — no invariant
        // is violated; a *persistent* suppression is the alert-silent
        // stall caught by the worm-age monitor, a transient one is a
        // single-cycle delay.
        self.out.tally.states += 1;
        for (ki, &kind) in KINDS.iter().enumerate() {
            let outcome = if kind.apply(0, site.bit) & 1 == 0 {
                Outcome::NotEffective
            } else if matches!(kind, FaultKind::Transient) {
                Outcome::Masked // one lost bid: pure delay
            } else if self.stall_age != u64::MAX {
                Outcome::Detected {
                    latency: self.stall_age,
                    detectors: vec![Detector::StallMonitor],
                }
            } else {
                Outcome::Blind {
                    state: "alert-silent SA-bid suppression with the stall monitor disabled".into(),
                }
            };
            self.record_outcome(site.signal, &mut cases[ki], outcome);
        }

        // S4: Active VC during a worm bubble (buffer truly empty, wire
        // fault-free 1). A lowered wire raises a spurious bid; if it wins,
        // the read datapath pops an empty buffer — inv24's cone (the
        // read stage samples the real occupancy, so the record is
        // faithful). If it loses arbitration, nothing is consumed.
        self.out.tally.states += 2;
        for (ki, &kind) in KINDS.iter().enumerate() {
            if kind.apply(1, site.bit) & 1 == 1 {
                self.record_outcome(site.signal, &mut cases[ki], Outcome::NotEffective);
                self.record_outcome(site.signal, &mut cases[ki], Outcome::NotEffective);
                continue;
            }
            self.prober.begin(site.router);
            self.prober.rec.reads.push(ReadEvent {
                port: site.port,
                vc: site.vc,
                was_empty: true,
            });
            let dets = self.prober.fire();
            let win = if dets.is_empty() {
                Outcome::Blind {
                    state: "spurious SA bid on an empty buffer: stale-slot read crossed undetected"
                        .into(),
                }
            } else {
                Outcome::Detected {
                    latency: 1,
                    detectors: dets,
                }
            };
            self.record_outcome(site.signal, &mut cases[ki], win);
            // Lost arbitration: the spurious bid consumes nothing.
            self.record_outcome(site.signal, &mut cases[ki], Outcome::Masked);
        }

        // S5: VA completion (header buffered, wire fault-free 0) — inv23's
        // cone; the wire is recorded, not gating, at this sample point.
        self.out.tally.states += 1;
        let local = Direction::Local.bits();
        self.prober.begin(site.router);
        self.push_vc_event(site, 2, 3, false, true, false, false, local);
        if self.self_check(site, "VA completion with buffered header") {
            for (ki, &kind) in KINDS.iter().enumerate() {
                if kind.apply(0, site.bit) & 1 == 0 {
                    self.record_outcome(site.signal, &mut cases[ki], Outcome::NotEffective);
                    continue;
                }
                self.prober.begin(site.router);
                self.push_vc_event(site, 2, 3, false, true, false, true, local);
                let dets = self.prober.fire();
                let outcome = if dets.is_empty() {
                    Outcome::Masked
                } else {
                    Outcome::Detected {
                        latency: 0,
                        detectors: dets,
                    }
                };
                self.record_outcome(site.signal, &mut cases[ki], outcome);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push_vc_event(
        &mut self,
        site: &SiteRef,
        before: u64,
        after: u64,
        ev_rc: bool,
        ev_va: bool,
        ev_sa: bool,
        empty: bool,
        out_port: u64,
    ) {
        self.prober.rec.vc.push(VcEvent {
            port: site.port,
            vc: site.vc,
            state_before: before,
            state_after: after,
            ev_rc_done: ev_rc,
            ev_va_done: ev_va,
            ev_sa_won: ev_sa,
            head_kind: 0,
            empty,
            out_port,
            out_vc: site.vc as u64,
        });
    }

    /// `BufFull` — sampled at buffer writes; fault-free always 0 (credit
    /// flow control never admits a write into a full buffer), and the
    /// wire is recorded, not gating. inv25's cone.
    fn eval_buf_full(&mut self, site: &SiteRef, cases: &mut [CaseAcc]) {
        let class = self.cfg.class_of_vc(site.vc) as usize;
        let expected = self.cfg.packet_lengths.get(class).copied().unwrap_or(1);
        let mut contexts: Vec<(&'static str, WriteEvent)> = Vec::new();
        let base = WriteEvent {
            port: site.port,
            vc: site.vc,
            kind: 0,
            is_head: false,
            is_tail: false,
            vc_was_free: false,
            buf_was_full: false,
            prev_written_was_tail: false,
            arrived_count: 0,
            expected_len: expected,
        };
        contexts.push((
            "header write",
            WriteEvent {
                kind: if expected == 1 { 3 } else { 0 },
                is_head: true,
                is_tail: expected == 1,
                vc_was_free: true,
                prev_written_was_tail: true,
                arrived_count: 1,
                ..base
            },
        ));
        if expected >= 3 {
            contexts.push((
                "body write",
                WriteEvent {
                    kind: 1,
                    arrived_count: 2,
                    ..base
                },
            ));
        }
        if expected >= 2 {
            contexts.push((
                "tail write",
                WriteEvent {
                    kind: 2,
                    is_tail: true,
                    arrived_count: expected,
                    ..base
                },
            ));
        }
        for (label, ev) in contexts {
            self.out.tally.states += 1;
            self.prober.begin(site.router);
            self.prober.rec.writes.push(ev);
            if !self.self_check(site, label) {
                continue;
            }
            for (ki, &kind) in KINDS.iter().enumerate() {
                if kind.apply(0, site.bit) & 1 == 0 {
                    self.record_outcome(site.signal, &mut cases[ki], Outcome::NotEffective);
                    continue;
                }
                self.prober.begin(site.router);
                self.prober.rec.writes.push(WriteEvent {
                    buf_was_full: true,
                    ..ev
                });
                let dets = self.prober.fire();
                let outcome = if dets.is_empty() {
                    Outcome::Masked
                } else {
                    Outcome::Detected {
                        latency: 0,
                        detectors: dets,
                    }
                };
                self.record_outcome(site.signal, &mut cases[ki], outcome);
            }
        }
    }

    /// `VcEvSaWon` — a pure observation wire (the status table never
    /// consumes it); its guarantee is carried by inv17 on the spurious
    /// side, and suppression is observing-equivalent in every legal
    /// state.
    fn eval_vc_ev_sa_won(&mut self, site: &SiteRef, cases: &mut [CaseAcc]) {
        let local = Direction::Local.bits();
        // Spurious-event contexts: (label, state, empty, out_port). The
        // wire is fault-free 0 in all of them.
        let spurious: [(&'static str, u64, bool, u64); 4] = [
            ("Idle VC", 0, true, 0),
            ("Routing VC", 1, false, 0),
            ("VaPending VC", 2, false, local),
            ("Active VC not granted", 3, false, local),
        ];
        for (_label, state, empty, out_port) in spurious {
            self.out.tally.states += 1;
            for (ki, &kind) in KINDS.iter().enumerate() {
                if kind.apply(0, site.bit) & 1 == 0 {
                    self.record_outcome(site.signal, &mut cases[ki], Outcome::NotEffective);
                    continue;
                }
                self.prober.begin(site.router);
                self.push_vc_event(site, state, state, false, false, true, empty, out_port);
                let dets = self.prober.fire();
                let outcome = if dets.is_empty() {
                    // Legal even when fabricated (e.g. Active, or
                    // VaPending under the speculative pipeline): the
                    // fabricated event drives nothing downstream.
                    Outcome::Masked
                } else {
                    Outcome::Detected {
                        latency: 0,
                        detectors: dets,
                    }
                };
                self.record_outcome(site.signal, &mut cases[ki], outcome);
            }
        }
        // Suppression context: an Active VC that really won the switch
        // (wire fault-free 1). The event wire is observational, so hiding
        // it from the bank cannot corrupt function — masked by
        // construction for stuck-at-0 and transients.
        self.out.tally.states += 1;
        for (ki, &kind) in KINDS.iter().enumerate() {
            let outcome = if kind.apply(1, site.bit) & 1 == 1 {
                Outcome::NotEffective
            } else {
                Outcome::Masked
            };
            self.record_outcome(site.signal, &mut cases[ki], outcome);
        }
    }

    fn eval_site(&mut self, site: &SiteRef) {
        let mut cases: Vec<CaseAcc> = vec![CaseAcc::default(); KINDS.len()];
        match site.signal {
            SignalKind::RcOutDir => self.eval_rc_out_dir(site, &mut cases),
            SignalKind::RcHeadValid => self.eval_rc_head_valid(site, &mut cases),
            SignalKind::BufEmpty => self.eval_buf_empty(site, &mut cases),
            SignalKind::BufFull => self.eval_buf_full(site, &mut cases),
            SignalKind::VcEvSaWon => self.eval_vc_ev_sa_won(site, &mut cases),
            _ => return,
        }
        for (ki, case) in cases.iter().enumerate() {
            let kind = kind_name(KINDS[ki]);
            self.out.tally.fault_cases += 1;
            self.out.tally.benign_states += case.benign;
            let verdict = if case.blind > 0 {
                self.out.tally.blind += 1;
                let example = case.blind_example.as_deref().unwrap_or("<unrecorded>");
                self.diag(
                    "NL401",
                    Severity::Error,
                    site,
                    format!(
                        "blind spot: {kind} fault functionally corrupts {n} reachable state(s) \
                         without any detection; e.g. {example}",
                        n = case.blind
                    ),
                );
                "blind"
            } else if case.detected > 0 {
                self.out.tally.detected += 1;
                "detected"
            } else if case.effective > 0 {
                self.out.tally.masked += 1;
                "masked"
            } else {
                self.out.tally.masked += 1;
                "vacuous"
            };
            if let Some(l) = case.worst_latency {
                self.out.tally.worst_latency = self.out.tally.worst_latency.max(l);
            }
            self.out.per_site.push(SiteDetect {
                site: site.to_string(),
                fault: kind,
                verdict,
                effective_states: case.effective,
                detected_states: case.detected,
                masked_states: case.masked,
                blind_states: case.blind,
                worst_latency_steps: case.worst_latency,
                via_stall_monitor: case.via_monitor,
                detectors: case.detectors.iter().map(|d| d.to_string()).collect(),
            });
        }
    }
}

/// Reachable RC entry states: which destinations a header arriving on a
/// given input port of a given router can carry, computed by replaying
/// every (source, destination) walk under the configured routing — the
/// same [`route`] function the routers execute.
fn rc_reach(cfg: &NocConfig) -> BTreeMap<(u16, u8), BTreeSet<Coord>> {
    let mesh = cfg.mesh;
    let (w, h) = (mesh.width(), mesh.height());
    let bound = w as usize + h as usize + 2;
    let mut map: BTreeMap<(u16, u8), BTreeSet<Coord>> = BTreeMap::new();
    for src in mesh.nodes() {
        for dnode in mesh.nodes() {
            if src == dnode {
                continue;
            }
            let dest = mesh.coord(dnode);
            let mut cur = mesh.coord(src);
            let mut in_dir = Direction::Local;
            for _ in 0..bound {
                map.entry((mesh.node(cur).0, in_dir.index() as u8))
                    .or_default()
                    .insert(dest);
                if cur == dest {
                    break;
                }
                let out = route(cfg.routing, cur, dest);
                if out == Direction::Local {
                    break;
                }
                let Some(next) = cur.step(out, w, h) else {
                    break;
                };
                in_dir = out.opposite();
                cur = next;
            }
        }
    }
    map
}

fn detect_with(cfg: &NocConfig, disabled: &[u8], jobs: usize) -> (DetectStats, Vec<Diagnostic>) {
    let reach = rc_reach(cfg);
    let model = CheckerModel::from_table1();
    let constrainers: Vec<(SignalKind, Vec<u8>)> = SignalKind::ALL
        .iter()
        .filter(|s| containment_covered(**s))
        .map(|&s| (s, model.constrainers(cfg, s).iter().map(|c| c.0).collect()))
        .collect();
    let stall_age = RecoveryPolicy::default_policy().stall_age;

    let routers: Vec<NodeId> = cfg.mesh.nodes().collect();
    let reach_ref = &reach;
    let constrainers_ref = &constrainers;
    let tasks: Vec<_> = routers
        .iter()
        .map(|&router| {
            move || {
                let mut eval = RouterEval {
                    cfg,
                    reach: reach_ref,
                    constrainers: constrainers_ref,
                    stall_age,
                    prober: Prober::new(cfg, disabled),
                    out: RouterOut {
                        diags: Vec::new(),
                        per_site: Vec::new(),
                        roles: BTreeMap::new(),
                        tally: Tally::default(),
                        weak_metadata: BTreeSet::new(),
                    },
                };
                let mut sites = 0u64;
                for site in enumerate_router_sites(cfg, router) {
                    if containment_covered(site.signal) {
                        sites += 1;
                        eval.eval_site(&site);
                    }
                }
                (sites, eval.out)
            }
        })
        .collect();

    let mut diags = Vec::new();
    let mut per_site = Vec::new();
    let mut roles: BTreeMap<Detector, (u64, u64)> = BTreeMap::new();
    let mut tally = Tally::default();
    let mut weak: BTreeSet<String> = BTreeSet::new();
    let mut sites = 0u64;
    for (i, slot) in run_tasks(jobs, tasks).into_iter().enumerate() {
        let Some((n, out)) = slot else {
            diags.push(Diagnostic::new(
                Pass::Detect,
                "NL403",
                Severity::Error,
                format!("internal: detect worker for router n{i} produced no result"),
            ));
            continue;
        };
        sites += n;
        diags.extend(out.diags);
        per_site.extend(out.per_site);
        for (d, (fired, sole)) in out.roles {
            let e = roles.entry(d).or_insert((0, 0));
            e.0 += fired;
            e.1 += sole;
        }
        tally.states += out.tally.states;
        tally.fault_cases += out.tally.fault_cases;
        tally.detected += out.tally.detected;
        tally.masked += out.tally.masked;
        tally.blind += out.tally.blind;
        tally.benign_states += out.tally.benign_states;
        tally.worst_latency = tally.worst_latency.max(out.tally.worst_latency);
        weak.extend(out.weak_metadata);
    }

    // Dead-checker analysis (NL402): the cohort expected to carry the
    // detection duty of the covered set. Under the fault-region turn
    // model (only u-turns are statically illegal) inv1 legitimately has
    // no sole-detection duty and is exempted.
    let mut cohort: Vec<Detector> = Vec::new();
    if cfg.routing != RoutingAlgorithm::FaultRegion {
        cohort.push(Detector::Checker(1));
    }
    for c in [2u8, 3, 17, 20, 21, 23, 24, 25] {
        cohort.push(Detector::Checker(c));
    }
    let monitor_used = roles.contains_key(&Detector::StallMonitor);
    if stall_age != u64::MAX {
        cohort.push(Detector::StallMonitor);
    }
    for d in cohort {
        let (fired, sole) = roles.get(&d).copied().unwrap_or((0, 0));
        let mut dead = |msg: String| {
            let mut diag = Diagnostic::new(Pass::Detect, "NL402", Severity::Error, msg);
            if let Detector::Checker(c) = d {
                diag = diag.with_checker(c);
            }
            diags.push(diag);
        };
        if fired == 0 {
            dead(format!(
                "{d} never detects any modeled fault on the covered sites — semantically dead \
                 (or disabled)"
            ));
        } else if sole == 0 {
            dead(format!(
                "{d} is never the sole detector of any modeled fault — its detection duty is \
                 fully shadowed by other checkers"
            ));
        }
    }
    for signal in weak {
        diags.push(Diagnostic::new(
            Pass::Detect,
            "NL404",
            Severity::Info,
            format!(
                "some {signal} faults are detected only by checkers not declared as {signal} \
                 constrainers — coverage metadata understates the dynamic reach"
            ),
        ));
    }

    let stats = DetectStats {
        sites,
        fault_cases: tally.fault_cases,
        detected_cases: tally.detected,
        masked_cases: tally.masked,
        blind_cases: tally.blind,
        states_evaluated: tally.states,
        benign_reroutes: tally.benign_states,
        worst_latency_steps: tally.worst_latency,
        stall_monitor_bound: if monitor_used { stall_age } else { 0 },
        checkers: roles
            .into_iter()
            .map(|(d, (fired, sole))| CheckerRole {
                detector: d.to_string(),
                fired_states: fired,
                sole_states: sole,
            })
            .collect(),
        per_site,
    };
    (stats, diags)
}

/// Runs the detectability pass on up to `jobs` threads. The output is
/// independent of `jobs` (results are merged in router order).
pub fn detect_all(cfg: &NocConfig, jobs: usize) -> (DetectStats, Vec<Diagnostic>) {
    detect_with(cfg, &[], jobs)
}

/// The mutation hook: runs the pass with the given Table-1 checkers
/// force-disabled, emulating a weakened predicate. Gated so release
/// builds cannot ship a silently weakened bank; the in-tree acceptance
/// test proves every participating checker's removal is caught.
#[cfg(any(test, feature = "mutation"))]
pub fn detect_all_mutated(
    cfg: &NocConfig,
    disabled: &[u8],
    jobs: usize,
) -> (DetectStats, Vec<Diagnostic>) {
    detect_with(cfg, disabled, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical_config;

    #[test]
    fn canonical_covered_sites_all_detect_or_mask() {
        let cfg = canonical_config();
        let (stats, diags) = detect_all(&cfg, 1);
        let errors: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{errors:#?}");
        assert_eq!(stats.blind_cases, 0);
        assert!(stats.detected_cases > 0);
        assert_eq!(stats.fault_cases, 3 * stats.sites);
        assert_eq!(stats.fault_cases, stats.detected_cases + stats.masked_cases);
        // Dimension-order routing catches every effective misroute within
        // one downstream hop.
        assert!(
            stats.worst_latency_steps <= 1,
            "{}",
            stats.worst_latency_steps
        );
        // The stall monitor carries the BufEmpty suppression states.
        assert_eq!(stats.stall_monitor_bound, 1_000);
        // Exactly the documented cohort holds sole detection duty.
        let sole: Vec<&str> = stats
            .checkers
            .iter()
            .filter(|c| c.sole_states > 0)
            .map(|c| c.detector.as_str())
            .collect();
        assert_eq!(
            sole,
            [
                "inv1",
                "inv2",
                "inv3",
                "inv17",
                "inv20",
                "inv21",
                "inv23",
                "inv24",
                "inv25",
                "stall-monitor"
            ]
        );
    }

    /// Acceptance: weakening any one participating checker (emulated by
    /// disabling it — the feature-gated mutation hook) must surface as a
    /// hard error, via a blind spot (NL401) or dead-checker (NL402).
    #[test]
    fn weakening_any_participating_checker_is_caught() {
        let cfg = NocConfig::small_test();
        let (_, healthy) = detect_all(&cfg, 1);
        assert!(
            healthy.iter().all(|d| d.severity != Severity::Error),
            "{healthy:#?}"
        );
        for c in [1u8, 2, 3, 17, 20, 21, 23, 24, 25] {
            let (_, diags) = detect_all_mutated(&cfg, &[c], 1);
            assert!(
                diags.iter().any(|d| d.severity == Severity::Error),
                "disabling inv{c} must be caught by NL401/NL402"
            );
        }
    }

    #[test]
    fn jobs_do_not_change_results() {
        let cfg = NocConfig::small_test();
        let (s1, d1) = detect_all(&cfg, 1);
        let (s4, d4) = detect_all(&cfg, 4);
        assert_eq!(d1, d4);
        assert_eq!(
            serde_json::to_string(&s1).unwrap(),
            serde_json::to_string(&s4).unwrap()
        );
    }

    #[test]
    fn reach_covers_every_live_input_port() {
        let cfg = NocConfig::small_test();
        let reach = rc_reach(&cfg);
        let mesh = cfg.mesh;
        for n in mesh.nodes() {
            for dir in Direction::ALL {
                if mesh.port_live(n, dir) {
                    let key = (n.0, dir.index() as u8);
                    assert!(
                        reach.get(&key).is_some_and(|s| !s.is_empty()),
                        "no reachable RC state for router {} port {dir:?}",
                        n.0
                    );
                }
            }
        }
    }
}
