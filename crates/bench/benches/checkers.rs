//! Criterion micro-benchmarks of the NoCAlert checker array — the software
//! analogue of the paper's "checkers are much cheaper than the units they
//! check" claim, measured as simulation-time overhead of observation:
//! stepping a network bare vs. with the full 32-checker bank vs. with the
//! ForEVeR baseline attached.

use criterion::{criterion_group, criterion_main, Criterion};
use forever::Forever;
use noc_sim::{Network, NullObserver};
use noc_types::NocConfig;
use nocalert::AlertBank;
use std::hint::black_box;

fn cfg() -> NocConfig {
    let mut cfg = NocConfig::paper_baseline();
    cfg.injection_rate = 0.10;
    cfg
}

fn bench_bare(c: &mut Criterion) {
    let mut g = c.benchmark_group("observation_overhead");
    g.sample_size(10);

    let mut net = Network::new(cfg());
    net.run(1_000);
    g.bench_function("bare", |b| {
        b.iter(|| {
            net.step_observed(&mut NullObserver);
            black_box(net.cycle())
        });
    });

    let mut net2 = Network::new(cfg());
    let mut bank = AlertBank::new(net2.config());
    net2.run(1_000);
    g.bench_function("with_nocalert", |b| {
        b.iter(|| {
            net2.step_observed(&mut bank);
            black_box(net2.cycle())
        });
    });

    let mut net3 = Network::new(cfg());
    let mut fv = Forever::new(net3.config(), 1_500);
    net3.run(1_000);
    g.bench_function("with_forever", |b| {
        b.iter(|| {
            net3.step_observed(&mut fv);
            black_box(net3.cycle())
        });
    });

    let mut net4 = Network::new(cfg());
    let mut bank4 = AlertBank::new(net4.config());
    let mut fv4 = Forever::new(net4.config(), 1_500);
    net4.run(1_000);
    g.bench_function("with_both", |b| {
        b.iter(|| {
            net4.step_observed(&mut (&mut bank4, &mut fv4));
            black_box(net4.cycle())
        });
    });
    g.finish();
}

fn bench_fault_plane(c: &mut Criterion) {
    let mut g = c.benchmark_group("fault_plane");
    g.sample_size(10);
    // Stepping with a fault armed on a different router: the hot path is a
    // couple of compares per wire.
    let mut net = Network::new(cfg());
    net.run(1_000);
    let site = fault::enumerate_sites(net.config())[0];
    net.arm_fault(site, noc_types::FaultKind::Permanent, u64::MAX / 2);
    g.bench_function("armed_cold_site", |b| {
        b.iter(|| {
            net.step();
            black_box(net.cycle())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_bare, bench_fault_plane);
criterion_main!(benches);
