//! Quickstart: build the paper-baseline 8×8 network, attach the NoCAlert
//! checker bank, inject one single-bit transient fault into a router's
//! switch-arbiter grant vector, and watch the detection happen in the same
//! cycle.
//!
//! Run with: `cargo run --release --example quickstart`

use noc_types::site::SignalKind;
use nocalert_repro::prelude::*;

fn main() {
    let mut cfg = NocConfig::paper_baseline();
    cfg.injection_rate = 0.10;

    println!("== NoCAlert quickstart ==");
    println!(
        "mesh {}x{}, {} VCs/port, depth {}, XY routing, uniform random @ {}",
        cfg.mesh.width(),
        cfg.mesh.height(),
        cfg.vcs_per_port,
        cfg.buffer_depth,
        cfg.injection_rate
    );

    let mut net = Network::new(cfg.clone());
    let mut bank = AlertBank::new(&cfg);

    // Warm the network up with the checkers watching: no assertions.
    for _ in 0..2_000 {
        net.step_observed(&mut bank);
    }
    assert!(bank.assertions().is_empty());
    println!(
        "warm-up: {} flits injected, {} delivered, 0 assertions",
        net.stats().injected_flits,
        net.stats().ejected_flits
    );

    // Single-bit transient on an SA1 grant wire of the central router.
    let site = SiteRef {
        router: 27,
        port: 0,
        vc: 0,
        signal: SignalKind::Sa1Grant,
        bit: 1,
    };
    let inject_at = net.cycle();
    net.arm_fault(site, FaultKind::Transient, inject_at);
    println!("cycle {inject_at}: injecting transient fault at {site}");

    for _ in 0..2_000 {
        net.step_observed(&mut bank);
    }

    if net.fault_hits() == 0 {
        println!("the fault hit a wire that was idle that cycle (vacuous injection)");
        return;
    }
    match bank.first_detection() {
        Some(c) => {
            println!(
                "DETECTED at cycle {c} ({} cycles after injection)",
                c - inject_at
            );
            for a in bank.assertions().iter().take(5) {
                println!("  assertion: {a}");
            }
        }
        None => println!("fault hit but produced only legal outputs (benign, Observation 5)"),
    }
}
