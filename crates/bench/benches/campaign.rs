//! Criterion benchmarks of the campaign machinery: site enumeration,
//! snapshot cloning and a full single-injection rollout (the unit of work
//! the Figure 6–9 sweeps repeat thousands of times).

use criterion::{criterion_group, criterion_main, Criterion};
use golden::{Campaign, CampaignConfig};
use noc_types::NocConfig;
use std::hint::black_box;

fn small_cfg() -> NocConfig {
    let mut cfg = NocConfig::small_test();
    cfg.injection_rate = 0.08;
    cfg
}

fn bench_enumeration(c: &mut Criterion) {
    c.bench_function("enumerate_sites_8x8", |b| {
        let cfg = NocConfig::paper_baseline();
        b.iter(|| black_box(fault::enumerate_sites(&cfg).len()));
    });
}

fn bench_snapshot_clone(c: &mut Criterion) {
    let mut g = c.benchmark_group("snapshot");
    g.sample_size(10);
    let mut net = noc_sim::Network::new(NocConfig::paper_baseline());
    net.run(2_000);
    g.bench_function("clone_8x8", |b| b.iter(|| black_box(net.clone().cycle())));
    g.finish();
}

fn bench_single_rollout(c: &mut Criterion) {
    let mut g = c.benchmark_group("rollout");
    g.sample_size(10);
    let cc = CampaignConfig {
        noc: small_cfg(),
        warmup: 500,
        active_window: 300,
        drain_deadline: 5_000,
        forever_epoch: 300,
    };
    let campaign = Campaign::new(cc);
    let sites = fault::enumerate_sites(&small_cfg());
    let mut i = 0usize;
    g.bench_function("single_injection_4x4", |b| {
        b.iter(|| {
            i = (i + 37) % sites.len();
            black_box(campaign.run_site(sites[i]).fault_hits)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_enumeration,
    bench_snapshot_clone,
    bench_single_rollout
);
criterion_main!(benches);
