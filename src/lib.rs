//! Umbrella crate for the NoCAlert reproduction.
//!
//! Re-exports every sub-crate under one roof so examples, integration tests
//! and downstream users can depend on a single package:
//!
//! * [`types`] — core vocabulary (flits, geometry, configs, fault sites).
//! * [`sim`] — the cycle-accurate NoC simulator substrate.
//! * [`alert`] — the NoCAlert invariance checkers (the paper's contribution).
//! * [`fault`] — fault model, site enumeration and campaign driver.
//! * [`forever`] — the ForEVeR (MICRO'11) baseline detector.
//! * [`golden`] — golden-reference oracle and outcome classification.
//! * [`hw`] — 65 nm gate-level area/power/timing cost model.
//!
//! # Quickstart
//!
//! ```
//! use nocalert_repro::prelude::*;
//!
//! let config = NocConfig::small_test();
//! let mut net = Network::new(config.clone());
//! let mut checkers = AlertBank::new(&config);
//! for _ in 0..200 {
//!     net.step_observed(&mut checkers);
//! }
//! // A fault-free network never trips an invariance checker.
//! assert!(checkers.assertions().is_empty());
//! ```

pub use fault;
pub use forever;
pub use golden;
pub use hw_model as hw;
pub use noc_sim as sim;
pub use noc_types as types;
pub use nocalert as alert;

/// Convenient glob-import surface for examples and tests.
pub mod prelude {
    pub use fault::{enumerate_sites, rollout, FaultSpec};
    pub use forever::Forever;
    pub use golden::{
        classify, Campaign, CampaignConfig, Detector, GoldenReference, Outcome, RunLog,
    };
    pub use noc_sim::{Network, Observer};
    pub use noc_types::{
        Coord, Direction, FaultKind, Flit, Mesh, NocConfig, NodeId, SiteRef, TrafficPattern,
    };
    pub use nocalert::{AlertBank, CheckerId};
}
