//! Fundamental data types shared by every crate in the NoCAlert reproduction.
//!
//! This crate deliberately contains *no behaviour* beyond small helpers: it is
//! the vocabulary that the cycle-accurate simulator ([`noc-sim`]), the
//! NoCAlert invariance checkers (`nocalert`), the fault-injection framework
//! (`nocalert-fault`), the ForEVeR baseline (`nocalert-forever`) and the
//! golden-reference oracle (`nocalert-golden`) use to talk to each other.
//!
//! The major type families are:
//!
//! * [`geometry`] — mesh coordinates, node identifiers and the five router
//!   port directions (N/E/S/W/Local) of the canonical 2D-mesh router.
//! * [`flit`] — flits, packets and their provenance (normal traffic vs.
//!   garbage fabricated by a faulty read of an empty buffer slot).
//! * [`config`] — the router/network configuration knobs from Section 3.1 of
//!   the paper (number of VCs, buffer depth, atomic vs. non-atomic buffers,
//!   routing algorithm, message classes, …).
//! * [`site`] — fault-site addressing: every control-logic module exposes its
//!   input and output wires as named bit-fields, and a [`site::SiteRef`]
//!   names one bit of one such field in one router. This is the injection
//!   surface of the paper's fault model (Figure 5).
//! * [`record`] — per-cycle observation records: the wire values every module
//!   produced this cycle. This is the observation surface of the NoCAlert
//!   checkers *and* of the ForEVeR Allocation Comparator.
//! * [`bitlanes`] — the bit-transposed structure-of-arrays representation
//!   that lets the checker predicates and the fault plane evaluate up to 64
//!   wire instances (or campaign lanes) per bitwise operation.
//!
//! # Example
//!
//! ```
//! use noc_types::geometry::{Coord, Direction, Mesh};
//!
//! let mesh = Mesh::new(8, 8);
//! let node = mesh.node(Coord::new(3, 4));
//! assert_eq!(mesh.coord(node), Coord::new(3, 4));
//! assert_eq!(Direction::North.opposite(), Direction::South);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod bitlanes;
pub mod config;
pub mod error;
pub mod flit;
pub mod geometry;
pub mod job;
pub mod record;
pub mod region;
pub mod site;

pub use attack::{AttackKind, AttackSpec};
pub use bitlanes::{BitLanes, SignalPlane, LANES};
pub use config::{BufferPolicy, NocConfig, RoutingAlgorithm, TrafficPattern};
pub use error::SimError;
pub use flit::{Flit, FlitKind, FlitOrigin, PacketId};
pub use geometry::{Coord, Direction, Mesh, NodeId};
pub use job::{
    ContainmentStep, Incident, JobEvent, JobKind, JobResult, JobSpec, JobState, JobStatus,
};
pub use record::{CycleRecord, EjectEvent};
pub use region::FaultRect;
pub use site::{FaultKind, ModuleClass, SignalDir, SignalKind, SiteRef};

/// A simulation cycle number.
///
/// Cycles start at 0 and advance by one per [`step`] of the network.
/// The alias exists to make signatures self-describing.
pub type Cycle = u64;
