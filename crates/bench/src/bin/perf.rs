//! **Perf baseline harness** — the repo's performance trajectory
//! (`BENCH_nocsim.json`).
//!
//! Measures throughput on the canonical configurations:
//!
//! * **cycles/sec** — raw simulation stepping under the full NoCAlert
//!   checker bank, on the 4×4 (`small_test`) and 8×8 (`paper_baseline`)
//!   meshes. This is the per-cycle hot path the allocation-free refactor
//!   targets.
//! * **campaign runs/sec** — complete detection-campaign rollouts
//!   (clone/reset from the warm snapshot, watched rollout, ForEVeR coda,
//!   oracle classification) on the canonical 8×8 / 2-VC sweep
//!   configuration, single-threaded (per-core throughput, so the number
//!   is comparable across hosts with different core counts). Measured
//!   through **both** engines: the production
//!   [`golden::Campaign::run_many`] path (batched bit-plane lanes with
//!   golden-prefix sharing) and the per-rollout scalar engine it is
//!   proven equivalent to.
//!
//! ```text
//! cargo run --release -p nocalert-bench --bin perf -- \
//!     [--smoke] [--json PATH] [--ref PATH] [--baseline PATH] \
//!     [--cycles N] [--runs N] [--runs-scalar N] [--reps N] [--tolerance PCT]
//! ```
//!
//! Modes:
//!
//! * default — full measurement; with `--baseline PATH` (a flat metrics
//!   JSON from a previous `--measure-only` run) the output file carries
//!   the recorded baseline, the current numbers, per-metric
//!   current-vs-baseline deltas, and the headline speedups
//!   (`nocsim-perf-v2` schema).
//! * `--measure-only` — write just the flat metrics (used to record a
//!   baseline for a later comparison run).
//! * `--smoke` — the CI regression gate: a shortened measurement compared
//!   against the committed reference (`--ref`, default
//!   `BENCH_nocsim.json`); exits 1 when current 8×8 cycles/sec **or**
//!   campaign runs/sec fall more than `--tolerance` (default 15) percent
//!   below the reference's `current` section. The campaign floor is
//!   normalized by the co-measured 8×8 cycle rate so common-mode runner
//!   slowdown cancels out of the comparison. Emits a machine-readable
//!   report (measured metrics, per-metric deltas vs the reference, gate
//!   verdicts) to `--json` (default `BENCH_nocsim.smoke.json`).

use golden::{Campaign, CampaignConfig};
use noc_sim::Network;
use noc_types::NocConfig;
use nocalert::AlertBank;
use nocalert_bench::Args;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Schema tag of the committed reference document.
const SCHEMA: &str = "nocsim-perf-v2";

/// One set of measured throughput figures.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Metrics {
    /// Simulation cycles per wall-clock second, 4×4 mesh, checker bank
    /// attached.
    cycles_per_sec_4x4: f64,
    /// Simulation cycles per wall-clock second, 8×8 paper baseline,
    /// checker bank attached.
    cycles_per_sec_8x8: f64,
    /// Complete campaign rollouts per wall-clock second on the canonical
    /// 8×8 / 2-VC sweep, single worker thread, through the production
    /// [`golden::Campaign::run_many`] path (the batched bit-plane engine
    /// where its equivalence proof applies). This is the gated headline
    /// figure; before the batched engine existed `run_many` was the
    /// scalar engine, so the trajectory is continuous.
    campaign_runs_per_sec_8x8_2vc: f64,
    /// The same rollouts forced through the per-run scalar engine
    /// ([`golden::Campaign::run_site`]); the batched-vs-scalar ratio is
    /// the engine's standalone speedup.
    campaign_runs_per_sec_8x8_2vc_scalar: f64,
    /// Cycles stepped per mesh for the cycles/sec figures.
    measured_cycles: u64,
    /// Campaign rollouts timed for the batched runs/sec figure.
    measured_runs: usize,
    /// Campaign rollouts timed for the scalar runs/sec figure.
    measured_runs_scalar: usize,
    /// Timed repetitions of each campaign batch; the reported figure is
    /// the fastest repetition (peak throughput — robust against noisy
    /// neighbours on shared runners).
    measured_reps: usize,
}

/// One current-vs-reference comparison for a single throughput metric.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Delta {
    /// Metric name (a `Metrics` field).
    metric: String,
    /// The reference (baseline or committed-current) figure.
    reference: f64,
    /// The freshly measured figure.
    current: f64,
    /// `current / reference` (> 1 is faster).
    ratio: f64,
}

/// The committed `BENCH_nocsim.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Reference {
    /// Format tag ([`SCHEMA`]).
    schema: String,
    /// Pre-refactor numbers, measured with this same harness before the
    /// perf overhauls (allocation-free arena, batched bit-plane lanes)
    /// landed. `run_many` was the scalar engine then, so its batched and
    /// scalar figures coincide.
    baseline: Metrics,
    /// Post-refactor numbers.
    current: Metrics,
    /// Per-metric current-vs-baseline deltas (machine-readable form of
    /// the speedup table).
    deltas: Vec<Delta>,
    /// `current.campaign_runs_per_sec_8x8_2vc / baseline.…` — the
    /// acceptance figure.
    campaign_speedup: f64,
    /// `current` batched over `current` scalar campaign throughput — the
    /// batched engine's speedup against the equivalent scalar rollouts.
    batched_over_scalar: f64,
    /// `current.cycles_per_sec_8x8 / baseline.cycles_per_sec_8x8`.
    cycle_speedup_8x8: f64,
}

/// One smoke-gate verdict.
#[derive(Debug, Clone, Serialize)]
struct Gate {
    /// Gated metric name.
    metric: String,
    /// Minimum acceptable figure — `reference * (1 - tolerance/100)`,
    /// additionally scaled by the co-measured host speed for the
    /// campaign metric.
    floor: f64,
    /// The freshly measured figure.
    current: f64,
    /// Whether `current >= floor`.
    passed: bool,
}

/// The machine-readable `--smoke` report (`BENCH_nocsim.smoke.json`).
#[derive(Debug, Clone, Serialize)]
struct SmokeReport {
    /// Format tag.
    schema: String,
    /// Regression tolerance in percent.
    tolerance_pct: f64,
    /// The smoke measurement.
    metrics: Metrics,
    /// Current-vs-committed-reference deltas (empty when no reference
    /// file exists yet).
    deltas: Vec<Delta>,
    /// Per-metric gate verdicts.
    gates: Vec<Gate>,
    /// Overall verdict (`gates` all passed).
    passed: bool,
}

/// The throughput figures of a [`Metrics`], by name, for delta tables.
fn rates(m: &Metrics) -> [(&'static str, f64); 4] {
    [
        ("cycles_per_sec_4x4", m.cycles_per_sec_4x4),
        ("cycles_per_sec_8x8", m.cycles_per_sec_8x8),
        (
            "campaign_runs_per_sec_8x8_2vc",
            m.campaign_runs_per_sec_8x8_2vc,
        ),
        (
            "campaign_runs_per_sec_8x8_2vc_scalar",
            m.campaign_runs_per_sec_8x8_2vc_scalar,
        ),
    ]
}

/// Per-metric current-vs-reference deltas.
fn deltas(reference: &Metrics, current: &Metrics) -> Vec<Delta> {
    rates(reference)
        .iter()
        .zip(rates(current))
        .map(|(&(metric, r), (_, c))| Delta {
            metric: metric.to_string(),
            reference: r,
            current: c,
            ratio: if r > 0.0 { c / r } else { f64::INFINITY },
        })
        .collect()
}

/// The canonical 8×8 / 2-VC campaign sweep configuration (the recovery
/// campaign's mesh shape driven through the detection campaign driver).
fn sweep_noc() -> NocConfig {
    let mut noc = NocConfig::paper_baseline();
    noc.vcs_per_port = 2;
    noc.message_classes = 1;
    noc.packet_lengths = vec![5];
    noc.injection_rate = 0.05;
    noc
}

/// Steps `cycles` simulated cycles under the full checker bank and
/// returns cycles/sec — the fastest of `reps` identical windows (fresh
/// network each, so every repetition times the same workload and the
/// peak filters out scheduling noise only).
fn measure_cycles(cfg: NocConfig, cycles: u64, reps: usize) -> f64 {
    let mut best = f64::MIN;
    for _ in 0..reps {
        let mut net = Network::new(cfg.clone());
        let mut bank = AlertBank::new(&cfg);
        // Warm the allocator pools, caches, and branch predictors out of
        // the measurement window — long enough that a short smoke window
        // reads the same steady-state rate as the full measurement.
        for _ in 0..3_000 {
            net.step_observed(&mut bank);
        }
        let t0 = Instant::now();
        for _ in 0..cycles {
            net.step_observed(&mut bank);
        }
        best = best.max(cycles as f64 / t0.elapsed().as_secs_f64());
    }
    best
}

/// Times complete campaign rollouts (single worker) through both engines
/// against one shared warm campaign and returns `(batched, scalar)`
/// runs/sec. Each batch is timed `reps` times and the fastest repetition
/// is reported — a short batch on a shared runner is dominated by
/// scheduling noise otherwise.
fn measure_campaign(runs: usize, runs_scalar: usize, reps: usize) -> (f64, f64) {
    let cc = CampaignConfig::paper_defaults(sweep_noc(), 500);
    let campaign = Campaign::new(cc);
    let universe = fault::enumerate_sites(&campaign.config().noc);

    // Batched: the production `run_many` path. One untimed call warms
    // per-thread state and builds the shared golden trajectory outside
    // the measurement window.
    let sites = fault::sample::stride(&universe, runs);
    let _ = campaign.run_many(&sites[..1], 1);
    let mut batched = f64::MIN;
    for _ in 0..reps {
        let t0 = Instant::now();
        let results = campaign.run_many(&sites, 1);
        assert_eq!(results.len(), sites.len());
        batched = batched.max(sites.len() as f64 / t0.elapsed().as_secs_f64());
    }

    // Scalar: the same kind of rollouts forced through the per-run
    // engine, reusing one arena the way the worker loop does.
    let sites = fault::sample::stride(&universe, runs_scalar);
    let mut arena = campaign.arena();
    let _ = campaign.run_site_in(&mut arena, sites[0]);
    let mut scalar = f64::MIN;
    for _ in 0..reps {
        let t0 = Instant::now();
        for &site in &sites {
            let _ = campaign.run_site_in(&mut arena, site);
        }
        scalar = scalar.max(sites.len() as f64 / t0.elapsed().as_secs_f64());
    }
    (batched, scalar)
}

fn measure(cycles: u64, runs: usize, runs_scalar: usize, reps: usize) -> Metrics {
    eprintln!("[perf] stepping 4x4 for {cycles} cycles (best of {reps})…");
    let c4 = measure_cycles(NocConfig::small_test(), cycles, reps);
    eprintln!("[perf] stepping 8x8 for {cycles} cycles (best of {reps})…");
    let c8 = measure_cycles(NocConfig::paper_baseline(), cycles, reps);
    eprintln!(
        "[perf] timing {runs} batched + {runs_scalar} scalar campaign rollouts \
         (8x8/2-VC, best of {reps})…"
    );
    let (batched, scalar) = measure_campaign(runs, runs_scalar, reps);
    Metrics {
        cycles_per_sec_4x4: c4,
        cycles_per_sec_8x8: c8,
        campaign_runs_per_sec_8x8_2vc: batched,
        campaign_runs_per_sec_8x8_2vc_scalar: scalar,
        measured_cycles: cycles,
        measured_runs: runs,
        measured_runs_scalar: runs_scalar,
        measured_reps: reps,
    }
}

fn print_metrics(label: &str, m: &Metrics) {
    println!("-- {label} --");
    nocalert_bench::row("cycles/sec 4x4", format!("{:.0}", m.cycles_per_sec_4x4));
    nocalert_bench::row("cycles/sec 8x8", format!("{:.0}", m.cycles_per_sec_8x8));
    nocalert_bench::row(
        "campaign runs/sec 8x8/2-VC (batched, 1 thread)",
        format!("{:.3}", m.campaign_runs_per_sec_8x8_2vc),
    );
    nocalert_bench::row(
        "campaign runs/sec 8x8/2-VC (scalar, 1 thread)",
        format!("{:.3}", m.campaign_runs_per_sec_8x8_2vc_scalar),
    );
}

fn write_json<T: Serialize>(path: &str, value: &T) {
    let s = serde_json::to_string_pretty(value).unwrap_or_else(|e| {
        eprintln!("[perf] cannot serialize metrics: {e}");
        std::process::exit(2);
    });
    std::fs::write(path, s + "\n").unwrap_or_else(|e| {
        eprintln!("[perf] cannot write {path}: {e}");
        std::process::exit(2);
    });
    eprintln!("[perf] wrote {path}");
}

fn load_metrics(path: &str) -> Metrics {
    let s = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("[perf] cannot read {path}: {e}");
        std::process::exit(2);
    });
    serde_json::from_str(&s).unwrap_or_else(|e| {
        eprintln!("[perf] cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

fn smoke(args: &Args) -> i32 {
    let tolerance: f64 = args.get("tolerance", 15.0);
    let cycles: u64 = args.get("cycles", 6_000);
    let runs: usize = args.get("runs", 24usize).max(1);
    let runs_scalar: usize = args.get("runs-scalar", 4usize).max(1);
    // Short smoke windows on a shared runner see heavy scheduling noise;
    // more repetitions buy more chances at an undisturbed window.
    let reps: usize = args.get("reps", 5usize).max(1);
    let m = measure(cycles, runs, runs_scalar, reps);
    print_metrics("smoke", &m);
    let json_path = args.str("json").unwrap_or("BENCH_nocsim.smoke.json");
    let ref_path = args.str("ref").unwrap_or("BENCH_nocsim.json");
    let reference = match std::fs::read_to_string(ref_path) {
        Ok(s) => {
            let r: Reference = serde_json::from_str(&s).unwrap_or_else(|e| {
                eprintln!(
                    "[perf] cannot parse {ref_path}: {e}\n\
                     [perf] regenerate it with: cargo run --release -p nocalert-bench \
                     --bin perf -- --baseline <metrics.json> --json {ref_path}"
                );
                std::process::exit(2);
            });
            if r.schema != SCHEMA {
                eprintln!(
                    "[perf] {ref_path} has schema {:?}, expected {SCHEMA:?}; regenerate it",
                    r.schema
                );
                std::process::exit(2);
            }
            Some(r)
        }
        Err(e) => {
            eprintln!("[perf] no committed reference at {ref_path} ({e}); gate skipped");
            None
        }
    };
    let (ds, gates) = match &reference {
        None => (Vec::new(), Vec::new()),
        Some(r) => {
            let ds = deltas(&r.current, &m);
            // The cycles gate is absolute. The campaign gate is
            // host-speed-normalized: its floor scales by the co-measured
            // 8×8 cycle rate of this very process, so common-mode runner
            // slowdown (noisy neighbours, frequency throttling after the
            // earlier CI phases) cancels out, while a genuine
            // campaign-engine regression — which does not move the
            // per-cycle stepping rate — still trips it.
            let cycles_floor = r.current.cycles_per_sec_8x8 * (1.0 - tolerance / 100.0);
            let host_scale = m.cycles_per_sec_8x8 / r.current.cycles_per_sec_8x8;
            let campaign_floor =
                r.current.campaign_runs_per_sec_8x8_2vc * host_scale * (1.0 - tolerance / 100.0);
            let gates = vec![
                Gate {
                    metric: "cycles_per_sec_8x8".to_string(),
                    floor: cycles_floor,
                    current: m.cycles_per_sec_8x8,
                    passed: m.cycles_per_sec_8x8 >= cycles_floor,
                },
                Gate {
                    metric: "campaign_runs_per_sec_8x8_2vc".to_string(),
                    floor: campaign_floor,
                    current: m.campaign_runs_per_sec_8x8_2vc,
                    passed: m.campaign_runs_per_sec_8x8_2vc >= campaign_floor,
                },
            ];
            (ds, gates)
        }
    };
    let passed = gates.iter().all(|g| g.passed);
    for g in &gates {
        nocalert_bench::row(
            &format!("gate {} (floor)", g.metric),
            format!(
                "{:.3} >= {:.3}  [{}]",
                g.current,
                g.floor,
                if g.passed { "ok" } else { "FAIL" }
            ),
        );
    }
    let report = SmokeReport {
        schema: "nocsim-perf-smoke-v2".to_string(),
        tolerance_pct: tolerance,
        metrics: m,
        deltas: ds,
        gates,
        passed,
    };
    write_json(json_path, &report);
    if passed {
        println!("\nPERF GATE PASSED: within {tolerance}% of the committed reference.");
        0
    } else {
        println!(
            "\nPERF GATE FAILED: a gated metric is more than {tolerance}% below the \
             committed reference (see above)."
        );
        1
    }
}

fn main() {
    let args = Args::from_env();
    if args.flag("smoke") {
        std::process::exit(smoke(&args));
    }
    let cycles: u64 = args.get("cycles", 30_000);
    let runs: usize = args.get("runs", 24usize).max(1);
    let runs_scalar: usize = args.get("runs-scalar", 24usize).max(1);
    let reps: usize = args.get("reps", 3usize).max(1);
    let m = measure(cycles, runs, runs_scalar, reps);
    print_metrics("current", &m);
    if args.flag("measure-only") {
        write_json(args.str("json").unwrap_or("BENCH_nocsim.metrics.json"), &m);
        return;
    }
    let Some(baseline_path) = args.str("baseline") else {
        eprintln!("[perf] no --baseline given; writing flat metrics only");
        write_json(args.str("json").unwrap_or("BENCH_nocsim.metrics.json"), &m);
        return;
    };
    let baseline = load_metrics(baseline_path);
    print_metrics("baseline (pre-refactor)", &baseline);
    let reference = Reference {
        schema: SCHEMA.to_string(),
        campaign_speedup: m.campaign_runs_per_sec_8x8_2vc / baseline.campaign_runs_per_sec_8x8_2vc,
        batched_over_scalar: m.campaign_runs_per_sec_8x8_2vc
            / m.campaign_runs_per_sec_8x8_2vc_scalar,
        cycle_speedup_8x8: m.cycles_per_sec_8x8 / baseline.cycles_per_sec_8x8,
        deltas: deltas(&baseline, &m),
        baseline,
        current: m,
    };
    nocalert_bench::row(
        "campaign speedup",
        format!("{:.2}x", reference.campaign_speedup),
    );
    nocalert_bench::row(
        "batched over scalar",
        format!("{:.2}x", reference.batched_over_scalar),
    );
    nocalert_bench::row(
        "8x8 cycle speedup",
        format!("{:.2}x", reference.cycle_speedup_8x8),
    );
    write_json(args.str("json").unwrap_or("BENCH_nocsim.json"), &reference);
}
