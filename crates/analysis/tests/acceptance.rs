//! Acceptance criteria of the static-verification subsystem, as
//! integration tests:
//!
//! * the canonical configuration (8×8 mesh, 2 VCs) has **zero blind
//!   spots** — every live wire bit is constrained by an enabled checker;
//! * deleting any one checker's declared sets makes the coverage pass
//!   fail — the static mirror of the paper's ablation experiment (E12):
//!   no checker's metadata is dispensable;
//! * the exhaustive prover holds on the canonical configuration and on
//!   the Section-4.4 variations (non-atomic buffers, speculative
//!   pipeline, adaptive routing).

use noc_types::config::{BufferPolicy, NocConfig, RoutingAlgorithm};
use nocalert::CheckerId;
use nocalert_analysis::{analyze, canonical_config, prove_all, CheckerModel};

#[test]
fn canonical_8x8_2vc_has_zero_blind_spots() {
    let cfg = canonical_config();
    let a = analyze(&cfg, &CheckerModel::from_table1());
    assert!(a.clean(), "{:#?}", a.diagnostics);
    assert_eq!(a.stats.uncovered_sites, 0);
    assert_eq!(a.stats.covered_sites, a.stats.total_sites);
    assert!(a.stats.total_sites > 10_000, "{}", a.stats.total_sites);
    assert!(a.stats.min_constrainers_per_site >= 1);
}

#[test]
fn deleting_any_one_checker_fails_the_coverage_pass() {
    let cfg = canonical_config();
    for id in CheckerId::all() {
        let mut m = CheckerModel::from_table1();
        m.delete(id);
        let a = analyze(&cfg, &m);
        assert!(
            !a.clean(),
            "coverage pass still clean after deleting checker {id} — \
             its metadata would be dispensable"
        );
    }
}

#[test]
fn sole_constrainer_deletions_open_real_blind_spots() {
    // For checkers that are the only constrainer of some signal, deletion
    // must surface actual uncovered sites (NL110), not just the
    // metadata-completeness error.
    let cfg = canonical_config();
    let baseline = analyze(&cfg, &CheckerModel::from_table1());
    assert!(!baseline.stats.sole_constrainer_signals.is_empty());
    let mut checked = 0;
    for id in CheckerId::all() {
        let mut m = CheckerModel::from_table1();
        m.delete(id);
        let a = analyze(&cfg, &m);
        if a.stats.uncovered_sites > 0 {
            assert!(a.diagnostics.iter().any(|d| d.code == "NL110"));
            checked += 1;
        }
    }
    assert!(checked >= baseline.stats.sole_constrainer_signals.len().min(5));
}

#[test]
fn prover_holds_on_canonical_and_section_4_4_variations() {
    let mut variations = vec![canonical_config(), NocConfig::paper_baseline()];
    let mut nonatomic = canonical_config();
    nonatomic.buffer_policy = BufferPolicy::NonAtomic;
    variations.push(nonatomic);
    let mut speculative = canonical_config();
    speculative.speculative = true;
    variations.push(speculative);
    let mut adaptive = canonical_config();
    adaptive.routing = RoutingAlgorithm::WestFirst;
    variations.push(adaptive);
    let mut vcs8 = NocConfig::paper_baseline();
    vcs8.vcs_per_port = 8;
    variations.push(vcs8);

    for cfg in &variations {
        assert!(cfg.validate().is_ok());
        let (diags, proofs) = prove_all(cfg, 1);
        assert!(diags.is_empty(), "{cfg:?}: {diags:#?}");
        assert_eq!(proofs.len(), 6);
        for p in &proofs {
            assert_eq!(p.violations, 0, "{cfg:?}: {p:?}");
        }
        let a = analyze(cfg, &CheckerModel::from_table1());
        assert!(a.clean(), "{cfg:?}: {:#?}", a.diagnostics);
    }
}
