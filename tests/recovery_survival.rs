//! End-to-end survival pinning: any single persistent fault (permanent or
//! stuck-at) at a containment-covered site must end in exactly-once
//! delivery — detection drives containment, the fenced mesh keeps
//! routing, and the ARQ transport resends what containment destroyed.
//!
//! The full acceptance sweep lives in the `recovery` campaign binary
//! (`--smoke` gates CI); this test pins a deterministic sample so a
//! regression in any layer of the loop fails `cargo test` directly.

use fault::{FaultSpec, Watchdog};
use golden::{
    containment_covered, DeliveryVerdict, RecoveryHarness, RecoveryOptions, RecoveryOutcome,
};
use noc_types::{NocConfig, SiteRef};

fn recovery_cfg() -> NocConfig {
    let mut cfg = NocConfig::small_test();
    cfg.vcs_per_port = 2;
    cfg.message_classes = 1;
    cfg.packet_lengths = vec![5];
    cfg.injection_rate = 0.05;
    cfg
}

fn quick_opts() -> RecoveryOptions {
    RecoveryOptions {
        warmup: 200,
        active_window: 2_000,
        watchdog: Watchdog {
            cycle_budget: 120_000,
            stall_window: 1_500,
        },
        ..RecoveryOptions::paper_defaults()
    }
}

fn covered_sample(cfg: &NocConfig, n: usize) -> Vec<SiteRef> {
    let covered: Vec<SiteRef> = fault::enumerate_sites(cfg)
        .into_iter()
        .filter(|s| containment_covered(s.signal))
        .collect();
    assert!(
        covered.len() >= n,
        "covered universe unexpectedly small: {}",
        covered.len()
    );
    fault::sample::stride(&covered, n)
}

#[test]
fn persistent_faults_at_covered_sites_deliver_exactly_once() {
    let cfg = recovery_cfg();
    let h = RecoveryHarness::try_new(cfg.clone(), quick_opts()).expect("valid options");
    for site in covered_sample(&cfg, 6) {
        for spec in [
            FaultSpec::permanent(site, 900),
            FaultSpec::stuck_at(site, false, 900),
            FaultSpec::stuck_at(site, true, 900),
        ] {
            let run = h.run_isolated(Some(&spec));
            assert!(
                !matches!(run.outcome, RecoveryOutcome::Crashed(_)),
                "rollout crashed at {site:?} ({:?})",
                spec.kind
            );
            assert_eq!(
                run.verdict,
                DeliveryVerdict::ExactlyOnce,
                "delivery violated at {site:?} ({:?}): {:?} / {:?}",
                spec.kind,
                run.outcome,
                run.transport
            );
        }
    }
}

#[test]
fn containment_actually_fires_under_a_persistent_fault() {
    // Exactly-once alone could hide a do-nothing containment layer (the
    // fault might happen to be maskable). Pin that a persistent fault on a
    // covered site consumes alerts and escalates to quarantine, and that
    // the transport resent something across the disruption.
    let cfg = recovery_cfg();
    let h = RecoveryHarness::try_new(cfg.clone(), quick_opts()).expect("valid options");
    let site = covered_sample(&cfg, 6)[0];
    let run = h.run(Some(&FaultSpec::permanent(site, 900)));
    assert!(run.fault_hits > 0, "fault never touched a live wire");
    assert!(run.alerts > 0, "no invariance violations observed");
    assert!(
        run.recovery.alerts_consumed > 0,
        "no alerts reached containment"
    );
    assert!(
        run.recovery.disables > 0,
        "escalation never reached quarantine: {:?}",
        run.recovery
    );
    assert_eq!(run.verdict, DeliveryVerdict::ExactlyOnce);
}
