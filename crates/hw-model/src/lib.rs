//! Analytic gate-level hardware cost model — the stand-in for the paper's
//! Verilog + Synopsys Design Compiler + TSMC 65 nm synthesis flow
//! (Section 5.5, Figure 10).
//!
//! Commercial standard-cell libraries are not available here, so the
//! hardware evaluation is reproduced with a structural **gate-equivalent
//! (GE)** model: every router component and every checker is decomposed
//! into registers, round-robin arbiters, multiplexers and comparators with
//! gate counts taken from standard digital-design estimates, and GEs are
//! converted to µm²/µW/ps with public 65 nm figures (1 GE = one NAND2 ≈
//! 1.44 µm²; FO4 ≈ 25 ps). The model preserves the *structure* that drives
//! Figure 10's shape:
//!
//! * the router datapath (input buffers, crossbar) grows **linearly** with
//!   the VC count,
//! * the control logic grows **super-linearly** (the per-output-VC
//!   allocation arbiters scale with `V · rr(P·V)` ≈ V³), so duplicating it
//!   (DMR-CL) costs 5→31 % as VCs go 2→8,
//! * the checkers grow only with the *width* of the wires they watch
//!   (linear-to-quadratic), so NoCAlert stays a few percent throughout,
//! * checkers are purely combinational (no clocked registers except the
//!   flit counter of invariance 28), so their **power** share is far below
//!   their area share,
//! * checkers hang off existing wires and add only fan-out load, so the
//!   **critical path** penalty is ~1 %.
//!
//! Absolute numbers are model estimates, not sign-off values; the tests pin
//! the paper-reported *ranges* (3 % area, <1 % power, ≈1 % critical path,
//! DMR 5.41→31.32 %).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use noc_types::NocConfig;
use serde::{Deserialize, Serialize};

/// 65 nm technology constants.
pub mod tech {
    /// Area of one gate equivalent (NAND2) in µm².
    pub const GE_AREA_UM2: f64 = 1.44;
    /// FO4 inverter delay in picoseconds.
    pub const FO4_PS: f64 = 25.0;
    /// Dynamic power of one switching GE at 1 GHz / 1 V / 50 % activity, µW.
    pub const GE_DYN_UW: f64 = 0.096;
    /// Relative power weight of a register GE (clock load) vs. a purely
    /// combinational GE.
    pub const REG_POWER_WEIGHT: f64 = 2.5;
    /// Gate equivalents of one D flip-flop bit.
    pub const REG_GE_PER_BIT: f64 = 6.0;
    /// Gate equivalents of one 2:1 mux bit.
    pub const MUX2_GE: f64 = 1.8;
}

/// Gate count of an `n`-requester round-robin (matrix-style) arbiter.
pub fn rr_arbiter_ge(n: u32) -> f64 {
    let n = n as f64;
    0.8 * n * n + 6.0 * n + 4.0
}

/// Gate count of a `w`-bit equality comparator.
pub fn comparator_ge(w: u32) -> f64 {
    2.2 * w as f64 + 1.0
}

/// Structural parameters extracted from a [`NocConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HwParams {
    /// Router ports (5 for the canonical mesh router).
    pub ports: u32,
    /// VCs per input port.
    pub vcs: u32,
    /// Buffer depth per VC in flits.
    pub depth: u32,
    /// Flit/link width in bits.
    pub width: u32,
    /// Bits per mesh coordinate.
    pub coord_bits: u32,
}

impl HwParams {
    /// Extracts the parameters of an interior router from `cfg`.
    pub fn from_config(cfg: &NocConfig) -> HwParams {
        HwParams {
            ports: 5,
            vcs: cfg.vcs_per_port as u32,
            depth: cfg.buffer_depth as u32,
            width: cfg.link_width_bits as u32,
            coord_bits: cfg.coord_bits() as u32,
        }
    }

    /// The paper's baseline with a given VC count (Figure 10 sweeps 2–8).
    pub fn baseline_with_vcs(vcs: u32) -> HwParams {
        HwParams {
            ports: 5,
            vcs,
            depth: 5,
            width: 128,
            coord_bits: 3,
        }
    }

    fn vc_bits(&self) -> u32 {
        (32 - (self.vcs.max(2) - 1).leading_zeros()).max(1)
    }

    fn depth_bits(&self) -> u32 {
        (32 - self.depth.leading_zeros()).max(1)
    }
}

/// Area decomposition of one router (+checkers), in gate equivalents.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaReport {
    /// Input buffer storage (datapath).
    pub buffers_ge: f64,
    /// Crossbar datapath.
    pub xbar_ge: f64,
    /// Control logic total (RC + VA + SA + state + credits).
    pub control_ge: f64,
    /// The 32 NoCAlert checkers.
    pub checkers_ge: f64,
    /// DMR of the control logic (duplicate + output comparators).
    pub dmr_ge: f64,
}

impl AreaReport {
    /// Baseline router area (no protection).
    pub fn router_ge(&self) -> f64 {
        self.buffers_ge + self.xbar_ge + self.control_ge
    }

    /// NoCAlert area overhead in percent of the baseline router.
    pub fn nocalert_overhead_pct(&self) -> f64 {
        self.checkers_ge / self.router_ge() * 100.0
    }

    /// DMR-CL area overhead in percent of the baseline router.
    pub fn dmr_overhead_pct(&self) -> f64 {
        self.dmr_ge / self.router_ge() * 100.0
    }

    /// Converts a GE figure to µm² of 65 nm silicon.
    pub fn ge_to_um2(ge: f64) -> f64 {
        ge * tech::GE_AREA_UM2
    }
}

/// Computes the area decomposition for `p`.
pub fn area(p: &HwParams) -> AreaReport {
    let ports = p.ports as f64;
    let v = p.vcs as f64;
    let pv = p.ports * p.vcs;

    // --- Datapath ---
    let buffers_ge = ports * v * p.depth as f64 * p.width as f64 * tech::REG_GE_PER_BIT;
    // Per output: a (P-1):1 mux per bit, built from mux2s.
    let xbar_ge = p.width as f64 * ports * (ports - 2.0).max(1.0) * tech::MUX2_GE;

    // --- Control logic ---
    // RC: coordinate comparators + turn logic, per input port.
    let rc = ports * (4.0 * p.coord_bits as f64 + 14.0);
    // VA1 / SA1: per-input-port arbiters over the VCs.
    let va1 = ports * rr_arbiter_ge(p.vcs);
    let sa1 = ports * (rr_arbiter_ge(p.vcs) + 2.0 * v);
    // VA2: per output port, one arbiter per output VC over all P·V input
    // VCs — the super-linear term that makes control logic balloon with V.
    let va2 = ports * v * rr_arbiter_ge(pv);
    // SA2: per-output-port arbiters over input ports.
    let sa2 = ports * rr_arbiter_ge(p.ports);
    // VC state tables: state (2) + out_port (3) + out_vc bits + next-state
    // logic, per (port, vc). Status tables synthesize to compact
    // latch-based register files — roughly half the flip-flop cost.
    let vc_state =
        ports * v * ((2.0 + 3.0 + p.vc_bits() as f64) * tech::REG_GE_PER_BIT * 0.5 + 9.0);
    // Buffer pointers/flags per (port, vc).
    let buf_state = ports * v * (2.0 * p.depth_bits() as f64 * tech::REG_GE_PER_BIT * 0.5 + 8.0);
    // Credit counters per (output port, vc).
    let credits = ports * v * ((p.depth_bits() + 1) as f64 * tech::REG_GE_PER_BIT * 0.5 + 6.0);
    // Crossbar control (column registers).
    let xbar_ctl = ports * ports * tech::REG_GE_PER_BIT;
    let control_ge = rc + va1 + sa1 + va2 + sa2 + vc_state + buf_state + credits + xbar_ctl;

    let checkers_ge = checkers_area(p);

    // DMR: duplicate the control logic and compare every module output.
    let compared_bits = ports * (3.0 + v + v + ports + p.vc_bits() as f64 + 7.0 * v);
    let dmr_ge = control_ge + compared_bits * 1.2;

    AreaReport {
        buffers_ge,
        xbar_ge,
        control_ge,
        checkers_ge,
        dmr_ge,
    }
}

/// Synthesis-calibration factor applied to the structural checker-gate
/// estimates: logic sharing and Boolean optimization across the checker
/// array (all checkers of a module share input buffering and OR trees)
/// reduce the naive per-checker sums, exactly as Design Compiler would.
/// Chosen so the modelled overhead lands on the paper's ~3 % average.
pub const CHECKER_SYNTHESIS_FACTOR: f64 = 0.35;

/// Gate cost of each checker class for `p`, indexed 0..32 (Table-1 id − 1).
///
/// Derived from the checkers' boolean structure: e.g. the Figure-4 arbiter
/// checker costs two gates per request/grant pair plus an OR tree; all
/// entries carry the [`CHECKER_SYNTHESIS_FACTOR`].
pub fn checker_costs(p: &HwParams) -> [f64; 32] {
    let ports = p.ports as f64;
    let v = p.vcs as f64;
    let pv = (p.ports * p.vcs) as f64;
    let c = p.coord_bits as f64;
    let vb = p.vc_bits() as f64;

    // Arbiter-watching checkers (4/5/6) cost per arbiter of n requesters:
    let arb = |n: f64| 2.0 * n + 1.5; // grant-without-request (Fig. 4)
    let nobody = |n: f64| 1.2 * n + 2.0;
    let onehot = |n: f64| 3.0 * n;
    // Total arbiter population: VA1+SA1 (P × V-wide), SA2 (P × P-wide),
    // VA2 (P × V arbiters of P·V width).
    let n_small = 2.0 * ports; // VA1+SA1 instances
    let n_sa2 = ports;
    let n_va2 = ports * v;

    [
        /* 1 illegal turn       */ ports * 10.0,
        /* 2 invalid direction  */ ports * 6.0 + ports * v * 4.0,
        /* 3 non-minimal        */ ports * (4.0 * c + 8.0),
        /* 4 grant w/o request  */ n_small * arb(v) + n_sa2 * arb(ports) + n_va2 * arb(pv),
        /* 5 grant to nobody    */
        n_small * nobody(v) + n_sa2 * nobody(ports) + n_va2 * nobody(pv),
        /* 6 one-hot grant      */
        n_small * onehot(v) + n_sa2 * onehot(ports) + n_va2 * onehot(pv),
        /* 7 occupied/full VC   */ ports * (2.0 * v + 4.0) + ports * 2.0 * v,
        /* 8 1:1 VC assignment  */ 3.0 * ports * ports,
        /* 9 1:1 port assignment*/ 3.0 * ports * ports,
        /* 10 VA agrees with RC */ ports * comparator_ge(3),
        /* 11 SA agrees with RC */ ports * comparator_ge(3),
        /* 12 intra-VA order    */ ports * 4.0,
        /* 13 intra-SA order    */ ports * 4.0,
        /* 14 1-hot xbar column */ ports * onehot(ports),
        /* 15 1-hot xbar row    */ ports * onehot(ports),
        /* 16 flit conservation */ 2.0 * 3.0 * ports + comparator_ge(3),
        /* 17 pipeline order    */ ports * v * 8.0,
        /* 18 header into free  */ ports * v * 3.0,
        /* 19 invalid out VC    */ ports * v * (2.0 * vb + 4.0),
        /* 20 RC on non-header  */ ports * 3.0,
        /* 21 RC on empty       */ ports * 3.0,
        /* 22 VA on non-header  */ ports * v * 3.0,
        /* 23 VA on empty       */ ports * v * 3.0,
        /* 24 read empty        */ ports * v * 2.0,
        /* 25 write full        */ ports * v * 2.0,
        /* 26 atomicity         */ ports * v * 3.0,
        /* 27 non-atomic mixing */ ports * v * 3.0,
        /* 28 flit count        */ ports * v * (3.0 * tech::REG_GE_PER_BIT + 8.0),
        /* 29 concurrent reads  */ ports * onehot(v),
        /* 30 concurrent writes */ ports * onehot(v),
        /* 31 concurrent RC     */ ports * onehot(v),
        /* 32 end-to-end (NI)   */ 60.0,
    ]
    .map(|g| g * CHECKER_SYNTHESIS_FACTOR)
}

/// Total checker area for `p`.
pub fn checkers_area(p: &HwParams) -> f64 {
    checker_costs(p).iter().sum()
}

/// Power decomposition at 1 GHz / 1 V / 50 % switching activity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Baseline router power in mW.
    pub router_mw: f64,
    /// Checker power in mW.
    pub checkers_mw: f64,
}

impl PowerReport {
    /// NoCAlert power overhead in percent.
    pub fn nocalert_overhead_pct(&self) -> f64 {
        self.checkers_mw / self.router_mw * 100.0
    }
}

/// Computes the power report for `p`.
///
/// Registers carry the [`tech::REG_POWER_WEIGHT`] multiplier (clock tree
/// load); the checkers are almost purely combinational, which is why their
/// power share (0.3–1.2 % in the paper) sits well below their area share.
pub fn power(p: &HwParams) -> PowerReport {
    let a = area(p);
    // Fraction of the router GEs that are registers: buffers entirely,
    // control partially.
    let reg_ge = a.buffers_ge + 0.45 * a.control_ge + 0.1 * a.xbar_ge;
    let comb_ge = a.router_ge() - reg_ge;
    let router_uw = (reg_ge * tech::REG_POWER_WEIGHT + comb_ge) * tech::GE_DYN_UW;
    // Invariance 28's small counters are the only clocked checker bits.
    let checker_reg = 5.0 * p.vcs as f64 * 3.0 * tech::REG_GE_PER_BIT * CHECKER_SYNTHESIS_FACTOR;
    let checker_comb = a.checkers_ge - checker_reg;
    // Checker inputs toggle only when the watched module is active; model
    // a reduced effective activity.
    let checkers_uw =
        (checker_reg * tech::REG_POWER_WEIGHT + checker_comb) * tech::GE_DYN_UW * 0.35;
    PowerReport {
        router_mw: router_uw / 1000.0,
        checkers_mw: checkers_uw / 1000.0,
    }
}

/// Critical-path summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingReport {
    /// Baseline router critical path, ps.
    pub baseline_ps: f64,
    /// Critical path with the checkers' fan-out load, ps.
    pub with_checkers_ps: f64,
}

impl TimingReport {
    /// Critical-path penalty in percent.
    pub fn penalty_pct(&self) -> f64 {
        (self.with_checkers_ps - self.baseline_ps) / self.baseline_ps * 100.0
    }
}

/// Computes stage delays in FO4 and the checker fan-out penalty.
///
/// Checkers never sit *in* a path — they only load existing wires, adding
/// roughly a fifth of an FO4 of extra delay to the stage they watch.
pub fn timing(p: &HwParams) -> TimingReport {
    let log2 = |n: u32| (32 - (n.max(2) - 1).leading_zeros()) as f64;
    let stages_fo4 = [
        8.0 + p.coord_bits as f64,         // RC
        5.0 + 2.0 * log2(p.vcs),           // VA1
        5.0 + 2.0 * log2(p.ports * p.vcs), // VA2 (usually critical)
        5.0 + 2.0 * log2(p.vcs),           // SA1
        5.0 + 2.0 * log2(p.ports),         // SA2
        4.0 + log2(p.ports),               // XBAR
    ];
    let crit = stages_fo4.iter().cloned().fold(0.0, f64::max);
    TimingReport {
        baseline_ps: crit * tech::FO4_PS,
        with_checkers_ps: (crit + 0.2) * tech::FO4_PS,
    }
}

/// One row of Figure 10: overheads at a given VC count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig10Row {
    /// VCs per port.
    pub vcs: u32,
    /// NoCAlert area overhead (%).
    pub nocalert_area_pct: f64,
    /// DMR-CL area overhead (%).
    pub dmr_area_pct: f64,
    /// NoCAlert power overhead (%).
    pub nocalert_power_pct: f64,
    /// Critical-path penalty (%).
    pub critical_path_pct: f64,
}

/// Sweeps the Figure-10 VC range (2–8) at the baseline geometry.
pub fn figure10() -> Vec<Fig10Row> {
    (2..=8)
        .map(|vcs| {
            let p = HwParams::baseline_with_vcs(vcs);
            let a = area(&p);
            let pw = power(&p);
            let t = timing(&p);
            Fig10Row {
                vcs,
                nocalert_area_pct: a.nocalert_overhead_pct(),
                dmr_area_pct: a.dmr_overhead_pct(),
                nocalert_power_pct: pw.nocalert_overhead_pct(),
                critical_path_pct: t.penalty_pct(),
            }
        })
        .collect()
}

/// Per-checker vs. checked-module cost ratios — the paper's claim that
/// "checkers used to detect only illegal outputs have significantly lower
/// hardware cost … than the units they check".
pub fn checker_vs_module_ratio(p: &HwParams) -> f64 {
    let a = area(p);
    a.checkers_ge / a.control_ge
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure10_matches_paper_windows() {
        let rows = figure10();
        assert_eq!(rows.len(), 7);
        for r in &rows {
            assert!(
                r.nocalert_area_pct > 0.8 && r.nocalert_area_pct < 6.0,
                "NoCAlert area {}% at {} VCs",
                r.nocalert_area_pct,
                r.vcs
            );
            assert!(
                r.nocalert_power_pct > 0.05 && r.nocalert_power_pct < 1.5,
                "power {}% at {} VCs",
                r.nocalert_power_pct,
                r.vcs
            );
            assert!(
                r.critical_path_pct > 0.2 && r.critical_path_pct <= 3.0,
                "critical path {}%",
                r.critical_path_pct
            );
        }
        // DMR endpoints: ~5.4% at 2 VCs, ~31% at 8 VCs.
        let d2 = rows[0].dmr_area_pct;
        let d8 = rows[6].dmr_area_pct;
        assert!((4.0..8.0).contains(&d2), "DMR@2 = {d2}%");
        assert!((24.0..36.0).contains(&d8), "DMR@8 = {d8}%");
        // Average NoCAlert area ≈ 3%.
        let avg: f64 = rows.iter().map(|r| r.nocalert_area_pct).sum::<f64>() / rows.len() as f64;
        assert!((1.5..4.5).contains(&avg), "avg NoCAlert area {avg}%");
    }

    #[test]
    fn dmr_grows_much_faster_than_checkers() {
        let rows = figure10();
        let growth_dmr = rows[6].dmr_area_pct / rows[0].dmr_area_pct;
        let growth_alert = rows[6].nocalert_area_pct / rows[0].nocalert_area_pct;
        assert!(
            growth_dmr > 2.0 * growth_alert,
            "dmr x{growth_dmr:.1} vs alert x{growth_alert:.1}"
        );
    }

    #[test]
    fn checkers_are_much_cheaper_than_control() {
        for vcs in [2, 4, 8] {
            let p = HwParams::baseline_with_vcs(vcs);
            let ratio = checker_vs_module_ratio(&p);
            assert!(ratio < 0.6, "ratio {ratio} at {vcs} VCs");
        }
    }

    #[test]
    fn checker_power_share_below_area_share() {
        for vcs in [2, 4, 8] {
            let p = HwParams::baseline_with_vcs(vcs);
            let a = area(&p);
            let pw = power(&p);
            assert!(pw.nocalert_overhead_pct() < a.nocalert_overhead_pct());
        }
    }

    #[test]
    fn area_monotone_in_every_knob() {
        let base = HwParams::baseline_with_vcs(4);
        let a0 = area(&base).router_ge();
        for delta in [
            HwParams { vcs: 8, ..base },
            HwParams { depth: 8, ..base },
            HwParams { width: 256, ..base },
            HwParams {
                coord_bits: 5,
                ..base
            },
        ] {
            assert!(area(&delta).router_ge() > a0, "{delta:?}");
        }
    }

    #[test]
    fn checker_costs_are_positive_and_linearish() {
        let p2 = HwParams::baseline_with_vcs(2);
        let p8 = HwParams::baseline_with_vcs(8);
        let c2 = checker_costs(&p2);
        let c8 = checker_costs(&p8);
        for i in 0..32 {
            assert!(c2[i] > 0.0 && c8[i] >= c2[i], "checker {}", i + 1);
        }
        // Figure-4 structure: per instance, the arbiter checker grows
        // linearly while the arbiter itself grows quadratically.
        let per_arb_checker_growth = (2.0 * 40.0 + 1.5) / (2.0 * 10.0 + 1.5);
        let per_arb_growth = rr_arbiter_ge(40) / rr_arbiter_ge(10);
        assert!(per_arb_checker_growth < 0.5 * per_arb_growth);
        let _ = (c2, c8);
    }

    #[test]
    fn baseline_router_area_is_plausible() {
        // ~0.1–0.5 mm² for a 128-bit 4-VC router at 65 nm.
        let a = area(&HwParams::baseline_with_vcs(4));
        let mm2 = AreaReport::ge_to_um2(a.router_ge()) / 1e6;
        assert!((0.05..0.8).contains(&mm2), "router {mm2} mm²");
    }

    #[test]
    fn config_roundtrip() {
        let cfg = NocConfig::paper_baseline();
        let p = HwParams::from_config(&cfg);
        assert_eq!(p.vcs, 4);
        assert_eq!(p.width, 128);
        assert_eq!(p.coord_bits, 3);
    }

    #[test]
    fn timing_penalty_shrinks_with_deeper_logic() {
        let t2 = timing(&HwParams::baseline_with_vcs(2));
        let t8 = timing(&HwParams::baseline_with_vcs(8));
        assert!(t8.baseline_ps > t2.baseline_ps);
        assert!(t8.penalty_pct() < t2.penalty_pct());
    }
}
