//! Network interfaces: packet sources (injection) and sinks (ejection).
//!
//! The NI plays the upstream-router role for its router's **local input
//! port** (it allocates local input VCs and respects their credits) and the
//! downstream-router role for the **local output port** (it buffers ejected
//! flits per VC, drains them at `ejection_rate`, and returns credits).
//!
//! Traffic generation draws from a per-node deterministic RNG **every
//! cycle, regardless of backpressure**, so the generated stream is
//! identical between a golden and a faulty run (see `traffic`).

use crate::router::{CreditMsg, LinkFlit};
use noc_types::config::{BufferPolicy, NocConfig};
use noc_types::flit::{make_packet, Flit, PacketId};
use noc_types::geometry::NodeId;
use noc_types::record::EjectEvent;
use noc_types::Cycle;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use std::collections::VecDeque;

/// One node's network interface.
#[derive(Debug)]
pub struct Nic {
    node: NodeId,
    rng: SmallRng,
    class_rr: u8,
    /// Flits generated but not yet injected, in packet order.
    source: VecDeque<Flit>,
    /// Local-input VC of the worm currently being injected.
    alloc: Option<u8>,
    /// NI-side bookkeeping of the router's local input VCs.
    ni_free: Vec<bool>,
    ni_credits: Vec<u8>,
    /// Local input VCs quarantined by the recovery controller; never
    /// allocated for injection again.
    ni_disabled: Vec<bool>,
    /// Per-VC ejection buffers (filled by the router's local output port).
    eject: Vec<VecDeque<Flit>>,
    eject_next: u8,
    /// Generation gate set by the fault-region map: a node absorbed into
    /// a region stops offering traffic (its router is out of service).
    /// The RNG keeps advancing, so the stream suffix stays aligned.
    gen_enabled: bool,
    /// Destinations currently unreachable from this node per the
    /// fault-region map (absorbed or partitioned off); a drawn packet to
    /// one is skipped instead of offered, again without touching the RNG
    /// stream. Empty while the map is disengaged.
    blocked_dests: Vec<bool>,
    /// Flits handed to the router so far.
    pub injected: u64,
    /// Flits delivered to this NI so far.
    pub ejected: u64,
}

// Manual impl so `clone_from` (the arena reset path) reuses the source and
// ejection queues plus the per-VC bookkeeping vectors.
impl Clone for Nic {
    fn clone(&self) -> Nic {
        Nic {
            node: self.node,
            rng: self.rng.clone(),
            class_rr: self.class_rr,
            source: self.source.clone(),
            alloc: self.alloc,
            ni_free: self.ni_free.clone(),
            ni_credits: self.ni_credits.clone(),
            ni_disabled: self.ni_disabled.clone(),
            eject: self.eject.clone(),
            eject_next: self.eject_next,
            gen_enabled: self.gen_enabled,
            blocked_dests: self.blocked_dests.clone(),
            injected: self.injected,
            ejected: self.ejected,
        }
    }

    fn clone_from(&mut self, src: &Nic) {
        self.node = src.node;
        self.rng = src.rng.clone();
        self.class_rr = src.class_rr;
        self.source.clone_from(&src.source);
        self.alloc = src.alloc;
        self.ni_free.clone_from(&src.ni_free);
        self.ni_credits.clone_from(&src.ni_credits);
        self.ni_disabled.clone_from(&src.ni_disabled);
        self.eject.clone_from(&src.eject);
        self.eject_next = src.eject_next;
        self.gen_enabled = src.gen_enabled;
        self.blocked_dests.clone_from(&src.blocked_dests);
        self.injected = src.injected;
        self.ejected = src.ejected;
    }
}

impl Nic {
    /// Creates the NI for `node`, deriving its RNG stream from the global
    /// seed.
    pub fn new(cfg: &NocConfig, node: NodeId) -> Nic {
        let v = cfg.vcs_per_port as usize;
        Nic {
            node,
            rng: SmallRng::seed_from_u64(
                cfg.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(node.0 as u64 + 1)),
            ),
            class_rr: 0,
            source: VecDeque::new(),
            alloc: None,
            ni_free: vec![true; v],
            ni_credits: vec![cfg.buffer_depth; v],
            ni_disabled: vec![false; v],
            eject: vec![VecDeque::new(); v],
            eject_next: 0,
            gen_enabled: true,
            blocked_dests: Vec::new(),
            injected: 0,
            ejected: 0,
        }
    }

    /// Fault-region gating: disables/enables generation wholesale and
    /// replaces the blocked-destination filter (see the field docs). The
    /// network resyncs this after every region-map rebuild.
    pub(crate) fn set_region_gate(&mut self, enabled: bool, blocked: impl Iterator<Item = bool>) {
        self.gen_enabled = enabled;
        self.blocked_dests.clear();
        self.blocked_dests.extend(blocked);
    }

    /// The node this NI serves.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Structural equality, ignoring the RNG.
    ///
    /// The RNG stream advances unconditionally every cycle (the Bernoulli
    /// draw in [`Nic::generate`] fires regardless of gating, and the
    /// destination draw depends only on the stream itself), so two NICs
    /// that have stepped the same number of cycles from the same seed hold
    /// identical RNG states by construction — comparing the remaining
    /// fields decides whether their observable futures coincide.
    pub fn state_eq(&self, other: &Nic) -> bool {
        self.node == other.node
            && self.class_rr == other.class_rr
            && self.source == other.source
            && self.alloc == other.alloc
            && self.ni_free == other.ni_free
            && self.ni_credits == other.ni_credits
            && self.ni_disabled == other.ni_disabled
            && self.eject == other.eject
            && self.eject_next == other.eject_next
            && self.gen_enabled == other.gen_enabled
            && self.blocked_dests == other.blocked_dests
            && self.injected == other.injected
            && self.ejected == other.ejected
    }

    /// True when this NI holds no pending work at all: nothing queued for
    /// injection, no worm mid-injection, no flits awaiting ejection, and
    /// all local-input VCs returned to their idle credit level. A
    /// quiescent NI performs no externally visible action when stepped
    /// with injection disabled (only its RNG advances).
    pub fn is_quiescent(&self, cfg: &NocConfig) -> bool {
        self.source.is_empty()
            && self.alloc.is_none()
            && self.eject.iter().all(VecDeque::is_empty)
            && self
                .ni_free
                .iter()
                .zip(self.ni_disabled.iter())
                .all(|(&f, &d)| f || d)
            && self
                .ni_credits
                .iter()
                .zip(self.ni_disabled.iter())
                .all(|(&c, &d)| d || c == cfg.buffer_depth)
    }

    /// Flits waiting in the source queue.
    pub fn source_backlog(&self) -> usize {
        self.source.len()
    }

    /// Flits waiting in ejection buffers.
    pub fn eject_backlog(&self) -> usize {
        self.eject.iter().map(VecDeque::len).sum()
    }

    /// Draws this cycle's traffic. When the Bernoulli draw fires and
    /// generation is enabled, a new packet is appended to the source queue.
    ///
    /// The RNG is advanced even when `enabled` is false so that enabling or
    /// disabling generation never desynchronizes the stream suffix.
    pub fn generate(
        &mut self,
        cfg: &NocConfig,
        cycle: Cycle,
        next_packet: &mut u64,
        next_uid: &mut u64,
        enabled: bool,
    ) {
        let mean_len = cfg.packet_lengths.iter().map(|&l| l as f64).sum::<f64>()
            / cfg.packet_lengths.len() as f64;
        let p = (cfg.injection_rate / mean_len).min(1.0);
        let fire = self.rng.gen::<f64>() < p;
        if !fire {
            return;
        }
        let class = self.class_rr % cfg.message_classes;
        self.class_rr = self.class_rr.wrapping_add(1);
        let dest = crate::traffic::pick_destination(
            cfg.traffic,
            cfg.mesh,
            self.node,
            cfg.hotspot_fraction,
            &mut self.rng,
        );
        if !enabled || !self.gen_enabled {
            return;
        }
        let Some(dest) = dest else { return };
        if self
            .blocked_dests
            .get(dest.index())
            .copied()
            .unwrap_or(false)
        {
            return;
        }
        let len = cfg.packet_len(class);
        let pkt = PacketId(*next_packet);
        *next_packet += 1;
        let flits = make_packet(pkt, *next_uid, self.node, dest, class, len, cycle);
        *next_uid += len as u64;
        self.source.extend(flits);
    }

    /// Tries to hand one flit to the router's local input port this cycle.
    pub fn inject(&mut self, cfg: &NocConfig) -> Option<LinkFlit> {
        let vc = match self.alloc {
            Some(vc) => vc,
            None => {
                let head = self.source.front()?;
                // Under correct operation the queue front between worms is a
                // header; pick the lowest free VC of its class.
                let (lo, hi) = cfg.vc_range_of_class(head.class.min(cfg.message_classes - 1));
                let vc = (lo..hi)
                    .find(|&v| self.ni_free[v as usize] && !self.ni_disabled[v as usize])?;
                self.ni_free[vc as usize] = false;
                self.alloc = Some(vc);
                vc
            }
        };
        if self.ni_credits[vc as usize] == 0 {
            return None;
        }
        let flit = self.source.pop_front()?;
        self.ni_credits[vc as usize] -= 1;
        if flit.is_tail() {
            self.alloc = None;
            if cfg.buffer_policy == BufferPolicy::NonAtomic {
                self.ni_free[vc as usize] = true;
            }
        }
        self.injected += 1;
        Some(LinkFlit { flit, vc })
    }

    /// Applies a credit returned by the router's local input port.
    pub fn credit_return(&mut self, cfg: &NocConfig, vc: u8, tail: bool) {
        if let Some(c) = self.ni_credits.get_mut(vc as usize) {
            *c = (*c + 1).min(cfg.buffer_depth);
        }
        if tail && cfg.buffer_policy == BufferPolicy::Atomic {
            if let Some(f) = self.ni_free.get_mut(vc as usize) {
                *f = !self.ni_disabled[vc as usize];
            }
        }
    }

    /// Appends a ready-made packet (every flit, head to tail) to the source
    /// queue. The end-to-end transport uses this for acknowledgements and
    /// retransmissions; ordinary traffic keeps flowing through
    /// [`Nic::generate`] so the seeded stream is untouched.
    pub fn enqueue(&mut self, flits: Vec<Flit>) {
        self.source.extend(flits);
    }

    /// Recovery-controller teardown of this NI's sender side for local
    /// input VC `vc`: aborts the worm currently being injected on it (the
    /// rest of that packet is dropped from the source front) and restores
    /// the NI-side credit/allocation bookkeeping to reset values. Returns
    /// how many queued flits were dropped.
    pub fn abort_worm(&mut self, cfg: &NocConfig, vc: u8) -> usize {
        let v = vc as usize;
        if v >= self.ni_free.len() {
            return 0;
        }
        let mut dropped = 0;
        if self.alloc == Some(vc) {
            // The in-flight packet's head is already gone; its remaining
            // flits sit at the queue front up to (not including) the next
            // packet's header.
            while self.source.front().is_some_and(|f| f.seq != 0) {
                self.source.pop_front();
                dropped += 1;
            }
            self.alloc = None;
        }
        self.ni_credits[v] = cfg.buffer_depth;
        self.ni_free[v] = !self.ni_disabled[v];
        dropped
    }

    /// Quarantines local input VC `vc`: no future worm is injected on it.
    pub fn disable_vc(&mut self, vc: u8) {
        if let Some(d) = self.ni_disabled.get_mut(vc as usize) {
            *d = true;
            self.ni_free[vc as usize] = false;
        }
    }

    /// Accepts a flit from the router's local output port. Raw VC values
    /// beyond the physical range select no buffer: the flit vanishes, as it
    /// would at a demux with an illegal select.
    pub fn eject_push(&mut self, vc: u8, flit: Flit) {
        if let Some(q) = self.eject.get_mut(vc as usize) {
            q.push_back(flit);
        }
    }

    /// Drains up to `ejection_rate` flits round-robin across the ejection
    /// VCs, appending the ejected flits and the credits to hand back to
    /// the router's local *output* port onto the caller's (reused)
    /// buffers.
    pub fn eject_step(
        &mut self,
        cfg: &NocConfig,
        cycle: Cycle,
        events: &mut Vec<EjectEvent>,
        credits: &mut Vec<CreditMsg>,
    ) {
        let v = cfg.vcs_per_port;
        for _ in 0..cfg.ejection_rate {
            // Round-robin scan for a non-empty ejection VC.
            let mut found = None;
            for off in 0..v {
                let idx = (self.eject_next + off) % v;
                if !self.eject[idx as usize].is_empty() {
                    found = Some(idx);
                    break;
                }
            }
            let Some(idx) = found else { break };
            self.eject_next = (idx + 1) % v;
            let flit = self.eject[idx as usize]
                .pop_front()
                .expect("round-robin scan selected a non-empty eject VC");
            self.ejected += 1;
            credits.push(CreditMsg {
                port: noc_types::geometry::Direction::Local.index() as u8,
                vc: idx,
                tail: flit.is_tail(),
            });
            events.push(EjectEvent {
                node: self.node,
                cycle,
                flit,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NocConfig {
        NocConfig::small_test()
    }

    #[test]
    fn generation_is_deterministic_and_respects_enable() {
        let cfg = cfg();
        let mut a = Nic::new(&cfg, NodeId(3));
        let mut b = Nic::new(&cfg, NodeId(3));
        let (mut pa, mut ua, mut pb, mut ub) = (0, 0, 0, 0);
        for cy in 0..500 {
            a.generate(&cfg, cy, &mut pa, &mut ua, true);
            b.generate(&cfg, cy, &mut pb, &mut ub, true);
        }
        assert_eq!(a.source_backlog(), b.source_backlog());
        assert!(a.source_backlog() > 0, "some packets generated");
        let qa: Vec<_> = a.source.iter().map(|f| (f.uid, f.dest)).collect();
        let qb: Vec<_> = b.source.iter().map(|f| (f.uid, f.dest)).collect();
        assert_eq!(qa, qb);
    }

    #[test]
    fn disabled_generation_keeps_rng_in_sync() {
        let cfg = cfg();
        let mut a = Nic::new(&cfg, NodeId(3));
        let mut b = Nic::new(&cfg, NodeId(3));
        let (mut pa, mut ua, mut pb, mut ub) = (0, 0, 0, 0);
        for cy in 0..100 {
            a.generate(&cfg, cy, &mut pa, &mut ua, true);
            b.generate(&cfg, cy, &mut pb, &mut ub, cy >= 50);
        }
        // After cycle 50 both draw identically; b simply missed earlier
        // packets. Compare future draws by running both enabled.
        let before_a = a.source_backlog();
        let before_b = b.source_backlog();
        for cy in 100..300 {
            a.generate(&cfg, cy, &mut pa, &mut ua, true);
            b.generate(&cfg, cy, &mut pb, &mut ub, true);
        }
        assert_eq!(
            a.source_backlog() - before_a,
            b.source_backlog() - before_b,
            "suffix streams identical"
        );
    }

    #[test]
    fn injection_respects_credits_and_wormhole() {
        let cfg = cfg();
        let mut nic = Nic::new(&cfg, NodeId(0));
        let (mut p, mut u) = (0, 0);
        // Force one packet.
        let mut tries = 0;
        while nic.source_backlog() == 0 {
            nic.generate(&cfg, tries, &mut p, &mut u, true);
            tries += 1;
            assert!(tries < 100_000, "generation never fired");
        }
        let len = nic.source_backlog().min(cfg.buffer_depth as usize);
        let mut sent = Vec::new();
        for _ in 0..len {
            let lf = nic.inject(&cfg).expect("credit available");
            sent.push(lf);
        }
        // All flits of one packet go to the same VC, depth-limited.
        assert!(sent.len() <= cfg.buffer_depth as usize);
        assert!(sent.windows(2).all(|w| w[0].vc == w[1].vc));
        assert_eq!(sent[0].flit.seq, 0);
        // Credits exhausted after depth sends (packet len == depth == 5).
        assert!(nic.inject(&cfg).is_none());
        // Returning credits allows more.
        nic.credit_return(&cfg, sent[0].vc, false);
        assert_eq!(nic.ni_credits[sent[0].vc as usize], 1);
    }

    #[test]
    fn atomic_vc_frees_only_on_tail_credit() {
        let cfg = cfg();
        let mut nic = Nic::new(&cfg, NodeId(0));
        let (mut p, mut u) = (0, 0);
        let mut cy = 0;
        while nic.source_backlog() == 0 {
            nic.generate(&cfg, cy, &mut p, &mut u, true);
            cy += 1;
        }
        let first = nic.inject(&cfg).unwrap();
        let vc = first.vc;
        assert!(!nic.ni_free[vc as usize]);
        // Non-tail credit: still allocated.
        nic.credit_return(&cfg, vc, false);
        assert!(!nic.ni_free[vc as usize]);
        nic.credit_return(&cfg, vc, true);
        assert!(nic.ni_free[vc as usize]);
    }

    #[test]
    fn ejection_round_robin_and_credits() {
        let cfg = cfg();
        let mut nic = Nic::new(&cfg, NodeId(1));
        let flits = make_packet(PacketId(9), 0, NodeId(0), NodeId(1), 0, 3, 0);
        nic.eject_push(0, flits[0]);
        nic.eject_push(1, flits[1]);
        nic.eject_push(0, flits[2]);
        // rate = 1: one flit per step, alternating VCs.
        let step = |nic: &mut Nic, cy: Cycle| {
            let mut events = Vec::new();
            let mut credits = Vec::new();
            nic.eject_step(&cfg, cy, &mut events, &mut credits);
            (events, credits)
        };
        let (e1, c1) = step(&mut nic, 10);
        assert_eq!(e1.len(), 1);
        assert_eq!(c1.len(), 1);
        assert_eq!(c1[0].vc, 0);
        let (e2, c2) = step(&mut nic, 11);
        assert_eq!(c2[0].vc, 1);
        let (e3, _c3) = step(&mut nic, 12);
        assert_eq!(e3[0].flit.uid, flits[2].uid);
        assert_eq!(nic.ejected, 3);
        let (e4, c4) = step(&mut nic, 13);
        assert!(e4.is_empty() && c4.is_empty());
        let _ = (e1, e2);
    }

    #[test]
    fn enqueue_injects_like_generated_traffic() {
        let cfg = cfg();
        let mut nic = Nic::new(&cfg, NodeId(0));
        let flits = make_packet(PacketId(77), 500, NodeId(0), NodeId(3), 0, 5, 0);
        nic.enqueue(flits.clone());
        assert_eq!(nic.source_backlog(), 5);
        let lf = nic.inject(&cfg).expect("free VC with credits");
        assert_eq!(lf.flit.uid, flits[0].uid);
    }

    #[test]
    fn abort_worm_drops_packet_remainder_and_resets_bookkeeping() {
        let cfg = cfg();
        let mut nic = Nic::new(&cfg, NodeId(0));
        nic.enqueue(make_packet(PacketId(1), 0, NodeId(0), NodeId(3), 0, 5, 0));
        nic.enqueue(make_packet(PacketId(2), 100, NodeId(0), NodeId(3), 0, 5, 0));
        let first = nic.inject(&cfg).unwrap();
        let vc = first.vc;
        nic.inject(&cfg).unwrap();
        // Two flits of packet 1 are out; abort the worm.
        let dropped = nic.abort_worm(&cfg, vc);
        assert_eq!(dropped, 3, "rest of packet 1 destroyed");
        assert!(nic.ni_free[vc as usize]);
        assert_eq!(nic.ni_credits[vc as usize], cfg.buffer_depth);
        // Next injection starts cleanly at packet 2's header.
        let next = nic.inject(&cfg).unwrap();
        assert_eq!(next.flit.packet, PacketId(2));
        assert_eq!(next.flit.seq, 0);
    }

    #[test]
    fn disabled_local_vc_is_never_allocated() {
        let cfg = cfg();
        let mut nic = Nic::new(&cfg, NodeId(0));
        let (lo, hi) = cfg.vc_range_of_class(0);
        for v in lo..hi {
            nic.disable_vc(v);
        }
        nic.enqueue(make_packet(PacketId(1), 0, NodeId(0), NodeId(3), 0, 5, 0));
        assert!(nic.inject(&cfg).is_none(), "class fully quarantined");
        // Another class is unaffected.
        let (lo2, _) = cfg.vc_range_of_class(1);
        nic.enqueue(make_packet(PacketId(2), 100, NodeId(0), NodeId(3), 1, 5, 0));
        // Packet 1 blocks the queue front; abort nothing — queue order means
        // class-1 packet waits behind it. Drop packet 1 by hand.
        for _ in 0..5 {
            nic.source.pop_front();
        }
        let lf = nic.inject(&cfg).expect("other class still injectable");
        assert!(lf.vc >= lo2);
    }

    #[test]
    fn out_of_range_eject_vc_drops_flit() {
        let cfg = cfg();
        let mut nic = Nic::new(&cfg, NodeId(1));
        let flits = make_packet(PacketId(9), 0, NodeId(0), NodeId(1), 0, 1, 0);
        nic.eject_push(200, flits[0]);
        assert_eq!(nic.eject_backlog(), 0);
    }
}
