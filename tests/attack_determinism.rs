//! End-to-end determinism tests of the attack campaign: aggregates must
//! be byte-identical across worker counts, and an interrupted + resumed
//! sweep must reproduce an uninterrupted run exactly. This is the
//! adversarial counterpart of `campaign_resilience.rs`: the attacker's
//! victim selection runs from a private per-cell RNG, so neither thread
//! scheduling nor journal shard layout may leak into the matrix.

use fault::Watchdog;
use golden::{
    standard_cells, AttackCampaign, AttackCampaignConfig, AttackCampaignOptions, AttackCell,
    RecoveryOptions,
};
use noc_types::NocConfig;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

fn small_config() -> AttackCampaignConfig {
    let mut noc = NocConfig::small_test();
    noc.injection_rate = 0.05;
    AttackCampaignConfig {
        noc,
        opts: RecoveryOptions {
            warmup: 200,
            active_window: 1_000,
            watchdog: Watchdog {
                cycle_budget: 15_000,
                stall_window: 1_000,
            },
            ..RecoveryOptions::paper_defaults()
        },
    }
}

/// Every attacker model at two routers — small enough to run four times
/// in one test binary, wide enough to cover every intent path.
fn cells(cc: &AttackCampaignConfig) -> Vec<AttackCell> {
    standard_cells(&cc.noc, &[5, 10], 2, 300, 1)
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("nocalert-attack-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn attack_matrix_is_bit_identical_across_worker_counts() {
    let cc = small_config();
    let campaign = AttackCampaign::try_new(cc.clone()).unwrap();
    let cells = cells(&cc);
    let d1 = tmpdir("w1");
    let d4 = tmpdir("w4");
    let run = |threads: usize, dir: &PathBuf| {
        campaign
            .run_cells(
                &cells,
                threads,
                &AttackCampaignOptions {
                    checkpoint_dir: Some(dir.clone()),
                    ..AttackCampaignOptions::default()
                },
            )
            .unwrap()
    };
    let one = run(1, &d1);
    let four = run(4, &d4);
    assert_eq!(one, four, "worker count leaked into the matrix");
    assert_eq!(one.reports.len(), cells.len());
    assert!(!one.interrupted);

    // A full re-read of each journal reproduces the aggregates: the
    // JSONL round-trip is lossless regardless of shard layout.
    for dir in [&d1, &d4] {
        let reread = campaign
            .run_cells(
                &cells,
                2,
                &AttackCampaignOptions {
                    checkpoint_dir: Some(dir.clone()),
                    resume: true,
                    ..AttackCampaignOptions::default()
                },
            )
            .unwrap();
        assert_eq!(reread.resumed, cells.len(), "nothing left to run");
        assert_eq!(reread.reports, one.reports);
    }
    std::fs::remove_dir_all(&d1).unwrap();
    std::fs::remove_dir_all(&d4).unwrap();
}

#[test]
fn interrupted_attack_sweep_resumes_to_the_uninterrupted_aggregates() {
    let cc = small_config();
    let campaign = AttackCampaign::try_new(cc.clone()).unwrap();
    let cells = cells(&cc);
    let dir = tmpdir("resume");

    // Reference: uninterrupted, no journalling.
    let reference = campaign
        .run_cells(&cells, 1, &AttackCampaignOptions::default())
        .unwrap();
    assert!(!reference.interrupted);

    // Interrupted first attempt: the cancel flag trips after the first
    // journal append (simulating a mid-sweep kill; the per-line flush
    // makes everything already appended durable).
    let flag = Arc::new(AtomicBool::new(false));
    let watcher = Arc::clone(&flag);
    let probe = dir.join("shard-w0.jsonl");
    let poller = std::thread::spawn(move || loop {
        if probe.exists() {
            watcher.store(true, std::sync::atomic::Ordering::SeqCst);
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    });
    let first = campaign
        .run_cells(
            &cells,
            1,
            &AttackCampaignOptions {
                checkpoint_dir: Some(dir.clone()),
                cancel: Some(flag),
                resume: false,
            },
        )
        .unwrap();
    poller.join().unwrap();
    assert!(first.interrupted, "cancellation must interrupt the sweep");
    assert!(
        first.reports.len() < cells.len(),
        "some cells must remain for the resumed run"
    );

    // Resume with a different worker count: exact same aggregates.
    let resumed = campaign
        .run_cells(
            &cells,
            3,
            &AttackCampaignOptions {
                checkpoint_dir: Some(dir.clone()),
                resume: true,
                cancel: None,
            },
        )
        .unwrap();
    assert!(!resumed.interrupted);
    assert!(resumed.resumed >= 1);
    assert_eq!(resumed.reports, reference.reports);
    assert_eq!(resumed.matrix(), reference.matrix());

    std::fs::remove_dir_all(&dir).unwrap();
}
