//! Static/dynamic cross-check: the `noc-lint` coverage analysis predicts,
//! purely from the declared `observes`/`constrains` metadata and the
//! signal graph, which fault sites the checker array can observe. This
//! test runs a real golden-reference fault-injection campaign on a small
//! mesh and verifies the dynamic results are a *subset* of the static
//! prediction:
//!
//! * every site where any detector raised an alarm must be statically
//!   covered (a dynamic detection at a statically-blind site would mean
//!   the static model under-approximates the deployed checkers);
//! * every checker that fired is one the static model knows (non-empty
//!   declared sets), so no detection is attributed to unmodelled logic.

use analysis::{analyze, site_covered, CheckerModel};
use nocalert_repro::prelude::*;

#[test]
fn dynamic_detections_are_statically_predicted_covered() {
    let mut cfg = NocConfig::small_test();
    cfg.injection_rate = 0.15;
    let cc = CampaignConfig {
        noc: cfg.clone(),
        warmup: 400,
        active_window: 400,
        drain_deadline: 6_000,
        forever_epoch: 400,
    };
    let campaign = Campaign::new(cc);
    let universe = enumerate_sites(&cfg);
    let sites = fault::sample::stride(&universe, 160);
    let model = CheckerModel::from_table1();

    let results = campaign.run_many(&sites, 4);
    assert_eq!(results.len(), sites.len());

    let mut detections = 0;
    for r in &results {
        if !r.nocalert.detected {
            continue;
        }
        detections += 1;
        assert!(
            site_covered(&cfg, &model, r.site),
            "dynamic detection at statically-uncovered site {} — the static \
             coverage model under-approximates the deployed checkers",
            r.site
        );
        for &c in &r.checkers {
            assert!(
                !nocalert::TABLE1[c.index()].observes.is_empty(),
                "checker {c} fired dynamically but declares no observed \
                 signals in the static model"
            );
        }
    }
    // The sweep must actually exercise the property: a campaign where
    // nothing is detected would make the subset check vacuous.
    assert!(
        detections >= 20,
        "only {detections} detections in {} runs — sweep too weak to \
         validate the static model",
        results.len()
    );
}

#[test]
fn static_model_is_clean_on_the_campaign_config() {
    // The subset check above is only meaningful if the static side also
    // claims full coverage for the very config the campaign ran.
    let cfg = NocConfig::small_test();
    let a = analyze(&cfg, &CheckerModel::from_table1());
    assert!(a.clean(), "{:#?}", a.diagnostics);
    assert_eq!(a.stats.uncovered_sites, 0);
}
