//! Synthetic traffic patterns (Section 5.1: "synthetic traffic patterns …
//! suffice to accurately capture the salient characteristics").
//!
//! Destination selection is a pure function of `(pattern, mesh, source,
//! rng)`; because every node draws from its own deterministic RNG stream
//! every cycle regardless of network state, the *generated packet stream*
//! of a faulty run is bit-identical to its golden reference — only delivery
//! timing may differ.

use noc_types::config::TrafficPattern;
use noc_types::geometry::{Coord, Mesh, NodeId};
use rand::Rng;

/// Picks the destination for a new packet from `src`, or `None` when the
/// pattern gives this source no partner (e.g. the transpose diagonal).
pub fn pick_destination<R: Rng>(
    pattern: TrafficPattern,
    mesh: Mesh,
    src: NodeId,
    hotspot_fraction: f64,
    rng: &mut R,
) -> Option<NodeId> {
    let c = mesh.coord(src);
    let (w, h) = (mesh.width(), mesh.height());
    let dest = match pattern {
        TrafficPattern::UniformRandom => {
            let mut d = src;
            // Mesh has ≥1 node; with 1 node there is no partner.
            if mesh.len() == 1 {
                return None;
            }
            while d == src {
                d = NodeId(rng.gen_range(0..mesh.len() as u16));
            }
            d
        }
        TrafficPattern::Transpose => {
            let t = Coord::new(c.y.min(w - 1), c.x.min(h - 1));
            mesh.node(t)
        }
        TrafficPattern::BitComplement => mesh.node(Coord::new(w - 1 - c.x, h - 1 - c.y)),
        TrafficPattern::Tornado => mesh.node(Coord::new((c.x + w / 2) % w, c.y)),
        TrafficPattern::Hotspot => {
            let hotspot = mesh.node(Coord::new(w / 2, h / 2));
            if rng.gen::<f64>() < hotspot_fraction && hotspot != src {
                hotspot
            } else {
                let mut d = src;
                if mesh.len() == 1 {
                    return None;
                }
                while d == src {
                    d = NodeId(rng.gen_range(0..mesh.len() as u16));
                }
                d
            }
        }
        TrafficPattern::Neighbor => mesh.node(Coord::new((c.x + 1) % w, c.y)),
    };
    (dest != src).then_some(dest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn uniform_never_self() {
        let mesh = Mesh::new(4, 4);
        let mut r = rng();
        for n in mesh.nodes() {
            for _ in 0..20 {
                let d =
                    pick_destination(TrafficPattern::UniformRandom, mesh, n, 0.0, &mut r).unwrap();
                assert_ne!(d, n);
            }
        }
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let mesh = Mesh::new(4, 4);
        let mut r = rng();
        let src = mesh.node(Coord::new(1, 3));
        let d = pick_destination(TrafficPattern::Transpose, mesh, src, 0.0, &mut r).unwrap();
        assert_eq!(mesh.coord(d), Coord::new(3, 1));
        // Diagonal nodes have no partner.
        let diag = mesh.node(Coord::new(2, 2));
        assert_eq!(
            pick_destination(TrafficPattern::Transpose, mesh, diag, 0.0, &mut r),
            None
        );
    }

    #[test]
    fn bit_complement_mirrors() {
        let mesh = Mesh::new(8, 8);
        let mut r = rng();
        let src = mesh.node(Coord::new(0, 0));
        let d = pick_destination(TrafficPattern::BitComplement, mesh, src, 0.0, &mut r).unwrap();
        assert_eq!(mesh.coord(d), Coord::new(7, 7));
    }

    #[test]
    fn tornado_shifts_half_width() {
        let mesh = Mesh::new(8, 8);
        let mut r = rng();
        let src = mesh.node(Coord::new(2, 5));
        let d = pick_destination(TrafficPattern::Tornado, mesh, src, 0.0, &mut r).unwrap();
        assert_eq!(mesh.coord(d), Coord::new(6, 5));
    }

    #[test]
    fn neighbor_wraps_east() {
        let mesh = Mesh::new(4, 4);
        let mut r = rng();
        let src = mesh.node(Coord::new(3, 1));
        let d = pick_destination(TrafficPattern::Neighbor, mesh, src, 0.0, &mut r).unwrap();
        assert_eq!(mesh.coord(d), Coord::new(0, 1));
    }

    #[test]
    fn hotspot_targets_center_often() {
        let mesh = Mesh::new(8, 8);
        let mut r = rng();
        let src = mesh.node(Coord::new(0, 0));
        let hotspot = mesh.node(Coord::new(4, 4));
        let mut hits = 0;
        for _ in 0..1000 {
            if pick_destination(TrafficPattern::Hotspot, mesh, src, 0.5, &mut r) == Some(hotspot) {
                hits += 1;
            }
        }
        // ~50% + uniform residue; loose bound.
        assert!(hits > 350, "hotspot hits {hits}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mesh = Mesh::new(8, 8);
        let src = NodeId(5);
        let mut a = rng();
        let mut b = rng();
        for _ in 0..100 {
            assert_eq!(
                pick_destination(TrafficPattern::UniformRandom, mesh, src, 0.0, &mut a),
                pick_destination(TrafficPattern::UniformRandom, mesh, src, 0.0, &mut b)
            );
        }
    }
}
