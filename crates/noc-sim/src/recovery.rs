//! Alert-driven fault containment (DESIGN.md §11).
//!
//! NoCAlert itself is purely observational: the paper defers what happens
//! *after* a checker fires to "an accompanying recovery mechanism". This
//! module is that mechanism's control side. Each router owns a
//! [`RecoveryController`] that consumes alert notifications (router, port,
//! VC, and whether the module's port address is an output port) and decides
//! an escalating containment response per suspect input VC:
//!
//! 1. **Squash** — first alert at a site: the suspect in-flight flit at the
//!    head of the VC is destroyed and its upstream credit staged, on the
//!    assumption of a transient glitch.
//! 2. **Reset** — repeated alerts: the whole worm occupying the VC is torn
//!    down end to end (input buffer, in-flight link registers, upstream
//!    output-port bookkeeping, recursively up to the source NI).
//! 3. **Disable** — sustained alerts imply a permanent fault: the VC is
//!    quarantined on both sides of the link, never to be allocated again.
//!    When every VC of an output port is quarantined the port is fenced
//!    and the router's RC stage falls back to degraded (detouring) minimal
//!    routing.
//!
//! Containment destroys flits by design; end-to-end delivery is restored by
//! the NIC-level ARQ transport (`transport` module), which the delivery
//! oracle in `nocalert-golden` holds to exactly-once semantics.

use noc_types::Cycle;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Escalation thresholds of the containment state machine.
///
/// Alert counts are tracked per suspect input VC. A count of 1 up to (but
/// excluding) `reset_threshold` squashes; from `reset_threshold` up to (but
/// excluding) `disable_threshold` resets; at `disable_threshold` the VC is
/// quarantined and the site goes quiet permanently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Alert count at which squashing escalates to a full worm teardown.
    pub reset_threshold: u32,
    /// Alert count at which the VC is inferred permanently faulty and
    /// quarantined.
    pub disable_threshold: u32,
    /// Worm-age ceiling of the per-VC progress monitor: a buffered worm
    /// whose head flit has not moved for this many consecutive cycles is
    /// escalated exactly as if a checker had fired on its VC. This closes
    /// the alert-silent stall escape (a duty-cycled intermittent on
    /// `BufEmpty` can wedge a worm without raising further alerts —
    /// DESIGN.md §11). Must comfortably exceed any legitimate
    /// head-of-line blocking at the configured load; `Cycle::MAX`
    /// effectively disables the monitor.
    pub stall_age: Cycle,
    /// Suspicion score at which a router is escalated from "faulty" to
    /// "malicious". Suspicion accrues from *protocol-level* forgery
    /// evidence (spoofed control packets attributed to the router by the
    /// transport's source validation) rather than checker alerts — a
    /// faulty router garbles wires, a malicious one fabricates
    /// valid-shaped traffic. Crossing the threshold quarantines the whole
    /// router and stops trusting anything it originates. Forgery evidence
    /// is conclusive per event, so the default is low; it is > 1 only to
    /// tolerate misattribution at the margin (e.g. a genuinely faulty
    /// router corrupting a traversing control packet's tag bits).
    pub malice_threshold: u32,
}

impl RecoveryPolicy {
    /// Defaults tuned for the canonical campaigns: one squash attempt, one
    /// worm teardown, then quarantine. Permanent and intermittent faults on
    /// sparsely-checked wires raise alerts slowly (each containment action
    /// also destroys the evidence), so the disable threshold must be small
    /// enough that sustained-but-infrequent alerts still reach quarantine
    /// before the ARQ sender exhausts its retries.
    /// The stall-age default (1,000 cycles) is an order of magnitude above
    /// the worst head-of-line residency seen at the canonical campaign
    /// loads, so fault-free runs never trip it.
    pub fn default_policy() -> RecoveryPolicy {
        RecoveryPolicy {
            reset_threshold: 2,
            disable_threshold: 3,
            stall_age: 1_000,
            malice_threshold: 3,
        }
    }

    /// Checks the thresholds for values the escalation machine cannot run
    /// with.
    ///
    /// # Errors
    ///
    /// Returns [`noc_types::SimError::ArqInvalid`] when a threshold is zero
    /// or the ordering `reset_threshold <= disable_threshold` is violated.
    pub fn validate(&self) -> Result<(), noc_types::SimError> {
        if self.reset_threshold == 0 || self.disable_threshold == 0 {
            return Err(noc_types::SimError::ArqInvalid {
                reason: "recovery thresholds must be non-zero",
            });
        }
        if self.reset_threshold > self.disable_threshold {
            return Err(noc_types::SimError::ArqInvalid {
                reason: "reset threshold must not exceed disable threshold",
            });
        }
        if self.stall_age == 0 {
            return Err(noc_types::SimError::ArqInvalid {
                reason: "stall age must be non-zero",
            });
        }
        if self.malice_threshold == 0 {
            return Err(noc_types::SimError::ArqInvalid {
                reason: "malice threshold must be non-zero",
            });
        }
        Ok(())
    }
}

/// The containment level a controller selected for one alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ContainmentLevel {
    /// Destroy the suspect head flit of the VC.
    Squash,
    /// Tear the worm occupying the VC down end to end.
    Reset,
    /// Quarantine the VC permanently (permanent-fault inference).
    Disable,
}

/// One containment action, as recorded in the recovery trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContainmentEvent {
    /// Cycle at which the action was applied.
    pub cycle: Cycle,
    /// Router whose *input* VC was targeted.
    pub router: u16,
    /// Input port of the targeted VC.
    pub port: u8,
    /// The targeted VC.
    pub vc: u8,
    /// Escalation level applied.
    pub level: ContainmentLevel,
    /// Flits destroyed by the action.
    pub flits_dropped: u32,
}

/// Aggregate containment counters (one set per network).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Alert notifications consumed (after output→input translation).
    pub alerts_consumed: u64,
    /// L1 squash actions applied.
    pub squashes: u64,
    /// L2 worm-teardown resets applied.
    pub resets: u64,
    /// L3 VC quarantines applied.
    pub disables: u64,
    /// Output ports fully fenced (degraded routing engaged downstream).
    pub ports_fenced: u64,
    /// Flits destroyed by containment actions in total.
    pub flits_dropped: u64,
    /// Fault-region rectangles formed by the region map (cumulative; each
    /// region shape counts once — 0 unless `RoutingAlgorithm::FaultRegion`
    /// is active).
    pub regions_formed: u64,
    /// Routers absorbed into fault regions (cumulative).
    pub routers_absorbed: u64,
    /// RC decisions where the fault-region tables overrode the baseline
    /// route (reroutes taken around regions).
    pub reroutes_taken: u64,
    /// Forgery-evidence events scored against some router's suspicion
    /// counter.
    pub suspicions_noted: u64,
    /// Routers escalated from faulty to malicious (whole-router
    /// quarantine, ACKs no longer trusted).
    pub routers_marked_malicious: u64,
}

/// Per-router escalation state: alert counts and quarantine flags per
/// suspect input VC `(port, vc)`, plus the router-level malice score.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryController {
    counts: BTreeMap<(u8, u8), u32>,
    quarantined: BTreeMap<(u8, u8), bool>,
    /// Bounded forgery-evidence score (saturates at the policy threshold —
    /// there is nothing past "malicious" to escalate to, and an unbounded
    /// counter under an alert-flooding attacker is itself a resource
    /// attack surface).
    suspicion: u32,
    malicious: bool,
}

impl RecoveryController {
    /// A controller with no alert history.
    pub fn new() -> RecoveryController {
        RecoveryController::default()
    }

    /// Consumes one alert against input VC `(port, vc)` and returns the
    /// containment level to apply, or `None` when the VC is already
    /// quarantined (the site is contained; further alerts are stale
    /// fallout).
    pub fn note_alert(
        &mut self,
        policy: &RecoveryPolicy,
        port: u8,
        vc: u8,
    ) -> Option<ContainmentLevel> {
        if self.quarantined.get(&(port, vc)).copied().unwrap_or(false) {
            return None;
        }
        let count = self.counts.entry((port, vc)).or_insert(0);
        *count += 1;
        if *count >= policy.disable_threshold {
            self.quarantined.insert((port, vc), true);
            Some(ContainmentLevel::Disable)
        } else if *count >= policy.reset_threshold {
            Some(ContainmentLevel::Reset)
        } else {
            Some(ContainmentLevel::Squash)
        }
    }

    /// Alert count accumulated against `(port, vc)`.
    pub fn count(&self, port: u8, vc: u8) -> u32 {
        self.counts.get(&(port, vc)).copied().unwrap_or(0)
    }

    /// True when `(port, vc)` has been quarantined.
    pub fn is_quarantined(&self, port: u8, vc: u8) -> bool {
        self.quarantined.get(&(port, vc)).copied().unwrap_or(false)
    }

    /// Scores one piece of forgery evidence against this router and
    /// returns `true` exactly once: at the moment the bounded score
    /// crosses the policy's malice threshold (the caller then quarantines
    /// the router and stops trusting its traffic). Further evidence
    /// against an already-malicious router is absorbed.
    pub fn note_suspicion(&mut self, policy: &RecoveryPolicy) -> bool {
        if self.malicious {
            return false;
        }
        self.suspicion = self
            .suspicion
            .saturating_add(1)
            .min(policy.malice_threshold);
        if self.suspicion >= policy.malice_threshold {
            self.malicious = true;
            true
        } else {
            false
        }
    }

    /// Accumulated (bounded) forgery-evidence score.
    pub fn suspicion(&self) -> u32 {
        self.suspicion
    }

    /// True once the router has been escalated to malicious.
    pub fn is_malicious(&self) -> bool {
        self.malicious
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalation_follows_thresholds() {
        let policy = RecoveryPolicy {
            reset_threshold: 3,
            disable_threshold: 5,
            ..RecoveryPolicy::default_policy()
        };
        let mut c = RecoveryController::new();
        assert_eq!(c.note_alert(&policy, 1, 0), Some(ContainmentLevel::Squash));
        assert_eq!(c.note_alert(&policy, 1, 0), Some(ContainmentLevel::Squash));
        assert_eq!(c.note_alert(&policy, 1, 0), Some(ContainmentLevel::Reset));
        assert_eq!(c.note_alert(&policy, 1, 0), Some(ContainmentLevel::Reset));
        assert_eq!(c.note_alert(&policy, 1, 0), Some(ContainmentLevel::Disable));
        assert!(c.is_quarantined(1, 0));
        // Post-quarantine alerts are absorbed.
        assert_eq!(c.note_alert(&policy, 1, 0), None);
        // Other sites are independent.
        assert_eq!(c.note_alert(&policy, 1, 1), Some(ContainmentLevel::Squash));
        assert_eq!(c.count(1, 0), 5);
    }

    #[test]
    fn policy_validation() {
        assert!(RecoveryPolicy::default_policy().validate().is_ok());
        let zero = RecoveryPolicy {
            reset_threshold: 0,
            disable_threshold: 5,
            ..RecoveryPolicy::default_policy()
        };
        assert!(zero.validate().is_err());
        let inverted = RecoveryPolicy {
            reset_threshold: 6,
            disable_threshold: 5,
            ..RecoveryPolicy::default_policy()
        };
        assert!(inverted.validate().is_err());
        let ageless = RecoveryPolicy {
            stall_age: 0,
            ..RecoveryPolicy::default_policy()
        };
        assert!(ageless.validate().is_err());
        let trusting = RecoveryPolicy {
            malice_threshold: 0,
            ..RecoveryPolicy::default_policy()
        };
        assert!(trusting.validate().is_err());
    }

    #[test]
    fn suspicion_is_bounded_and_crosses_once() {
        let policy = RecoveryPolicy {
            malice_threshold: 3,
            ..RecoveryPolicy::default_policy()
        };
        let mut c = RecoveryController::new();
        assert!(!c.is_malicious());
        assert!(!c.note_suspicion(&policy));
        assert!(!c.note_suspicion(&policy));
        assert_eq!(c.suspicion(), 2);
        // Third piece of evidence crosses the threshold — exactly once.
        assert!(c.note_suspicion(&policy));
        assert!(c.is_malicious());
        // Further evidence is absorbed and the score stays bounded even
        // under a flood of forgeries.
        for _ in 0..10_000 {
            assert!(!c.note_suspicion(&policy));
        }
        assert_eq!(c.suspicion(), policy.malice_threshold);
    }
}
