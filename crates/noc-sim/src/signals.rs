//! The signal catalogue: widths and live bits of every module wire.
//!
//! One source of truth for the fault-injection surface (Section 5.2 /
//! Figure 5 of the paper): the same tables drive the campaign's exhaustive
//! site enumeration and are, by the coverage test in `tests/`, guaranteed
//! to match the hooks the router actually evaluates. Routers at mesh edges
//! and corners have dead ports, so they expose fewer sites — which is why
//! the paper counts 11,808 sites in an 8×8 mesh instead of 64× the
//! interior-router count.

use noc_types::config::NocConfig;
use noc_types::geometry::{Direction, NodeId};
use noc_types::site::{SignalKind, SiteRef};

/// Nominal width in bits of a signal under `cfg` (ignoring liveness).
pub fn signal_width(cfg: &NocConfig, sig: SignalKind) -> u8 {
    use SignalKind::*;
    match sig {
        RcDestX | RcDestY => cfg.coord_bits(),
        RcHeadValid => 1,
        RcOutDir | VcOutPort => 3,
        Va1Req | Va1Grant | Sa1Req | Sa1Grant => cfg.vcs_per_port,
        Va2Req | Va2Grant | Sa2Req | Sa2Grant | XbarCol | XbarGrantIn => Direction::COUNT as u8,
        Va2OutVc | VcOutVc => cfg.vc_bits(),
        VcEvRcDone | VcEvVaDone | VcEvSaWon | BufWrite | BufRead | BufEmpty | BufFull => 1,
        VcStateCode | BufHeadKind => 2,
    }
}

/// True when `sig` is a vector indexed by *input port* (so its live bits
/// depend on the router's position and exclude the module's own port —
/// there is no u-turn wire in the canonical router).
fn port_indexed(sig: SignalKind) -> bool {
    use SignalKind::*;
    matches!(
        sig,
        Va2Req | Va2Grant | Sa2Req | Sa2Grant | XbarCol | XbarGrantIn
    )
}

/// The physically existing bit positions of `sig` for the module instance
/// at `(router, module_port)`.
pub fn live_bits(cfg: &NocConfig, router: NodeId, module_port: u8, sig: SignalKind) -> Vec<u8> {
    if port_indexed(sig) {
        Direction::ALL
            .iter()
            .filter(|d| d.index() as u8 != module_port && cfg.mesh.port_live(router, **d))
            .map(|d| d.index() as u8)
            .collect()
    } else {
        (0..signal_width(cfg, sig)).collect()
    }
}

/// Enumerates every injectable site of one router.
pub fn enumerate_router_sites(cfg: &NocConfig, router: NodeId) -> Vec<SiteRef> {
    let mut sites = Vec::new();
    for sig in SignalKind::ALL {
        let module = sig.module();
        for dir in Direction::ALL {
            if !cfg.mesh.port_live(router, dir) {
                continue;
            }
            let port = dir.index() as u8;
            let vcs: &[u8] = if module.per_vc() {
                // One instance per (port, vc).
                &VC_INDICES[..cfg.vcs_per_port as usize]
            } else {
                &VC_INDICES[..1]
            };
            for &vc in vcs {
                for bit in live_bits(cfg, router, port, sig) {
                    sites.push(SiteRef {
                        router: router.0,
                        port,
                        vc,
                        signal: sig,
                        bit,
                    });
                }
            }
        }
    }
    sites
}

const VC_INDICES: [u8; 16] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15];

/// Enumerates every injectable site of the whole mesh — the full campaign
/// universe (the paper's "11,808 possible fault locations in an 8×8 mesh";
/// our module decomposition is finer-grained, see EXPERIMENTS.md).
pub fn enumerate_all_sites(cfg: &NocConfig) -> Vec<SiteRef> {
    cfg.mesh
        .nodes()
        .flat_map(|n| enumerate_router_sites(cfg, n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::geometry::Coord;
    use noc_types::site::ModuleClass;
    use std::collections::HashSet;

    #[test]
    fn widths_are_config_sensitive() {
        let cfg = NocConfig::paper_baseline();
        assert_eq!(signal_width(&cfg, SignalKind::RcDestX), 3);
        assert_eq!(signal_width(&cfg, SignalKind::Va1Req), 4);
        assert_eq!(signal_width(&cfg, SignalKind::Va2OutVc), 2);
        let mut cfg8 = cfg.clone();
        cfg8.vcs_per_port = 8;
        assert_eq!(signal_width(&cfg8, SignalKind::Sa1Grant), 8);
        assert_eq!(signal_width(&cfg8, SignalKind::VcOutVc), 3);
    }

    #[test]
    fn port_indexed_bits_exclude_self_and_dead() {
        let cfg = NocConfig::paper_baseline();
        // Interior router: all 5 ports live; Va2 at East excludes East.
        let interior = cfg.mesh.node(Coord::new(3, 3));
        let bits = live_bits(
            &cfg,
            interior,
            Direction::East.index() as u8,
            SignalKind::Va2Req,
        );
        assert_eq!(bits, vec![0, 2, 3, 4]);
        // SW corner: North, East, Local live.
        let corner = cfg.mesh.node(Coord::new(0, 0));
        let bits = live_bits(
            &cfg,
            corner,
            Direction::North.index() as u8,
            SignalKind::Sa2Grant,
        );
        assert_eq!(bits, vec![1, 4]);
    }

    #[test]
    fn enumeration_is_unique_and_ordered_by_router() {
        let cfg = NocConfig::small_test();
        let sites = enumerate_all_sites(&cfg);
        let set: HashSet<_> = sites.iter().collect();
        assert_eq!(set.len(), sites.len(), "sites must be unique");
        assert!(!sites.is_empty());
    }

    #[test]
    fn corner_routers_have_fewer_sites() {
        let cfg = NocConfig::paper_baseline();
        let corner = enumerate_router_sites(&cfg, cfg.mesh.node(Coord::new(0, 0))).len();
        let edge = enumerate_router_sites(&cfg, cfg.mesh.node(Coord::new(3, 0))).len();
        let interior = enumerate_router_sites(&cfg, cfg.mesh.node(Coord::new(3, 3))).len();
        assert!(
            corner < edge && edge < interior,
            "{corner} {edge} {interior}"
        );
    }

    #[test]
    fn mesh_total_counts_sum_per_router() {
        let cfg = NocConfig::small_test();
        let total = enumerate_all_sites(&cfg).len();
        let sum: usize = cfg
            .mesh
            .nodes()
            .map(|n| enumerate_router_sites(&cfg, n).len())
            .sum();
        assert_eq!(total, sum);
    }

    #[test]
    fn sites_respect_module_addressing() {
        let cfg = NocConfig::paper_baseline();
        for s in enumerate_router_sites(&cfg, NodeId(0)) {
            let m = s.signal.module();
            if m.per_vc() {
                assert!(s.vc < cfg.vcs_per_port);
            } else {
                assert_eq!(s.vc, 0);
            }
            assert!(s.port < 5);
            assert!(
                s.bit < signal_width(&cfg, s.signal),
                "bit {} out of width for {:?}",
                s.bit,
                s.signal
            );
            let _ = ModuleClass::ALL; // module classes all reachable
        }
    }
}
