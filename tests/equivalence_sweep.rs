//! Before/after equivalence sweep (ISSUE 5): golden seeds through the
//! campaign pipelines behind every experiment binary, with aggregates
//! pinned to committed snapshots generated on the **pre-refactor** code.
//!
//! The allocation-free hot path, the dense e2e/ARQ slabs and the
//! campaign arena must change *nothing observable*: every per-run
//! result and every derived statistic has to come out bit-identical.
//! Each test here drives the same library pipeline as one (or several)
//! of the `nocalert-bench` binaries — `fig6`–`fig10`, `obs3`, `obs5`,
//! `ablate`, `recovery` — at laptop scale with the stock golden seed,
//! serializes the aggregates, and diffs them against
//! `tests/snapshots/<name>.json`.
//!
//! Regenerating a snapshot is an explicit, reviewed act:
//!
//! ```text
//! NOCSIM_UPDATE_SNAPSHOTS=all cargo test --test equivalence_sweep
//! NOCSIM_UPDATE_SNAPSHOTS=recovery_classes cargo test --test equivalence_sweep
//! ```
//!
//! The detection snapshots were generated before the hot-path overhaul
//! and are intentionally left untouched by it. The `recovery_classes`
//! snapshot postdates the BufEmpty stall fix (the fix legitimately
//! changes intermittent-fault outcomes — that is its point) and the
//! `RecoveryRun` schema extension that added the `checkers` /
//! `first_alert_at` fields for service incident clustering (purely
//! additive; every simulation figure stayed bit-identical).

use fault::FaultSpec;
use golden::stats::{breakdown, checker_shares, latency_cdf, simultaneity_cdf};
use golden::{Campaign, CampaignConfig, Detector, RecoveryHarness, RecoveryOptions};
use noc_types::NocConfig;
use serde::Serialize;
use std::path::PathBuf;

fn snapshot_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(format!("{name}.json"))
}

/// Serializes `value` and diffs it against the committed snapshot, or
/// rewrites the snapshot when `NOCSIM_UPDATE_SNAPSHOTS` names it (or is
/// `all`).
fn check<T: Serialize>(name: &str, value: &T) {
    let got = serde_json::to_string_pretty(value).expect("aggregate serializes");
    let path = snapshot_path(name);
    let update = std::env::var("NOCSIM_UPDATE_SNAPSHOTS").unwrap_or_default();
    if update == "all" || update.split(',').any(|u| u == name) {
        std::fs::create_dir_all(path.parent().expect("snapshot dir")).expect("mkdir snapshots");
        std::fs::write(&path, got + "\n").expect("write snapshot");
        eprintln!("[equivalence] updated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}); generate it with NOCSIM_UPDATE_SNAPSHOTS={name}",
            path.display()
        )
    });
    assert_eq!(
        got,
        want.trim_end(),
        "{name}: aggregates diverged from the pre-refactor snapshot"
    );
}

fn sweep_noc() -> NocConfig {
    let mut noc = NocConfig::small_test();
    noc.injection_rate = 0.08;
    noc
}

fn sweep_cc(noc: NocConfig, warmup: u64) -> CampaignConfig {
    CampaignConfig {
        noc,
        warmup,
        active_window: 400,
        drain_deadline: 8_000,
        forever_epoch: 300,
    }
}

fn transient_results(campaign: &Campaign, n: usize) -> Vec<golden::RunResult> {
    let sites = fault::sample::stride(&fault::enumerate_sites(&campaign.config().noc), n);
    campaign.run_many(&sites, 2)
}

/// `fig6` (steady-state warm-up) plus the pure-statistics binaries
/// `fig7`/`fig8`/`fig9` that post-process the same transient campaign.
#[test]
fn transient_campaign_and_figure_stats_match_snapshots() {
    let campaign = Campaign::new(sweep_cc(sweep_noc(), 300));
    let results = transient_results(&campaign, 6);
    check("fig6_w300_results", &results);
    let breakdowns: Vec<_> = [
        Detector::NoCAlert,
        Detector::NoCAlertCautious,
        Detector::ForEVeR,
    ]
    .iter()
    .map(|&d| breakdown(&results, d))
    .collect();
    check("fig6_w300_breakdowns", &breakdowns);
    check(
        "fig7_latency_cdf",
        &latency_cdf(&results, Detector::NoCAlert),
    );
    check("fig8_checker_shares", &checker_shares(&results).to_vec());
    check("fig9_simultaneity_cdf", &simultaneity_cdf(&results));
}

/// `fig6`'s empty-network arm: injection at cycle 0.
#[test]
fn empty_network_campaign_matches_snapshot() {
    let campaign = Campaign::new(sweep_cc(sweep_noc(), 0));
    let results = transient_results(&campaign, 4);
    check("fig6_w0_results", &results);
}

/// `fig10`: detection breakdown as a function of offered load.
#[test]
fn load_sweep_matches_snapshot() {
    let mut out = Vec::new();
    for rate in [0.04, 0.12] {
        let mut noc = sweep_noc();
        noc.injection_rate = rate;
        let campaign = Campaign::new(sweep_cc(noc, 300));
        let results = transient_results(&campaign, 4);
        out.push((
            format!("{rate}"),
            breakdown(&results, Detector::NoCAlert),
            results,
        ));
    }
    check("fig10_load_sweep", &out);
}

/// `obs3`: permanent and intermittent fault classes through the same
/// campaign driver.
#[test]
fn persistent_fault_campaign_matches_snapshot() {
    let campaign = Campaign::new(sweep_cc(sweep_noc(), 300));
    let sites = fault::sample::stride(&fault::enumerate_sites(&campaign.config().noc), 4);
    let start = campaign.injection_cycle();
    let mut out = Vec::new();
    for site in sites {
        out.push(campaign.run_spec(FaultSpec::permanent(site, start)));
        out.push(campaign.run_spec(FaultSpec::intermittent(site, 50, 10, start)));
    }
    check("obs3_persistent_results", &out);
}

/// `obs5`: the speculative-pipeline microarchitecture variant.
#[test]
fn speculative_campaign_matches_snapshot() {
    let mut noc = sweep_noc();
    noc.speculative = true;
    let campaign = Campaign::new(sweep_cc(noc, 300));
    let results = transient_results(&campaign, 4);
    check("obs5_speculative_results", &results);
}

/// `ablate`: checker-ablation sweep (one disabled checker).
#[test]
fn ablation_campaign_matches_snapshot() {
    let mut campaign = Campaign::new(sweep_cc(sweep_noc(), 300));
    campaign.disable_checker(nocalert::CheckerId(5));
    let results = transient_results(&campaign, 4);
    check("ablate_results", &results);
    check("ablate_breakdown", &breakdown(&results, Detector::NoCAlert));
}

/// `recovery`: the closed-loop class sweep. This snapshot was generated
/// **after** the BufEmpty worm-stall fix (the fix changes
/// intermittent-fault outcomes by design) and pins the perf refactor
/// thereafter.
#[test]
fn recovery_class_sweep_matches_snapshot() {
    let mut noc = NocConfig::small_test();
    noc.vcs_per_port = 2;
    noc.message_classes = 1;
    noc.packet_lengths = vec![5];
    noc.injection_rate = 0.05;
    let opts = RecoveryOptions {
        warmup: 200,
        active_window: 1_500,
        watchdog: fault::Watchdog {
            cycle_budget: 80_000,
            stall_window: 1_500,
        },
        ..RecoveryOptions::paper_defaults()
    };
    let harness = RecoveryHarness::try_new(noc.clone(), opts).expect("valid options");
    let universe = fault::enumerate_sites(&noc);
    let site = *universe
        .iter()
        .find(|s| s.router == 5 && golden::containment_covered(s.signal) && s.bit == 0)
        .expect("covered site on router 5");
    let specs = [
        FaultSpec::transient(site, 900),
        FaultSpec::intermittent(site, 50, 10, 900),
        FaultSpec::permanent(site, 900),
        FaultSpec::stuck_at(site, false, 900),
        FaultSpec::stuck_at(site, true, 900),
    ];
    let runs: Vec<_> = specs.iter().map(|s| harness.run(Some(s))).collect();
    check("recovery_classes", &runs);
}
