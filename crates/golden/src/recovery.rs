//! Closed-loop recovery evaluation: detection driving containment, with
//! ARQ transport restoring end-to-end delivery (DESIGN.md §11).
//!
//! The detection campaigns ([`crate::campaign`]) keep NoCAlert purely
//! observational, exactly as the paper evaluates it. This module closes
//! the loop the paper defers to "an accompanying recovery mechanism":
//! every [`nocalert::AssertionEvent`] raised by the checker bank is
//! translated to a containment notification for the simulator's per-router
//! recovery controllers, and the NIC-level ARQ transport retransmits
//! whatever containment destroys. The harness then holds the system to a
//! *delivery* oracle — every offered application message arrives exactly
//! once, uncorrupted — rather than the flit-level golden diff, which by
//! design would flag the (expected, benign) retransmissions.
//!
//! Alert translation: a checker's [`nocalert::CheckerInfo::module`] says
//! whether its port context addresses an input or an output port
//! ([`noc_types::site::ModuleClass::port_is_output`]); output-side alerts
//! are mapped across the link to the downstream input VC inside
//! `Network::notify_alert`. The network-level end-to-end invariance 32
//! (`module == None`) is detection without localization and is not fed to
//! containment. The turn/progress checkers (invariances 1 and 3) stay
//! armed throughout: they are region-aware — once a port is fenced (or
//! fault-region tables install detours), each RC execution is excused
//! only when its output matches the active routing function's answer,
//! re-derived from the recorded fence/region registers — so a misroute
//! inside a degraded route is still caught.

use crate::campaign::jsonl;
use crate::campaign::resilience::catch_payload;
use crate::campaign::CampaignError;
use fault::{FaultSpec, Hang, HangKind, Watchdog};
use noc_sim::{
    ArqConfig, ContainmentEvent, DeliveryRecord, Network, RecoveryPolicy, RecoveryStats, Transport,
    TransportStats,
};
use noc_types::{Cycle, NocConfig, SimError};
use nocalert::{info, AlertBank};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Everything configurable about one recovery rollout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryOptions {
    /// Containment escalation thresholds.
    pub policy: RecoveryPolicy,
    /// Retransmission policy of the end-to-end transport.
    pub arq: ArqConfig,
    /// Fault-free warm-up cycles before the measurement window.
    pub warmup: Cycle,
    /// Measured cycles with injection enabled (faults are active here).
    pub active_window: Cycle,
    /// Hang detection: total cycle budget and drain stall window.
    pub watchdog: Watchdog,
}

impl RecoveryOptions {
    /// Defaults matching the detection campaigns' scale: short warm-up, a
    /// measurement window long enough for several ARQ round trips, and the
    /// stock watchdog.
    pub fn paper_defaults() -> RecoveryOptions {
        RecoveryOptions {
            policy: RecoveryPolicy::default_policy(),
            arq: ArqConfig::default_policy(),
            warmup: 500,
            active_window: 6_000,
            watchdog: Watchdog {
                cycle_budget: 200_000,
                stall_window: 2_000,
            },
        }
    }

    /// Validates every nested policy.
    ///
    /// # Errors
    ///
    /// Propagates the first invalid nested policy
    /// ([`noc_types::SimError::ArqInvalid`] /
    /// [`noc_types::SimError::WatchdogInvalid`]).
    pub fn validate(&self) -> Result<(), SimError> {
        self.policy.validate()?;
        self.arq.validate()?;
        self.watchdog.validate()
    }
}

/// How a recovery rollout ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryOutcome {
    /// The network drained and the transport reached quiescence (every
    /// message acknowledged or given up on) inside the watchdog budget.
    Quiescent,
    /// A watchdog tripped first.
    Hung(Hang),
    /// The fault-region map reports a true network partition: the live
    /// graph split into this many components. Cross-partition traffic is
    /// unreachable by construction, so this is a terminal topology state
    /// — reported explicitly, never as a hang.
    Partitioned {
        /// Live components remaining.
        components: u32,
    },
    /// The rollout panicked (only produced by [`RecoveryHarness::run_isolated`]).
    Crashed(String),
}

/// The delivery oracle's judgement of one rollout.
///
/// Retransmissions are expected; what is *not* tolerated is silent loss,
/// duplication towards the application, or a corrupted copy being
/// delivered (corrupted completes are NACKed and never enter the record).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeliveryVerdict {
    /// Every offered message was delivered exactly once, uncorrupted.
    ExactlyOnce,
    /// End-to-end delivery was violated.
    Violated {
        /// Offered messages never delivered (in flight at the end or
        /// abandoned).
        undelivered: u64,
        /// Messages the sender abandoned after `max_retries`.
        gave_up: u64,
        /// Application-level duplicate deliveries (dedup failure).
        duplicates: u64,
    },
}

/// Full result of one closed-loop rollout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryRun {
    /// The injected fault, if any.
    pub spec: Option<FaultSpec>,
    /// How the rollout ended.
    pub outcome: RecoveryOutcome,
    /// The delivery oracle's judgement.
    pub verdict: DeliveryVerdict,
    /// Transport counters (offered/delivered/retransmits/ACK overhead…).
    pub transport: TransportStats,
    /// Containment counters (squashes/resets/disables/fenced ports…).
    pub recovery: RecoveryStats,
    /// Every containment action, in order.
    pub trace: Vec<ContainmentEvent>,
    /// Every exactly-once delivery, in arrival order (latency data).
    pub deliveries: Vec<DeliveryRecord>,
    /// Assertions the checker bank raised.
    pub alerts: u64,
    /// Distinct checker ids that asserted, ascending (Table-1 numbering).
    pub checkers: Vec<u8>,
    /// Cycle of the first bank assertion, if any fired.
    pub first_alert_at: Option<Cycle>,
    /// Observable fault activations.
    pub fault_hits: u64,
    /// Final simulation cycle.
    pub end_cycle: Cycle,
}

impl RecoveryRun {
    /// Delivered-to-offered ratio in `[0, 1]` (1.0 when nothing was
    /// offered).
    pub fn delivery_ratio(&self) -> f64 {
        if self.transport.offered == 0 {
            1.0
        } else {
            self.transport.delivered as f64 / self.transport.offered as f64
        }
    }

    /// Wire overhead beyond one transmission per message: retransmissions
    /// plus control packets, per offered message.
    pub fn overhead_per_message(&self) -> f64 {
        if self.transport.offered == 0 {
            return 0.0;
        }
        let extra =
            self.transport.retransmits + self.transport.acks_sent + self.transport.nacks_sent;
        extra as f64 / self.transport.offered as f64
    }
}

/// Judges the transport's end state against exactly-once semantics.
///
/// This is a *delivery* oracle: it asks whether the application saw every
/// offered message exactly once. Whether the network itself drained (it
/// may hold quarantined garbage flits forever under a permanent fault) is
/// the rollout outcome's business, not the verdict's.
pub fn verify_delivery(transport: &Transport) -> DeliveryVerdict {
    let s = transport.stats();
    let mut apps = BTreeSet::new();
    let mut duplicates = 0u64;
    for rec in transport.records() {
        if !apps.insert(rec.app) {
            duplicates += 1;
        }
    }
    let undelivered = s.offered.saturating_sub(s.delivered);
    if undelivered == 0 && duplicates == 0 {
        DeliveryVerdict::ExactlyOnce
    } else {
        DeliveryVerdict::Violated {
            undelivered,
            gave_up: s.gave_up,
            duplicates,
        }
    }
}

/// True when faults on `signal` are *containment-covered*: localizable to
/// one input VC by the checkers that observe them, and fully masked by the
/// VC-granular escalation machine (empirically verified across all four
/// fault classes at every such site).
///
/// What is excluded, and why:
///
/// * `RcDestX`/`RcDestY` — the destination wires feed the minimal-routing
///   checker's *own input cone*, so a corrupted destination routes
///   "correctly" toward the wrong node; only the unlocalized end-to-end
///   invariance fires, and containment has no target.
/// * `VcStateCode` — some stuck-at values wedge the VC state machine in a
///   legal-looking state that raises no alert at all.
/// * `VcOutPort`/`VcOutVc` — bit-flipped but *valid* encodings misroute
///   through legal turns; alerts accumulate too slowly downstream to
///   localize the source VC reliably.
/// * Arbitration and crossbar wires (`Va*`, `Sa*`, `Xbar*`) — the faulty
///   hardware is port-granular; disabling suspect input VCs cannot mask a
///   broken arbiter that corrupts every VC behind its port.
///
/// Faults at non-covered sites remain *detected* (the detection campaigns
/// are unchanged); they are just not guaranteed survivable, and the
/// recovery campaign reports their delivered ratio separately.
pub fn containment_covered(signal: noc_types::site::SignalKind) -> bool {
    // The canonical set lives in `noc-types` so the static detectability
    // prover (`noc-lint --pass detect`) and this harness agree by
    // construction.
    noc_types::site::containment_covered(signal)
}

/// The closed-loop harness: one instance, many rollouts.
#[derive(Debug, Clone)]
pub struct RecoveryHarness {
    cfg: NocConfig,
    opts: RecoveryOptions,
}

impl RecoveryHarness {
    /// Builds a harness after validating `opts`.
    ///
    /// # Errors
    ///
    /// Propagates [`RecoveryOptions::validate`] failures.
    pub fn try_new(cfg: NocConfig, opts: RecoveryOptions) -> Result<RecoveryHarness, SimError> {
        opts.validate()?;
        Ok(RecoveryHarness { cfg, opts })
    }

    /// The options the harness runs with.
    pub fn options(&self) -> &RecoveryOptions {
        &self.opts
    }

    /// The cycle at which the measurement window ends and draining begins.
    pub fn active_end(&self) -> Cycle {
        self.opts.warmup.saturating_add(self.opts.active_window)
    }

    /// One closed-loop rollout: inject `spec` (or nothing, for the
    /// baseline), feed every alert to containment, retransmit end to end,
    /// and drain until the transport is quiescent or a watchdog trips.
    pub fn run(&self, spec: Option<&FaultSpec>) -> RecoveryRun {
        self.run_prepared(spec, |_| {})
    }

    /// [`RecoveryHarness::run`] with a pre-damaged topology: `prepare`
    /// runs before the first cycle and may sever links or quarantine
    /// routers outright — how the partition-classification tests build a
    /// mesh that is already split when traffic starts.
    pub fn run_prepared(
        &self,
        spec: Option<&FaultSpec>,
        prepare: impl FnOnce(&mut Network),
    ) -> RecoveryRun {
        let mut net = Network::new(self.cfg.clone());
        net.enable_recovery(self.opts.policy);
        prepare(&mut net);
        let mut bank = AlertBank::new(&self.cfg);
        // The full bank stays armed: the turn/progress checkers (inv 1/3)
        // are region-aware — degraded routes around fenced ports and
        // fault-region detours are excused per-RC-execution against the
        // recorded routing registers, not by disarming the checkers.
        let mut transport = Transport::new(&self.cfg, self.opts.arq);
        if let Some(s) = spec {
            net.arm_fault(s.site, s.kind, s.start);
        }

        let dog = self.opts.watchdog;
        let active_end = self.active_end();
        let mut consumed = 0usize;
        let mut hang: Option<Hang> = None;

        while net.cycle() < active_end {
            if net.cycle() >= dog.cycle_budget {
                hang = Some(Hang {
                    kind: HangKind::CycleBudget,
                    at_cycle: net.cycle(),
                    stalled_for: 0,
                });
                break;
            }
            self.step_once(&mut net, &mut bank, &mut transport, &mut consumed);
        }

        if hang.is_none() {
            net.set_injection_enabled(false);
            let mut sig = net.progress_signature();
            let mut stalled: Cycle = 0;
            loop {
                if net.is_drained() && transport.quiescent() {
                    break;
                }
                if net.cycle() >= dog.cycle_budget {
                    hang = Some(Hang {
                        kind: HangKind::CycleBudget,
                        at_cycle: net.cycle(),
                        stalled_for: stalled,
                    });
                    break;
                }
                // A non-quiescent transport is waiting on an armed
                // retransmission timer — progress resumes by construction,
                // so the stall check only applies once it has nothing left.
                if transport.quiescent() && stalled >= dog.stall_window {
                    hang = Some(Hang {
                        kind: HangKind::NoProgress,
                        at_cycle: net.cycle(),
                        stalled_for: stalled,
                    });
                    break;
                }
                self.step_once(&mut net, &mut bank, &mut transport, &mut consumed);
                let now = net.progress_signature();
                if now == sig {
                    stalled += 1;
                } else {
                    sig = now;
                    stalled = 0;
                }
            }
        }

        let verdict = verify_delivery(&transport);
        // Partition classification outranks the watchdog: a mesh split in
        // two genuinely cannot deliver cross-partition traffic, and
        // reporting that as `Hung` would blame the routing for a topology
        // fact.
        let partition = net
            .fault_region_map()
            .filter(|m| m.partitioned())
            .map(|m| m.live_components());
        let outcome = match (partition, hang) {
            (Some(components), _) => RecoveryOutcome::Partitioned { components },
            (None, Some(h)) => RecoveryOutcome::Hung(h),
            (None, None) => RecoveryOutcome::Quiescent,
        };
        RecoveryRun {
            spec: spec.copied(),
            outcome,
            verdict,
            transport: transport.stats(),
            recovery: net.recovery_stats(),
            trace: net.recovery_trace().to_vec(),
            deliveries: transport.records().to_vec(),
            alerts: bank.assertions().len() as u64,
            checkers: bank.asserted_set().iter().map(|c| c.0).collect(),
            first_alert_at: bank.assertions().first().map(|e| e.cycle),
            fault_hits: net.fault_hits(),
            end_cycle: net.cycle(),
        }
    }

    /// [`RecoveryHarness::run`] behind the campaign panic-isolation
    /// boundary: a panicking rollout becomes a `Crashed` report instead of
    /// taking the sweep down.
    pub fn run_isolated(&self, spec: Option<&FaultSpec>) -> RecoveryRun {
        match catch_payload(|| self.run(spec)) {
            Ok(run) => run,
            Err(panic) => RecoveryRun {
                spec: spec.copied(),
                outcome: RecoveryOutcome::Crashed(panic),
                verdict: DeliveryVerdict::Violated {
                    undelivered: 0,
                    gave_up: 0,
                    duplicates: 0,
                },
                transport: TransportStats::default(),
                recovery: RecoveryStats::default(),
                trace: Vec::new(),
                deliveries: Vec::new(),
                alerts: 0,
                checkers: Vec::new(),
                first_alert_at: None,
                fault_hits: 0,
                end_cycle: 0,
            },
        }
    }

    /// One simulated cycle of the closed loop: step the network under the
    /// checker bank and the transport, hand fresh alerts to containment
    /// (applied by the network at the start of the next cycle — the
    /// one-cycle reaction latency of a real alert wire), then let the
    /// transport fabricate control packets and fire timers.
    fn step_once(
        &self,
        net: &mut Network,
        bank: &mut AlertBank,
        transport: &mut Transport,
        consumed: &mut usize,
    ) {
        net.step_observed(&mut (&mut *bank, &mut *transport));
        let fresh = bank.events_since(*consumed);
        *consumed = bank.assertions().len();
        for ev in fresh {
            if let Some(module) = info(ev.checker).module {
                net.notify_alert(ev.router, ev.port, ev.vc, module.port_is_output());
            }
        }
        transport.post_step(net);
    }
}

/// The standard recovery work-list: every containment-covered fault
/// site crossed with all five fault classes (transient, intermittent,
/// permanent, stuck-at-0, stuck-at-1), site-major. The five specs of a
/// site carry distinct [`noc_types::FaultKind`]s, so each spec is a
/// unique journal key. `start` is the injection instant; `period`/`duty`
/// shape the intermittent class.
pub fn standard_recovery_specs(
    cfg: &NocConfig,
    start: Cycle,
    period: u32,
    duty: u32,
) -> Vec<FaultSpec> {
    fault::enumerate_sites(cfg)
        .into_iter()
        .filter(|s| containment_covered(s.signal))
        .flat_map(|site| {
            [
                FaultSpec::transient(site, start),
                FaultSpec::intermittent(site, period, duty, start),
                FaultSpec::permanent(site, start),
                FaultSpec::stuck_at(site, false, start),
                FaultSpec::stuck_at(site, true, start),
            ]
        })
        .collect()
}

/// Everything that identifies a recovery campaign: rollouts computed
/// under different configurations cannot be mixed, so the journal
/// refuses a directory whose config differs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryCampaignConfig {
    /// Network configuration.
    pub noc: NocConfig,
    /// Closed-loop rollout options.
    pub opts: RecoveryOptions,
}

/// One journal line: a fault spec and its completed rollout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoverySiteReport {
    /// The injected fault.
    pub spec: FaultSpec,
    /// Its rollout result.
    pub run: RecoveryRun,
}

/// Aggregated campaign result, in input-spec order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryCampaignReport {
    /// One report per input spec (specs missing after a cancelled sweep
    /// are absent and flagged via `interrupted`).
    pub reports: Vec<RecoverySiteReport>,
    /// Specs restored from the journal instead of re-run.
    pub resumed: usize,
    /// Torn trailing journal lines skipped on resume (mid-shard
    /// corruption is refused as a structured error, never skipped).
    pub corrupt_lines: usize,
    /// True when cancellation stopped the sweep before every spec ran.
    pub interrupted: bool,
}

impl RecoveryCampaignReport {
    /// Rollouts whose delivery verdict was exactly-once.
    pub fn exactly_once(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| r.run.verdict == DeliveryVerdict::ExactlyOnce)
            .count()
    }
}

/// Resilience knobs of the recovery sweep (mirrors
/// [`crate::campaign::ResilienceOptions`]).
#[derive(Debug, Default)]
pub struct RecoveryCampaignOptions {
    /// Journal directory for kill-safe incremental progress.
    pub checkpoint_dir: Option<PathBuf>,
    /// Load previously completed specs from the journal instead of
    /// refusing a populated directory.
    pub resume: bool,
    /// Cooperative cancellation flag, checked between rollouts.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl RecoveryCampaignOptions {
    fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
    }
}

/// The recovery journal: `meta.json` pins the configuration,
/// `shard-w<worker>.jsonl` holds one [`RecoverySiteReport`] per line.
/// Durability semantics are the shared [`jsonl`] substrate's.
#[derive(Debug, Clone)]
struct RecoveryJournal {
    dir: PathBuf,
}

impl RecoveryJournal {
    fn open(
        dir: impl Into<PathBuf>,
        cc: &RecoveryCampaignConfig,
    ) -> Result<RecoveryJournal, CampaignError> {
        let dir = dir.into();
        jsonl::ensure_meta(&dir, 1, cc)?;
        Ok(RecoveryJournal { dir })
    }
}

/// The recovery sweep driver: panic isolation per rollout, optional
/// JSONL journalling with resume, cooperative cancellation, and
/// round-robin worker sharding. Reports are reassembled in input-spec
/// order, so the aggregate is bit-identical for any worker count.
#[derive(Debug, Clone)]
pub struct RecoveryCampaign {
    cc: RecoveryCampaignConfig,
    harness: RecoveryHarness,
}

impl RecoveryCampaign {
    /// Builds the campaign after validating the rollout options.
    ///
    /// # Errors
    ///
    /// Propagates [`RecoveryOptions::validate`] failures.
    pub fn try_new(cc: RecoveryCampaignConfig) -> Result<RecoveryCampaign, CampaignError> {
        let harness =
            RecoveryHarness::try_new(cc.noc.clone(), cc.opts).map_err(CampaignError::Substrate)?;
        Ok(RecoveryCampaign { cc, harness })
    }

    /// The campaign's configuration.
    pub fn config(&self) -> &RecoveryCampaignConfig {
        &self.cc
    }

    /// Runs every spec, `threads`-wide. One report per input spec, in
    /// input order; specs already present in a resumed journal are not
    /// re-run.
    ///
    /// # Errors
    ///
    /// Journal I/O and configuration-mismatch failures; per-rollout
    /// crashes are *outcomes*, not errors.
    pub fn run_specs(
        &self,
        specs: &[FaultSpec],
        threads: usize,
        opts: &RecoveryCampaignOptions,
    ) -> Result<RecoveryCampaignReport, CampaignError> {
        let journal = match &opts.checkpoint_dir {
            Some(dir) => Some(RecoveryJournal::open(dir, &self.cc)?),
            None => None,
        };
        let mut done: HashMap<FaultSpec, RecoverySiteReport> = HashMap::new();
        let mut corrupt_lines = 0usize;
        if let Some(j) = &journal {
            let (reports, corrupt) = jsonl::load_shards::<RecoverySiteReport>(&j.dir)?;
            if !opts.resume && !reports.is_empty() {
                return Err(CampaignError::Checkpoint {
                    path: j.dir.clone(),
                    detail: format!(
                        "directory already holds {} completed rollouts; pass resume=true to continue or point at a fresh directory",
                        reports.len()
                    ),
                });
            }
            if opts.resume {
                corrupt_lines = corrupt;
                for r in reports {
                    done.insert(r.spec, r); // later shards win on duplicates
                }
            }
        }
        let resumed = specs.iter().filter(|s| done.contains_key(s)).count();
        let todo: Vec<FaultSpec> = specs
            .iter()
            .copied()
            .filter(|s| !done.contains_key(s))
            .collect();

        let run_spec = |spec: &FaultSpec| -> RecoverySiteReport {
            RecoverySiteReport {
                spec: *spec,
                run: self.harness.run_isolated(Some(spec)),
            }
        };

        let mut fresh: Vec<RecoverySiteReport> = Vec::new();
        if threads <= 1 || todo.len() < 2 {
            let mut writer = match &journal {
                Some(j) => Some(jsonl::Appender::open_shard(&j.dir, 0)?),
                None => None,
            };
            for spec in &todo {
                if opts.cancelled() {
                    break;
                }
                let rep = run_spec(spec);
                if let Some(w) = &mut writer {
                    w.append(&rep)?;
                }
                fresh.push(rep);
            }
        } else {
            // Round-robin sharding, like the fault campaigns: worker `w`
            // takes specs `w`, `w+workers`, …, so the shard a rollout
            // lands in is a pure function of its index and the worker
            // count.
            let workers = threads.min(todo.len());
            let mut writers: Vec<Option<jsonl::Appender>> = Vec::new();
            for i in 0..workers {
                writers.push(match &journal {
                    Some(j) => Some(jsonl::Appender::open_shard(&j.dir, i)?),
                    None => None,
                });
            }
            let todo = &todo;
            let run_spec = &run_spec;
            let results = std::thread::scope(|scope| {
                let handles: Vec<_> = writers
                    .into_iter()
                    .enumerate()
                    .map(|(w, mut writer)| {
                        scope.spawn(move || -> Result<Vec<RecoverySiteReport>, CampaignError> {
                            let mut out = Vec::new();
                            for spec in todo.iter().skip(w).step_by(workers) {
                                if opts.cancelled() {
                                    break;
                                }
                                let rep = run_spec(spec);
                                if let Some(wr) = &mut writer {
                                    wr.append(&rep)?;
                                }
                                out.push(rep);
                            }
                            Ok(out)
                        })
                    })
                    .collect();
                let mut results = Vec::new();
                for h in handles {
                    results.push(h.join());
                }
                results
            });
            for r in results {
                match r {
                    Ok(Ok(v)) => fresh.extend(v),
                    Ok(Err(e)) => return Err(e),
                    Err(p) => {
                        return Err(CampaignError::WorkerLost {
                            detail: format!("{p:?}"),
                        })
                    }
                }
            }
        }

        for r in fresh {
            done.insert(r.spec, r);
        }
        let mut reports = Vec::with_capacity(specs.len());
        let mut interrupted = false;
        for spec in specs {
            match done.get(spec) {
                Some(r) => reports.push(r.clone()),
                None => interrupted = true,
            }
        }
        Ok(RecoveryCampaignReport {
            reports,
            resumed,
            corrupt_lines,
            interrupted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_opts() -> RecoveryOptions {
        RecoveryOptions {
            warmup: 200,
            active_window: 1_500,
            watchdog: Watchdog {
                cycle_budget: 60_000,
                stall_window: 1_500,
            },
            ..RecoveryOptions::paper_defaults()
        }
    }

    #[test]
    fn options_validation_propagates() {
        let mut opts = RecoveryOptions::paper_defaults();
        assert!(opts.validate().is_ok());
        opts.watchdog.cycle_budget = 0;
        assert!(opts.validate().is_err());
        opts = RecoveryOptions::paper_defaults();
        opts.arq.ack_timeout = 0;
        assert!(opts.validate().is_err());
        opts = RecoveryOptions::paper_defaults();
        opts.policy.reset_threshold = 0;
        assert!(opts.validate().is_err());
    }

    #[test]
    fn fault_free_baseline_is_exactly_once_with_no_containment() {
        let mut cfg = NocConfig::small_test();
        cfg.injection_rate = 0.05;
        let h = RecoveryHarness::try_new(cfg, small_opts()).expect("valid options");
        let run = h.run(None);
        assert_eq!(run.outcome, RecoveryOutcome::Quiescent);
        assert_eq!(run.verdict, DeliveryVerdict::ExactlyOnce);
        assert_eq!(run.alerts, 0, "fault-free runs never assert");
        assert_eq!(run.recovery.alerts_consumed, 0);
        assert!(run.trace.is_empty());
        assert!(run.transport.offered > 0);
        assert_eq!(run.transport.retransmits, 0);
        assert_eq!(run.delivery_ratio(), 1.0);
    }

    #[test]
    fn campaign_resume_is_bit_identical_at_any_worker_count() {
        let mut cfg = NocConfig::small_test();
        cfg.injection_rate = 0.05;
        let cc = RecoveryCampaignConfig {
            noc: cfg.clone(),
            opts: small_opts(),
        };
        let campaign = RecoveryCampaign::try_new(cc).expect("valid");
        let specs: Vec<FaultSpec> = standard_recovery_specs(&cfg, 1_200, 50, 10)
            .into_iter()
            .take(4)
            .collect();
        assert_eq!(specs.len(), 4);
        let dir = std::env::temp_dir().join(format!("nocalert-rcamp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = RecoveryCampaignOptions {
            checkpoint_dir: Some(dir.clone()),
            ..RecoveryCampaignOptions::default()
        };
        let first = campaign.run_specs(&specs, 2, &opts).expect("first run");
        assert_eq!(first.reports.len(), 4);
        assert!(!first.interrupted);

        // Populated dir without resume is refused.
        let err = campaign.run_specs(&specs, 1, &opts).unwrap_err();
        assert!(matches!(err, CampaignError::Checkpoint { .. }), "{err:?}");

        // Resume at a different worker count restores everything
        // bit-identically without re-running.
        let resumed = campaign
            .run_specs(
                &specs,
                3,
                &RecoveryCampaignOptions {
                    checkpoint_dir: Some(dir.clone()),
                    resume: true,
                    cancel: None,
                },
            )
            .expect("resume");
        assert_eq!(resumed.resumed, 4);
        assert_eq!(resumed.reports, first.reports);

        // A memory-only run at yet another worker count agrees too.
        let direct = campaign
            .run_specs(&specs, 1, &RecoveryCampaignOptions::default())
            .expect("direct");
        assert_eq!(direct.reports, first.reports);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crashed_runs_are_contained() {
        // The harness itself should not panic on a degenerate zero-node
        // exercise of run_isolated's happy path; the Crashed arm is
        // exercised indirectly by the campaign resilience tests.
        let mut cfg = NocConfig::small_test();
        cfg.injection_rate = 0.02;
        let h = RecoveryHarness::try_new(cfg, small_opts()).expect("valid options");
        let run = h.run_isolated(None);
        assert_eq!(run.outcome, RecoveryOutcome::Quiescent);
    }
}
