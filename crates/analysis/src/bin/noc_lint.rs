//! `noc-lint` — the static-verification driver.
//!
//! ```text
//! noc-lint [--json] [--mesh WxH] [--vcs N] [--nonatomic] [--speculative]
//!          [--pass coverage|prove|detect|model|lint[,...]] [--jobs N]
//!          [--timings] [--root DIR] [--allowlist FILE]
//! ```
//!
//! Runs the five static passes (checker-coverage, exhaustive proving,
//! static fault detectability, recovery-plane model checking, source
//! lints) on the canonical configuration (8×8 mesh, 2 VCs) or the one
//! described by the flags, and prints a human report or a stable JSON
//! document. `--jobs` fans the heavier passes out across worker threads;
//! stdout is byte-identical for every value. `--timings` prints per-pass
//! wall-clock durations on stderr (kept off stdout for the same reason).
//! Exits 1 if any error-level diagnostic was produced, 2 on usage errors.

use noc_types::config::{BufferPolicy, NocConfig};
use nocalert_analysis::{canonical_config, find_repo_root, run, PassSelection};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Options {
    json: bool,
    cfg: NocConfig,
    passes: PassSelection,
    jobs: usize,
    timings: bool,
    root: Option<PathBuf>,
    allowlist: Option<PathBuf>,
}

fn usage(err: &str) -> ExitCode {
    eprintln!("noc-lint: {err}");
    eprintln!(
        "usage: noc-lint [--json] [--mesh WxH] [--vcs N] [--nonatomic] [--speculative]\n\
         \x20               [--pass coverage|prove|detect|model|lint[,...]] [--jobs N]\n\
         \x20               [--timings] [--root DIR] [--allowlist FILE]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        cfg: canonical_config(),
        passes: PassSelection::default(),
        jobs: 1,
        timings: false,
        root: None,
        allowlist: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--json" => opts.json = true,
            "--timings" => opts.timings = true,
            "--nonatomic" => opts.cfg.buffer_policy = BufferPolicy::NonAtomic,
            "--speculative" => opts.cfg.speculative = true,
            "--mesh" => {
                let v = value("--mesh")?;
                let (w, h) = v
                    .split_once('x')
                    .ok_or_else(|| format!("--mesh wants WxH, got `{v}`"))?;
                let (w, h) = (
                    w.parse::<u8>().map_err(|e| format!("--mesh width: {e}"))?,
                    h.parse::<u8>().map_err(|e| format!("--mesh height: {e}"))?,
                );
                if w == 0 || h == 0 {
                    return Err("--mesh dimensions must be non-zero".into());
                }
                opts.cfg.mesh = noc_types::geometry::Mesh::new(w, h);
            }
            "--vcs" => {
                let v = value("--vcs")?;
                opts.cfg.vcs_per_port = v.parse().map_err(|e| format!("--vcs: {e}"))?;
            }
            "--jobs" => {
                let v = value("--jobs")?;
                let n: usize = v.parse().map_err(|e| format!("--jobs: {e}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                opts.jobs = n;
            }
            "--pass" => {
                let v = value("--pass")?;
                let mut sel = PassSelection {
                    coverage: false,
                    prove: false,
                    detect: false,
                    model: false,
                    lint: false,
                };
                for p in v.split(',') {
                    match p {
                        "coverage" => sel.coverage = true,
                        "prove" => sel.prove = true,
                        "detect" => sel.detect = true,
                        "model" => sel.model = true,
                        "lint" => sel.lint = true,
                        other => return Err(format!("unknown pass `{other}`")),
                    }
                }
                opts.passes = sel;
            }
            "--root" => opts.root = Some(PathBuf::from(value("--root")?)),
            "--allowlist" => opts.allowlist = Some(PathBuf::from(value("--allowlist")?)),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    opts.cfg
        .validate()
        .map_err(|e| format!("invalid configuration: {e}"))?;
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => return usage(&e),
    };
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = match opts.root.or_else(|| find_repo_root(&cwd)) {
        Some(r) => r,
        None => {
            return usage("could not locate the repository root (pass --root)");
        }
    };
    let allowlist = opts
        .allowlist
        .unwrap_or_else(|| root.join("noc-lint.allow"));

    let mut timings: Vec<(&'static str, Duration)> = Vec::new();
    let report = run(
        &opts.cfg,
        &root,
        &allowlist,
        opts.passes,
        opts.jobs,
        opts.timings.then_some(&mut timings),
    );
    if opts.timings {
        for (pass, d) in &timings {
            eprintln!("noc-lint: pass {pass:<8} {:>8.1} ms", d.as_secs_f64() * 1e3);
        }
    }

    // Build the whole report in memory and write it once, tolerating a
    // closed pipe (`noc-lint --json | head` must not abort).
    use std::fmt::Write as _;
    let mut out = String::new();
    if opts.json {
        match serde_json::to_string_pretty(&report) {
            Ok(s) => {
                let _ = writeln!(out, "{s}");
            }
            Err(e) => {
                eprintln!("noc-lint: JSON serialization failed: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        for d in &report.diagnostics {
            let _ = writeln!(out, "{d}");
        }
        if let Some(c) = &report.coverage {
            let _ = writeln!(
                out,
                "coverage: {}/{} sites covered, {} live signal kinds, \
                 min {} checker(s) per site",
                c.covered_sites, c.total_sites, c.live_signal_kinds, c.min_constrainers_per_site
            );
        }
        for p in &report.proofs {
            let _ = writeln!(
                out,
                "prove: {} — {} cases, {} violations{}",
                p.cone,
                p.cases,
                p.violations,
                if p.violations == 0 { " (proved)" } else { "" }
            );
        }
        if let Some(d) = &report.detect {
            let _ = writeln!(
                out,
                "detect: {} sites × 3 fault models = {} cases — {} detected, {} masked, \
                 {} blind ({} states, {} benign reroutes)",
                d.sites,
                d.fault_cases,
                d.detected_cases,
                d.masked_cases,
                d.blind_cases,
                d.states_evaluated,
                d.benign_reroutes
            );
            let _ = writeln!(
                out,
                "detect: worst checker latency {} step(s); stall-monitor bound {} cycle(s)",
                d.worst_latency_steps, d.stall_monitor_bound
            );
            // The slowest sites, for a quick read on where the latency
            // bound comes from (full table in --json).
            let mut slow: Vec<_> = d
                .per_site
                .iter()
                .filter_map(|s| s.worst_latency_steps.map(|l| (l, s)))
                .collect();
            slow.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.site.cmp(&b.1.site)));
            for (lat, s) in slow.iter().take(3) {
                let _ = writeln!(
                    out,
                    "detect:   {} ({}): latency {} step(s) via {}",
                    s.site,
                    s.fault,
                    lat,
                    s.detectors.join(",")
                );
            }
        }
        if let Some(m) = &report.model {
            let _ = writeln!(
                out,
                "model: {} states, {} transitions ({} ladder), {} terminal — {} violation(s); \
                 horizon {}t vs worst schedule {}t ({})",
                m.states_explored,
                m.transitions,
                m.ladder_transitions,
                m.terminal_states,
                m.violations,
                m.horizon_ticks,
                m.worst_schedule_ticks,
                if m.mark_permanent {
                    "mark permanent"
                } else {
                    "MARK CAN EXPIRE"
                }
            );
            for trace in &m.counterexamples {
                let _ = writeln!(out, "{trace}");
            }
        }
        if let Some(l) = &report.lint {
            let _ = writeln!(
                out,
                "lint: {} files scanned, {} forbidden hit(s), {} allowlisted",
                l.files_scanned, l.forbidden_hits, l.allowlisted_hits
            );
        }
        let _ = writeln!(
            out,
            "noc-lint: {} error(s), {} warning(s), {} note(s)",
            report.counts.error, report.counts.warning, report.counts.info
        );
    }
    {
        use std::io::Write as _;
        let _ = std::io::stdout().write_all(out.as_bytes());
    }

    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
