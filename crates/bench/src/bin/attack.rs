//! **Attack campaign (DESIGN.md §14)** — the adversarial fault plane:
//! compromised-router attack models acting *past* the checkers, judged
//! by a detection/mitigation matrix. Every (attacker model × router ×
//! intensity) cell is classified as detected-by-bank,
//! caught-by-delivery-oracle, mitigated-by-ARQ, vacuous, or — the bucket
//! this campaign exists to rule out — undetected loss. The acceptance
//! bar asserted here (exit code 1 on violation): **zero cells land in
//! the undetected-loss bucket and zero rollouts crash**.
//!
//! Alongside the matrix, the campaign reports the detection-latency
//! distribution (attacker going live → first genuine evidence) and the
//! wire overhead per offered message against a no-attack baseline run —
//! the adversarial counterpart of the Figure-7 transient-fault numbers.
//!
//! ```text
//! cargo run --release -p nocalert-bench --bin attack -- \
//!     [--smoke] [--mesh K] [--rate F] [--routers N] [--every E] \
//!     [--threads T] [--seed S] [--checkpoint-dir DIR] [--resume] \
//!     [--cycle-budget C] [--stall-window C] [--json PATH]
//! ```
//!
//! `--smoke` runs the CI gate instead of the sweep: a 4×4 mesh, one cell
//! per attacker model at a central router, asserting an accepted matrix.
//!
//! Mesh shape mirrors the recovery campaign (one message class, sibling
//! VCs) so containment always leaves a lane for retransmissions.

use fault::Watchdog;
use golden::{
    standard_cells, AttackCampaign, AttackCampaignConfig, AttackCampaignOptions,
    AttackCampaignReport, AttackCell, AttackClass, AttackHarness, RecoveryHarness, RecoveryOptions,
    RecoveryOutcome,
};
use noc_types::{AttackKind, NocConfig};
use nocalert_bench::{maybe_write_json, row, Args};
use serde::Serialize;
use std::path::PathBuf;

fn fail(msg: &str) -> ! {
    eprintln!("[attack] fatal: {msg}");
    std::process::exit(2);
}

fn attack_noc(args: &Args, mesh: u8) -> NocConfig {
    let mut noc = NocConfig::paper_baseline();
    let k: u8 = args.get("mesh", mesh);
    noc.mesh = noc_types::Mesh::new(k, k);
    noc.vcs_per_port = 2;
    noc.message_classes = 1;
    noc.packet_lengths = vec![5];
    noc.injection_rate = args.get("rate", 0.05);
    noc.seed = args.get("seed", noc.seed);
    noc
}

fn options_from(args: &Args) -> RecoveryOptions {
    let mut opts = RecoveryOptions::paper_defaults();
    opts.watchdog = Watchdog {
        cycle_budget: args.get("cycle-budget", opts.watchdog.cycle_budget),
        stall_window: args.get("stall-window", opts.watchdog.stall_window),
    };
    if let Err(e) = opts.validate() {
        fail(&format!("invalid options: {e}"));
    }
    opts
}

fn kind_label(kind: AttackKind) -> &'static str {
    match kind {
        AttackKind::PacketDrop { .. } => "packet-drop",
        AttackKind::FlitDrop { .. } => "flit-drop",
        AttackKind::PayloadCorrupt { .. } => "payload-corrupt",
        AttackKind::Misroute { .. } => "misroute",
        AttackKind::AckSpoof { .. } => "ack-spoof",
        AttackKind::CtlReplay { .. } => "ctl-replay",
        AttackKind::AlertSuppress => "alert-suppress",
        AttackKind::AlertFlood { .. } => "alert-flood",
    }
}

fn kind_intensity(kind: AttackKind) -> u32 {
    match kind {
        AttackKind::PacketDrop { every }
        | AttackKind::FlitDrop { every }
        | AttackKind::PayloadCorrupt { every }
        | AttackKind::Misroute { every }
        | AttackKind::AckSpoof { every }
        | AttackKind::CtlReplay { every } => every,
        AttackKind::AlertSuppress => 0,
        AttackKind::AlertFlood { per_cycle } => per_cycle.into(),
    }
}

/// `p` in [0,100] over an unsorted sample; 0 for an empty one.
fn percentile(sample: &mut [u64], p: usize) -> u64 {
    if sample.is_empty() {
        return 0;
    }
    sample.sort_unstable();
    let idx = (sample.len() - 1) * p / 100;
    sample[idx]
}

/// One row of the printed matrix: an attacker model at one intensity,
/// aggregated over the swept routers.
#[derive(Debug, Default, Serialize)]
struct MatrixRow {
    cells: u64,
    vacuous: u64,
    detected_by_bank: u64,
    caught_by_oracle: u64,
    mitigated_by_arq: u64,
    undetected_loss: u64,
    crashed: u64,
    detection_latency: Vec<u64>,
    overhead_sum: f64,
}

impl MatrixRow {
    fn absorb(&mut self, run: &golden::AttackRun) {
        self.cells += 1;
        match run.class {
            AttackClass::Vacuous => self.vacuous += 1,
            AttackClass::DetectedByBank => self.detected_by_bank += 1,
            AttackClass::CaughtByOracle => self.caught_by_oracle += 1,
            AttackClass::MitigatedByArq => self.mitigated_by_arq += 1,
            AttackClass::UndetectedLoss => self.undetected_loss += 1,
        }
        if matches!(run.outcome, RecoveryOutcome::Crashed(_)) {
            self.crashed += 1;
        }
        if let Some(lat) = run.detection_latency() {
            self.detection_latency.push(lat);
        }
        self.overhead_sum += run.overhead_per_message();
    }
}

#[derive(Debug, Serialize)]
struct Report {
    mesh: u8,
    routers_swept: Vec<u16>,
    intensities: Vec<u32>,
    cells: usize,
    resumed: usize,
    interrupted: bool,
    baseline_overhead: f64,
    rows: Vec<(String, u32, MatrixRow)>,
    undetected_loss: u64,
    crashed: u64,
}

fn campaign_opts(args: &Args) -> AttackCampaignOptions {
    AttackCampaignOptions {
        checkpoint_dir: args.str("checkpoint-dir").map(PathBuf::from),
        resume: args.flag("resume"),
        cancel: None,
    }
}

/// No-attack, no-fault rollout under identical options — the overhead
/// baseline the matrix rows are compared against.
fn baseline_overhead(noc: &NocConfig, opts: RecoveryOptions) -> f64 {
    let harness = match RecoveryHarness::try_new(noc.clone(), opts) {
        Ok(h) => h,
        Err(e) => fail(&format!("baseline harness rejected config: {e}")),
    };
    harness.run(None).overhead_per_message()
}

fn print_report(report: &AttackCampaignReport, rows: &[(String, u32, MatrixRow)], baseline: f64) {
    println!(
        "\n{:<18} {:>5} | {:>8} {:>8} {:>8} {:>8} {:>8} | {:>16} {:>9}",
        "model",
        "every",
        "bank",
        "oracle",
        "arq",
        "vacuous",
        "SILENT",
        "det.lat p50/p90",
        "overhead"
    );
    for (label, every, r) in rows {
        let mut lat = r.detection_latency.clone();
        let (p50, p90) = (percentile(&mut lat, 50), percentile(&mut lat, 90));
        println!(
            "{:<18} {:>5} | {:>8} {:>8} {:>8} {:>8} {:>8} | {:>8}/{:<7} {:>8.3}",
            label,
            every,
            r.detected_by_bank,
            r.caught_by_oracle,
            r.mitigated_by_arq,
            r.vacuous,
            r.undetected_loss,
            p50,
            p90,
            r.overhead_sum / r.cells.max(1) as f64,
        );
    }
    println!(
        "\nbaseline overhead (no attack): {baseline:.3} extra packets per offered message; \
         {} cells resumed from journal",
        report.resumed
    );
}

fn aggregate(report: &AttackCampaignReport) -> Vec<(String, u32, MatrixRow)> {
    let mut rows: Vec<(String, u32, MatrixRow)> = Vec::new();
    for cr in &report.reports {
        let label = kind_label(cr.cell.spec.kind).to_string();
        let every = kind_intensity(cr.cell.spec.kind);
        let at = match rows.iter().position(|(l, e, _)| *l == label && *e == every) {
            Some(i) => i,
            None => {
                rows.push((label, every, MatrixRow::default()));
                rows.len() - 1
            }
        };
        rows[at].2.absorb(&cr.run);
    }
    rows
}

fn sweep(args: &Args) -> i32 {
    let noc = attack_noc(args, 8);
    let opts = options_from(args);
    let threads: usize = args.get(
        "threads",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
    );
    let seed: u64 = args.get("attack-seed", 1u64);
    let start = opts.warmup + 500;

    // Attacker placement: a deterministic spread over the mesh interior
    // and edge (corner routers see the thinnest traffic, centre the
    // densest — both matter for vacuity and detectability).
    let n = noc.mesh.len() as u16;
    let want: usize = args.get("routers", 4);
    let stride = (n as usize / want.max(1)).max(1);
    let routers: Vec<u16> = (0..n).step_by(stride).take(want.max(1)).collect();

    // Intensity ladder: every=1 is the loudest attacker, larger periods
    // approach the stealthy limit. `--every E` restricts to one rung.
    let pick: u32 = args.get("every", 0u32);
    let intensities: Vec<u32> = if pick == 0 { vec![1, 2, 4] } else { vec![pick] };

    let mut cells: Vec<AttackCell> = Vec::new();
    for (i, &every) in intensities.iter().enumerate() {
        cells.extend(standard_cells(
            &noc,
            &routers,
            every,
            start,
            seed.wrapping_add(i as u64),
        ));
    }
    // The alert-channel models (suppress/flood) have no `every` knob, so
    // the intensity rungs repeat them with distinct attacker seeds —
    // extra samples of the same model, which the matrix aggregates.
    println!(
        "== Attack campaign: {}x{} mesh, {} attacker routers x {} intensities -> {} cells ==",
        noc.mesh.width(),
        noc.mesh.height(),
        routers.len(),
        intensities.len(),
        cells.len()
    );

    let cc = AttackCampaignConfig {
        noc: noc.clone(),
        opts,
    };
    let campaign = match AttackCampaign::try_new(cc) {
        Ok(c) => c,
        Err(e) => fail(&format!("campaign rejected config: {e}")),
    };
    let t0 = std::time::Instant::now();
    let report = match campaign.run_cells(&cells, threads, &campaign_opts(args)) {
        Ok(r) => r,
        Err(e) => fail(&format!("campaign failed: {e}")),
    };
    eprintln!(
        "[attack] {} rollouts in {:.1}s on {threads} threads",
        report.reports.len() - report.resumed,
        t0.elapsed().as_secs_f64()
    );

    let baseline = baseline_overhead(&noc, opts);
    let rows = aggregate(&report);
    print_report(&report, &rows, baseline);

    let undetected: u64 = rows.iter().map(|(_, _, r)| r.undetected_loss).sum();
    let crashed: u64 = rows.iter().map(|(_, _, r)| r.crashed).sum();
    let json = Report {
        mesh: noc.mesh.width(),
        routers_swept: routers,
        intensities,
        cells: cells.len(),
        resumed: report.resumed,
        interrupted: report.interrupted,
        baseline_overhead: baseline,
        rows,
        undetected_loss: undetected,
        crashed,
    };
    maybe_write_json(args, &json);

    if report.interrupted {
        println!("\nINTERRUPTED: the sweep was cancelled before every cell ran.");
        return 1;
    }
    if report.accepted() {
        println!(
            "\nACCEPTED: zero undetected-loss cells across {} attack cells.",
            json.cells
        );
        0
    } else {
        println!("\nVIOLATED: {undetected} undetected-loss cell(s), {crashed} crashed rollout(s).");
        1
    }
}

/// The CI gate: a 4×4 mesh, one cell per attacker model at a central
/// router, an accepted matrix or a non-zero exit.
fn smoke(args: &Args) -> i32 {
    let noc = attack_noc(args, 4);
    let opts = options_from(args);
    let start = opts.warmup + 500;
    let harness = match AttackHarness::try_new(noc.clone(), opts) {
        Ok(h) => h,
        Err(e) => fail(&format!("harness rejected config: {e}")),
    };
    // Centre-of-mesh attacker sees the densest traffic mix, at full rate
    // (every=1): forged controls are injected downstream of the attacker's
    // egress filter, so even the loudest spoofing model genuinely
    // exercises the hardened ARQ path.
    let router = (noc.mesh.len() / 2) as u16 + noc.mesh.width() as u16 / 2;
    let cells = standard_cells(&noc, &[router], 1, start, 1);
    println!(
        "== Attack smoke: 4x4 mesh, {} attacker models at router {router} ==",
        cells.len()
    );
    let mut failures = 0;
    for cell in &cells {
        let run = match harness.run_isolated(&cell.spec, cell.fault.as_ref()) {
            Ok(r) => r,
            Err(e) => fail(&format!("cell rejected: {e}")),
        };
        let ok = run.class != AttackClass::UndetectedLoss
            && !matches!(run.outcome, RecoveryOutcome::Crashed(_));
        row(
            kind_label(cell.spec.kind),
            format!(
                "{:?} ({:?}, {} interference, {} suspicions, {} alerts)",
                run.class,
                run.verdict,
                golden::effective_interference(
                    &run.attack,
                    run.intents_performed,
                    run.suppressed_alerts
                ),
                run.suspicions,
                run.bank_alerts
            ),
        );
        if !ok {
            failures += 1;
            eprintln!(
                "[attack] smoke FAILED for {}: {:?} / {:?}",
                kind_label(cell.spec.kind),
                run.class,
                run.outcome
            );
        }
    }
    if failures == 0 {
        println!("\nSMOKE PASSED: no undetected-loss cell across every attacker model.");
        0
    } else {
        println!("\nSMOKE FAILED: {failures} attacker model(s) escaped unexplained.");
        1
    }
}

fn main() {
    let args = Args::from_env();
    let code = if args.flag("smoke") {
        smoke(&args)
    } else {
        sweep(&args)
    };
    std::process::exit(code);
}
