//! Criterion micro-benchmarks of the simulator substrate: cycle
//! throughput across mesh sizes, VC counts and injection rates, plus the
//! cost of the building blocks (arbiters, buffers, routing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noc_sim::arbiter::RoundRobin;
use noc_sim::buffer::VcBuffer;
use noc_sim::routing::route;
use noc_sim::Network;
use noc_types::flit::make_packet;
use noc_types::geometry::{Coord, Mesh, NodeId};
use noc_types::{NocConfig, PacketId, RoutingAlgorithm};
use std::hint::black_box;

fn bench_network_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("network_step");
    g.sample_size(10);
    for k in [4u8, 8] {
        let mut cfg = NocConfig::paper_baseline();
        cfg.mesh = Mesh::new(k, k);
        cfg.injection_rate = 0.10;
        let mut net = Network::new(cfg);
        net.run(1_000); // warm
        g.bench_with_input(BenchmarkId::new("mesh", k), &k, |b, _| {
            b.iter(|| {
                net.step();
                black_box(net.cycle())
            });
        });
    }
    g.finish();
}

fn bench_vc_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("network_step_vcs");
    g.sample_size(10);
    for vcs in [2u8, 4, 8] {
        let mut cfg = NocConfig::small_test();
        cfg.vcs_per_port = vcs;
        cfg.message_classes = 2;
        cfg.packet_lengths = vec![5, 5];
        let mut net = Network::new(cfg);
        net.run(500);
        g.bench_with_input(BenchmarkId::new("vcs", vcs), &vcs, |b, _| {
            b.iter(|| {
                net.step();
                black_box(net.cycle())
            });
        });
    }
    g.finish();
}

fn bench_arbiter(c: &mut Criterion) {
    c.bench_function("round_robin_arbitrate", |b| {
        let mut arb = RoundRobin::new(20);
        let mut req = 0x5_A5A5u64;
        b.iter(|| {
            req = req.rotate_left(1);
            black_box(arb.arbitrate(black_box(req)))
        });
    });
}

fn bench_buffer(c: &mut Criterion) {
    c.bench_function("vc_buffer_push_pop", |b| {
        let mut buf = VcBuffer::new(5);
        let flit = make_packet(PacketId(1), 1, NodeId(0), NodeId(1), 0, 1, 0)[0];
        b.iter(|| {
            buf.push(black_box(flit));
            black_box(buf.pop())
        });
    });
}

fn bench_routing(c: &mut Criterion) {
    c.bench_function("xy_route", |b| {
        let mut x = 0u8;
        b.iter(|| {
            x = (x + 1) % 8;
            black_box(route(
                RoutingAlgorithm::XY,
                Coord::new(x, 3),
                Coord::new(7 - x, 5),
            ))
        });
    });
}

criterion_group!(
    benches,
    bench_network_step,
    bench_vc_sweep,
    bench_arbiter,
    bench_buffer,
    bench_routing
);
criterion_main!(benches);
