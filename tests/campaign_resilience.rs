//! End-to-end tests of the resilient campaign runtime: panic isolation,
//! watchdog termination, checkpoint/resume, thread-count invariance and
//! cancellation. These drive the public API exactly the way the bench
//! binaries do and check the ISSUE's acceptance criteria: a campaign
//! containing a panicking run and a deadlocking run completes end-to-end
//! with structured outcomes, and `--resume` after an interruption
//! reproduces the exact aggregates of an uninterrupted run for any
//! worker count.

use fault::{FaultSpec, HangKind, Watchdog};
use golden::stats::breakdown;
use golden::{Campaign, CampaignConfig, Detector, ResilienceOptions, RunOutcome};
use noc_types::site::{FaultKind, SignalKind, SiteRef};
use noc_types::NocConfig;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

fn small_campaign() -> Campaign {
    let mut noc = NocConfig::small_test();
    noc.injection_rate = 0.08;
    Campaign::new(CampaignConfig {
        noc,
        warmup: 300,
        active_window: 400,
        drain_deadline: 10_000,
        forever_epoch: 300,
    })
}

fn transient_specs(c: &Campaign, n: usize) -> Vec<FaultSpec> {
    fault::sample::stride(&fault::enumerate_sites(&c.config().noc), n)
        .into_iter()
        .map(|s| FaultSpec::transient(s, c.injection_cycle()))
        .collect()
}

/// A spec whose fault model divides by zero on first evaluation: the
/// deliberate panic vector (`FaultSpec::validate` rejects it, the
/// rollout path does not, so it exercises the isolation boundary).
fn poisoned_spec(c: &Campaign) -> FaultSpec {
    FaultSpec {
        site: SiteRef {
            router: 1,
            port: 0,
            vc: 0,
            signal: SignalKind::Sa1Req,
            bit: 0,
        },
        kind: FaultKind::Intermittent { period: 0, duty: 1 },
        start: c.injection_cycle(),
    }
}

/// A permanent grant-path fault that provably wedges the small network
/// (found by sweeping the site universe; request suppression leaves the
/// victim port's flits stuck forever, so the drain phase stalls).
fn deadlocking_spec(c: &Campaign) -> FaultSpec {
    FaultSpec::permanent(
        SiteRef {
            router: 5,
            port: 4,
            vc: 0,
            signal: SignalKind::Sa1Req,
            bit: 0,
        },
        c.injection_cycle(),
    )
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("nocalert-resilience-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn campaign_with_crash_and_deadlock_completes_with_structured_outcomes() {
    let c = small_campaign();
    let mut specs = transient_specs(&c, 12);
    specs.insert(3, poisoned_spec(&c));
    specs.insert(7, deadlocking_spec(&c));
    let opts = ResilienceOptions {
        watchdog: Some(Watchdog {
            cycle_budget: u64::MAX,
            stall_window: 200,
        }),
        ..ResilienceOptions::default()
    };
    let report = c.run_many_resilient(&specs, 2, &opts).unwrap();

    assert_eq!(report.reports.len(), specs.len(), "every site reported");
    assert!(!report.interrupted);

    let crashed: Vec<_> = report
        .reports
        .iter()
        .filter(|r| r.outcome.is_crashed())
        .collect();
    assert_eq!(crashed.len(), 1);
    match &crashed[0].outcome {
        RunOutcome::Crashed {
            site,
            injected_at,
            payload,
            ..
        } => {
            assert_eq!(*site, poisoned_spec(&c).site);
            assert_eq!(*injected_at, c.injection_cycle());
            assert!(payload.contains("divisor of zero"), "{payload}");
        }
        _ => unreachable!(),
    }

    let deadlocked: Vec<_> = report
        .reports
        .iter()
        .filter(|r| r.outcome.is_deadlock())
        .collect();
    assert_eq!(deadlocked.len(), 1);
    match &deadlocked[0].outcome {
        RunOutcome::Deadlock { result, hang } => {
            assert_eq!(result.site, deadlocking_spec(&c).site);
            assert_eq!(hang.kind, HangKind::NoProgress);
            assert!(hang.at_cycle > c.injection_cycle());
            assert!(hang.stalled_for >= 200);
            // The truncated run still classified against the oracle, and
            // an undrained network is a bounded-delivery violation.
            assert!(result.malicious());
        }
        _ => unreachable!(),
    }

    // Both terminations re-ran deterministically.
    assert_eq!(report.determinism_violations(), 0);
    // Healthy runs classified normally and feed the stats unchanged.
    let results = report.results();
    assert_eq!(results.len(), specs.len() - 1, "only the crash is excluded");
    let b = breakdown(&results, Detector::NoCAlert);
    assert_eq!(b.runs, results.len());
}

#[test]
fn resume_after_interruption_reproduces_aggregates_for_any_worker_count() {
    let c = small_campaign();
    let specs = transient_specs(&c, 30);
    let dir = tmpdir("resume");

    // Reference: uninterrupted, no checkpointing, single-threaded.
    let reference = c
        .run_many_resilient(&specs, 1, &ResilienceOptions::default())
        .unwrap();
    let ref_stats = breakdown(&reference.results(), Detector::NoCAlert);

    // Interrupted first attempt: the cancel flag trips after the first
    // shard append (simulating a mid-campaign kill; the per-line flush
    // makes everything already appended durable).
    let flag = Arc::new(AtomicBool::new(false));
    let watcher = Arc::clone(&flag);
    let probe = dir.join("shard-w0.jsonl");
    let poller = std::thread::spawn(move || loop {
        if probe.exists() {
            watcher.store(true, std::sync::atomic::Ordering::SeqCst);
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    });
    let first = c
        .run_many_resilient(
            &specs,
            1,
            &ResilienceOptions {
                checkpoint_dir: Some(dir.clone()),
                cancel: Some(flag),
                ..ResilienceOptions::default()
            },
        )
        .unwrap();
    poller.join().unwrap();
    assert!(first.interrupted, "cancellation must interrupt the sweep");
    assert!(
        first.reports.len() < specs.len(),
        "some sites must remain for the resumed run"
    );

    // Resume with a different worker count: exact same aggregates.
    let resumed = c
        .run_many_resilient(
            &specs,
            4,
            &ResilienceOptions {
                checkpoint_dir: Some(dir.clone()),
                resume: true,
                ..ResilienceOptions::default()
            },
        )
        .unwrap();
    assert!(!resumed.interrupted);
    assert!(resumed.resumed >= 1);
    assert_eq!(resumed.reports, reference.reports);
    let resumed_stats = breakdown(&resumed.results(), Detector::NoCAlert);
    assert_eq!(resumed_stats, ref_stats);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpointed_workers_are_bit_identical_across_thread_counts() {
    let c = small_campaign();
    let specs = transient_specs(&c, 24);
    let d1 = tmpdir("w1");
    let d4 = tmpdir("w4");
    let run = |threads: usize, dir: &PathBuf| {
        c.run_many_resilient(
            &specs,
            threads,
            &ResilienceOptions {
                checkpoint_dir: Some(dir.clone()),
                ..ResilienceOptions::default()
            },
        )
        .unwrap()
    };
    let one = run(1, &d1);
    let four = run(4, &d4);
    assert_eq!(one, four);

    // A full re-read of each checkpoint also reproduces the aggregates:
    // the JSONL round-trip is lossless.
    for dir in [&d1, &d4] {
        let reread = c
            .run_many_resilient(
                &specs,
                2,
                &ResilienceOptions {
                    checkpoint_dir: Some(dir.clone()),
                    resume: true,
                    ..ResilienceOptions::default()
                },
            )
            .unwrap();
        assert_eq!(reread.resumed, specs.len(), "nothing left to run");
        assert_eq!(reread.reports, one.reports);
    }
    std::fs::remove_dir_all(&d1).unwrap();
    std::fs::remove_dir_all(&d4).unwrap();
}
