//! Structured diagnostics — the output vocabulary of every `noc-lint` pass.
//!
//! Each finding is a [`Diagnostic`] with a stable code (`NL1xx` coverage,
//! `NL2xx` proving, `NL3xx` lint), a severity, and whatever provenance the
//! pass can attach: a fault site, a checker id, or a source location. The
//! driver renders them for humans or as JSON (`--json`), and CI fails on
//! any [`Severity::Error`].

use serde::Serialize;
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Severity {
    /// Informational note (e.g. an allowlisted lint hit, a sole-observer
    /// redundancy report).
    Info,
    /// Suspicious but not gating.
    Warning,
    /// Gating: the static claim does not hold. `noc-lint` exits non-zero.
    Error,
}

/// Which analysis pass produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Pass {
    /// Pass 1: checker-coverage / blind-spot analysis over the signal graph.
    Coverage,
    /// Pass 2: exhaustive invariant proving over small combinational cones.
    Prove,
    /// Pass 3: source-level repo lints.
    Lint,
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Pass::Coverage => "coverage",
            Pass::Prove => "prove",
            Pass::Lint => "lint",
        })
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Diagnostic {
    /// Producing pass.
    pub pass: Pass,
    /// Stable machine-readable code (`NL101`, `NL210`, ...).
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// Fault-site provenance (`n3/RC[p1]/RcOutDir.2`), when site-scoped.
    pub site: Option<String>,
    /// Checker provenance (Table-1 number), when checker-scoped.
    pub checker: Option<u8>,
    /// Source file (repo-relative), when source-scoped.
    pub file: Option<String>,
    /// 1-based line number, when source-scoped.
    pub line: Option<u32>,
}

impl Diagnostic {
    /// A bare diagnostic with no provenance attached.
    pub fn new(pass: Pass, code: &'static str, severity: Severity, message: String) -> Diagnostic {
        Diagnostic {
            pass,
            code,
            severity,
            message,
            site: None,
            checker: None,
            file: None,
            line: None,
        }
    }

    /// Attaches fault-site provenance.
    pub fn with_site(mut self, site: impl fmt::Display) -> Diagnostic {
        self.site = Some(site.to_string());
        self
    }

    /// Attaches checker provenance.
    pub fn with_checker(mut self, id: u8) -> Diagnostic {
        self.checker = Some(id);
        self
    }

    /// Attaches source provenance.
    pub fn with_source(mut self, file: impl Into<String>, line: u32) -> Diagnostic {
        self.file = Some(file.into());
        self.line = Some(line);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{sev}[{}/{}]", self.code, self.pass)?;
        if let (Some(file), Some(line)) = (&self.file, self.line) {
            write!(f, " {file}:{line}")?;
        }
        if let Some(site) = &self.site {
            write!(f, " {site}")?;
        }
        if let Some(c) = self.checker {
            write!(f, " inv{c}")?;
        }
        write!(f, ": {}", self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_info_below_error() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn display_includes_provenance() {
        let d = Diagnostic::new(
            Pass::Lint,
            "NL301",
            Severity::Error,
            "forbidden call".into(),
        )
        .with_source("crates/x/src/lib.rs", 12);
        let s = d.to_string();
        assert!(s.contains("error[NL301/lint]"), "{s}");
        assert!(s.contains("crates/x/src/lib.rs:12"), "{s}");
    }

    #[test]
    fn site_and_checker_provenance_render() {
        let d = Diagnostic::new(
            Pass::Coverage,
            "NL110",
            Severity::Error,
            "blind spot".into(),
        )
        .with_site("n0/RC[p0]/RcOutDir.0")
        .with_checker(3);
        let s = d.to_string();
        assert!(s.contains("n0/RC[p0]/RcOutDir.0"), "{s}");
        assert!(s.contains("inv3"), "{s}");
    }
}
