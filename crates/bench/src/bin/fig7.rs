//! **Figure 7** — cumulative fault-detection delay distribution over true
//! positives, NoCAlert vs. ForEVeR (epoch = 1,500 cycles).
//!
//! Paper landmarks: NoCAlert detects 97% instantaneously, 99% within 9
//! cycles, 100% within 28; ForEVeR needs ~3,000 cycles for 99% and up to
//! ~12,000 — a >100× latency gap.
//!
//! ```text
//! cargo run --release -p nocalert-bench --bin fig7 -- [--sites N|--full] \
//!     [--warm W] [--threads T] [--json out.json] \
//!     [--checkpoint-dir D] [--resume]
//! ```

use golden::stats::{cdf_at, latency_cdf};
use golden::Detector;
use nocalert_bench::{maybe_write_json, row, Args, Experiment};
use serde::Serialize;

#[derive(Serialize)]
struct Fig7Out {
    nocalert_cdf: Vec<(u64, f64)>,
    forever_cdf: Vec<(u64, f64)>,
}

fn main() {
    let args = Args::from_env();
    let exp = Experiment::from_args(&args);
    let warm: u64 = args.get("warm", 32_000);

    println!("== Figure 7: cumulative detection-delay distribution (true positives) ==");
    let (_c, results) = exp.run_campaign(warm);

    let na = latency_cdf(&results, Detector::NoCAlert);
    let fv = latency_cdf(&results, Detector::ForEVeR);

    println!("\nNoCAlert CDF (latency cycles -> cumulative %):");
    for (l, p) in na.iter().take(12) {
        println!("  {l:>6}  {p:6.2}%");
    }
    if na.len() > 12 {
        println!("  …");
    }
    println!("ForEVeR CDF:");
    for (l, p) in fv.iter().take(12) {
        println!("  {l:>6}  {p:6.2}%");
    }

    println!("\nLandmarks (paper values in parentheses):");
    row(
        "NoCAlert instantaneous (97%)",
        format!("{:.1}%", cdf_at(&na, 0)),
    );
    row(
        "NoCAlert within 9 cycles (99%)",
        format!("{:.1}%", cdf_at(&na, 9)),
    );
    row(
        "NoCAlert worst case (28 cycles)",
        na.last().map(|(l, _)| *l).unwrap_or(0),
    );
    row(
        "ForEVeR 99% boundary (~3,000 cycles)",
        fv.iter()
            .find(|(_, p)| *p >= 99.0)
            .map(|(l, _)| *l)
            .unwrap_or(0),
    );
    row(
        "ForEVeR worst case (11,995 cycles)",
        fv.last().map(|(l, _)| *l).unwrap_or(0),
    );
    let med_na = na
        .iter()
        .find(|(_, p)| *p >= 50.0)
        .map(|(l, _)| *l)
        .unwrap_or(0);
    let med_fv = fv
        .iter()
        .find(|(_, p)| *p >= 50.0)
        .map(|(l, _)| *l)
        .unwrap_or(0);
    row(
        "median latency ratio ForEVeR/NoCAlert (>100x)",
        (if med_na == 0 {
            format!("inf (0 vs {med_fv})")
        } else {
            format!("{:.0}x", med_fv as f64 / med_na as f64)
        })
        .to_string(),
    );

    maybe_write_json(
        &args,
        &Fig7Out {
            nocalert_cdf: na,
            forever_cdf: fv,
        },
    );
}
