//! **Section 5.2** — fault-site census: how many single-bit injection
//! locations the model exposes per router and per mesh, next to the
//! paper's counts (205 per interior 5-port router, 11,808 in the 8×8 mesh
//! at the paper's module granularity).
//!
//! ```text
//! cargo run --release -p nocalert-bench --bin sites -- [--mesh K]
//! ```

use noc_sim::enumerate_router_sites;
use noc_types::geometry::{Coord, NodeId};
use noc_types::site::ModuleClass;
use nocalert_bench::{row, Args, Experiment};

fn main() {
    let args = Args::from_env();
    let exp = Experiment::from_args(&args);
    let cfg = &exp.noc;
    let mesh = cfg.mesh;

    println!("== Fault-site census (Section 5.2 / Figure 5) ==");
    let interior = mesh.node(Coord::new(mesh.width() / 2, mesh.height() / 2));
    let edge = mesh.node(Coord::new(mesh.width() / 2, 0));
    let corner = mesh.node(Coord::new(0, 0));

    for (name, node, paper) in [
        ("interior router (paper: 205)", interior, 205),
        ("edge router", edge, 0),
        ("corner router", corner, 0),
    ] {
        let n = enumerate_router_sites(cfg, node).len();
        if paper > 0 {
            row(
                name,
                format!("{n} sites (paper {paper} at coarser granularity)"),
            );
        } else {
            row(name, format!("{n} sites"));
        }
    }

    let total: usize = mesh
        .nodes()
        .map(|n| enumerate_router_sites(cfg, n).len())
        .sum();
    row(
        &format!(
            "{}x{} mesh total (paper: 11,808)",
            mesh.width(),
            mesh.height()
        ),
        total,
    );

    println!("\nPer-module breakdown (interior router):");
    let sites = enumerate_router_sites(cfg, interior);
    for m in ModuleClass::ALL {
        let n = sites.iter().filter(|s| s.signal.module() == m).count();
        let inputs = sites
            .iter()
            .filter(|s| {
                s.signal.module() == m && s.signal.dir() == noc_types::site::SignalDir::Input
            })
            .count();
        row(
            &format!("{m}"),
            format!("{n} bits ({inputs} input-side, {} output-side)", n - inputs),
        );
    }
    let _ = NodeId(0);
}
