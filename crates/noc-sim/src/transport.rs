//! NIC-level end-to-end reliability: ACK/NACK with timeout and backoff.
//!
//! Containment (the `recovery` module) deliberately destroys flits, so the
//! network alone can no longer promise delivery. This module adds the
//! classical transport answer on top of the NICs: every application packet
//! is tracked by the sender until the receiver's acknowledgement returns;
//! a lost or corrupted packet is retransmitted after a configurable
//! timeout with exponential backoff, and the receiver deduplicates so the
//! application sees exactly-once delivery.
//!
//! ## Wire honesty
//!
//! Flits carry no payload bits in this model (identity only), so the
//! transport keeps a *registry* mapping each on-wire [`PacketId`] to what
//! its payload would encode: the application message id, whether it is a
//! data packet, an ACK or a NACK, and its endpoints. Retransmissions and
//! acknowledgements are **fresh packets** (new `PacketId`, new flit uids)
//! fabricated through `Network::enqueue_packet` — per-packet invariances
//! (e.g. the end-to-end checker) never see the same identity twice, and
//! acknowledgements are full packets of the data packet's message class,
//! because invariance 28 fixes the flit count per class. Retransmission
//! overhead is therefore measured honestly, full-length packets included.
//!
//! ## Spoof hardening
//!
//! A compromised router can fabricate control packets (see the
//! `adversary` module), so a control copy is only believed after two
//! independent checks feed [`arq::sender_control_action`]: the keyed
//! per-packet tag in its payload registry entry must match
//! [`arq::auth_tag`] under the NIC-pair secret (routers never hold the
//! secret — a forger can only guess), and the packet's *physical* wire
//! source — the injection node stamped on its flits, unforgeable
//! in-model — must be the pending message's destination. Anything else is
//! ignored, counted, and attributed to its wire source as a
//! [`SuspicionEvent`] for the containment plane's malice scoring.

use crate::arq;
use crate::network::{Network, Observer};
use noc_types::record::EjectEvent;
use noc_types::{Cycle, Flit, NocConfig, PacketId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Retransmission policy of the end-to-end transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArqConfig {
    /// Base acknowledgement timeout in cycles: a data packet unacknowledged
    /// this long after entering the wire is retransmitted.
    pub ack_timeout: Cycle,
    /// Timeout multiplier applied per attempt (exponential backoff).
    pub backoff_factor: u32,
    /// Exponent cap: attempt counts beyond this stop growing the timeout.
    pub backoff_cap: u32,
    /// Retransmissions per message before the sender gives up (a give-up
    /// is a delivery failure the oracle reports).
    pub max_retries: u32,
    /// Receiver-side state retention, in cycles. Per-packet registry,
    /// assembly and dedup/re-ACK state older than this is retired, which
    /// bounds transport memory at O(packets offered per horizon) instead
    /// of O(packets ever offered). Must comfortably exceed the longest
    /// possible in-flight lifetime of a packet copy (all retransmission
    /// timeouts included) or a straggler could evade deduplication; the
    /// default leaves an order of magnitude of headroom over the
    /// worst-case backed-off retry schedule on the canonical meshes.
    pub retire_horizon: Cycle,
}

impl ArqConfig {
    /// Defaults sized for the canonical meshes. The timeout must sit well
    /// above the worst-case loaded round trip (data + full-length ACK) or
    /// the senders mass-retransmit, double the offered load, and drive the
    /// mesh into congestion collapse — on the 8×8 at paper rates that
    /// means thousands of cycles, not hundreds.
    pub fn default_policy() -> ArqConfig {
        ArqConfig {
            ack_timeout: 2_500,
            backoff_factor: 2,
            backoff_cap: 3,
            max_retries: 8,
            retire_horizon: 500_000,
        }
    }

    /// Checks the policy for values the retransmission machine cannot run
    /// with.
    ///
    /// # Errors
    ///
    /// Returns [`noc_types::SimError::ArqInvalid`] for a zero timeout
    /// (retransmit storm) or a zero backoff factor (zero timeouts after
    /// the first retry).
    pub fn validate(&self) -> Result<(), noc_types::SimError> {
        if self.ack_timeout == 0 {
            return Err(noc_types::SimError::ArqInvalid {
                reason: "ack timeout must be non-zero",
            });
        }
        if self.backoff_factor == 0 {
            return Err(noc_types::SimError::ArqInvalid {
                reason: "backoff factor must be non-zero",
            });
        }
        if self.retire_horizon < self.ack_timeout {
            return Err(noc_types::SimError::ArqInvalid {
                reason: "retire horizon must be at least the ack timeout",
            });
        }
        Ok(())
    }

    /// The timeout for a message that has already been attempted
    /// `attempts` times.
    pub fn timeout_after(&self, attempts: u32) -> Cycle {
        let exp = attempts.min(self.backoff_cap);
        self.ack_timeout
            .saturating_mul(self.backoff_factor.saturating_pow(exp) as u64)
    }
}

/// What a packet's payload bits encode (registry entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WireKind {
    /// Application data for message `app`.
    Data,
    /// Acknowledgement of message `app`.
    Ack,
    /// Negative acknowledgement (corrupted arrival) of message `app`.
    Nack,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WireMeta {
    kind: WireKind,
    /// Application message id (the original data packet's on-wire id).
    app: u64,
    src: u16,
    dest: u16,
    class: u8,
    len: u16,
    /// Keyed authentication tag carried in the payload of control
    /// packets ([`arq::auth_tag`]); 0 for data packets, attacker-guessed
    /// for forgeries.
    tag: u64,
}

/// Sender-side state of one unacknowledged application message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pending {
    src: u16,
    dest: u16,
    class: u8,
    len: u16,
    offered_at: Cycle,
    attempts: u32,
    deadline: Cycle,
}

/// Live tracking state of one on-wire packet — registry entry, receiver
/// assembly and (for an application message's original data packet) the
/// delivery mark receiver dedup keys on. One slot of [`PacketWindow`].
#[derive(Debug, Clone, PartialEq)]
struct PacketSlot {
    meta: WireMeta,
    /// Seen-seq bitmask for seqs below 128 (canonical lengths fit here).
    seq_mask: u128,
    /// Seen seqs ≥ 128, sorted and deduplicated; empty — and therefore
    /// unallocated — at canonical packet lengths.
    seq_spill: Vec<u16>,
    corrupted: bool,
    done: bool,
    /// Set on the slot whose pid *is* the application message id once the
    /// receiver delivered that message: the dedup / re-ACK mark that used
    /// to live in a grow-forever `delivered` set.
    app_delivered: bool,
    /// Physical injection node of the packet's flits, recorded at first
    /// eject. Flit sources are stamped by `Network::enqueue_packet` and
    /// cannot be forged in-model, so this is the trustworthy half of the
    /// control-packet source validation.
    wire_src: Option<u16>,
}

impl PacketSlot {
    fn new(meta: WireMeta) -> PacketSlot {
        PacketSlot {
            meta,
            seq_mask: 0,
            seq_spill: Vec::new(),
            corrupted: false,
            done: false,
            app_delivered: false,
            wire_src: None,
        }
    }

    fn note_seq(&mut self, seq: u16) {
        if seq < 128 {
            self.seq_mask |= 1u128 << seq;
        } else if let Err(i) = self.seq_spill.binary_search(&seq) {
            self.seq_spill.insert(i, seq);
        }
    }

    /// True when every seq in `0..len` has been seen.
    fn all_seqs_seen(&self, len: u16) -> bool {
        let low = len.min(128);
        let need = if low == 128 {
            u128::MAX
        } else {
            (1u128 << low) - 1
        };
        self.seq_mask & need == need && (128..len).all(|s| self.seq_spill.binary_search(&s).is_ok())
    }
}

/// Dense, index-keyed per-packet state with front retirement.
///
/// On-wire packet ids are monotone, so the live id range is a window
/// `[base, base + slots.len())` and lookup is a subtraction plus a bounds
/// check — no hashing, no tree walk. [`PacketWindow::retire`] pops slots
/// older than the configured horizon off the front; that is what bounds
/// the transport's memory at O(packets offered within one horizon)
/// instead of O(packets ever offered). A flit of a retired packet counts
/// as a stray, exactly like a flit that never had a registry entry.
#[derive(Debug, Clone, Default, PartialEq)]
struct PacketWindow {
    base: u64,
    /// `(created_at, state)` per id; `None` marks ids never registered
    /// (they only appear as padding when ids arrive out of order).
    slots: VecDeque<(Cycle, Option<PacketSlot>)>,
}

impl PacketWindow {
    fn get(&self, pid: u64) -> Option<&PacketSlot> {
        let i = pid.checked_sub(self.base)? as usize;
        self.slots.get(i)?.1.as_ref()
    }

    fn get_mut(&mut self, pid: u64) -> Option<&mut PacketSlot> {
        let i = pid.checked_sub(self.base)? as usize;
        self.slots.get_mut(i)?.1.as_mut()
    }

    fn insert(&mut self, pid: u64, at: Cycle, slot: PacketSlot) {
        let Some(i) = pid.checked_sub(self.base) else {
            return; // Older than the window: already retired.
        };
        let i = i as usize;
        while self.slots.len() <= i {
            self.slots.push_back((at, None));
        }
        self.slots[i] = (at, Some(slot));
    }

    fn retire(&mut self, cy: Cycle, horizon: Cycle) {
        while let Some(&(created, _)) = self.slots.front() {
            if cy.saturating_sub(created) < horizon {
                break;
            }
            self.slots.pop_front();
            self.base += 1;
        }
    }

    fn len(&self) -> usize {
        self.slots.len()
    }
}

/// A control message queued for fabrication at the next `post_step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Outbox {
    kind: WireKind,
    app: u64,
    from: u16,
    to: u16,
    class: u8,
    len: u16,
    tag: u64,
}

/// One exactly-once delivery, as the application saw it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveryRecord {
    /// Application message id.
    pub app: u64,
    /// Source node.
    pub src: u16,
    /// Destination node.
    pub dest: u16,
    /// Cycle the first copy entered the wire.
    pub offered_at: Cycle,
    /// Cycle the first complete, uncorrupted copy finished arriving.
    pub delivered_at: Cycle,
    /// Wire attempts up to that point (0 = first transmission sufficed).
    pub attempts: u32,
}

/// One abandoned message: the sender exhausted `max_retries` without an
/// acknowledgement. The endpoints are recorded so fault-survival
/// campaigns can classify the failure — a give-up whose source or
/// destination was absorbed into a fault region (or split across a
/// partition) is an expected *orphan*, not a delivery violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureRecord {
    /// Application message id.
    pub app: u64,
    /// Source node.
    pub src: u16,
    /// Destination node.
    pub dest: u16,
}

/// Aggregate transport counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportStats {
    /// Application messages that entered the wire.
    pub offered: u64,
    /// Messages delivered exactly once to the application.
    pub delivered: u64,
    /// Data retransmissions sent.
    pub retransmits: u64,
    /// ACK packets sent.
    pub acks_sent: u64,
    /// NACK packets sent (corrupted complete arrivals).
    pub nacks_sent: u64,
    /// Duplicate complete arrivals suppressed by receiver dedup.
    pub duplicates_suppressed: u64,
    /// Complete arrivals discarded for corruption.
    pub corrupted_arrivals: u64,
    /// Flits ejected at a node other than their packet's destination.
    pub misrouted_flits: u64,
    /// Ejected flits with no registry entry (stale replays, fabrications).
    pub stray_flits: u64,
    /// Messages abandoned after `max_retries` (delivery failures).
    pub gave_up: u64,
    /// Control packets ignored because their keyed tag or physical wire
    /// source failed validation (spoofed ACK/NACKs).
    pub forged_controls_ignored: u64,
    /// Authentic-looking control packets for messages no longer pending
    /// (late duplicates and replayed copies) — absorbed idempotently.
    pub stale_controls: u64,
}

/// A control packet failed authentication: someone on the wire fabricated
/// it. The physical injection node (unforgeable) is attributed so the
/// containment plane can score the router's malice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuspicionEvent {
    /// Physical injection node of the offending control packet (`None`
    /// only for a malformed packet with no ejected flits).
    pub router: Option<u16>,
    /// Cycle the forgery was detected.
    pub cycle: Cycle,
}

/// What a forged or replayed control packet claims to be — the payload an
/// attacker writes when fabricating one. Used by attack harnesses to
/// register adversarial packets with the transport's wire registry
/// (flits carry identity only, so fabricated payload meaning must be
/// declared out of band).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlCapture {
    /// Application message id the control names.
    pub app: u64,
    /// True for NACK, false for ACK.
    pub nack: bool,
    /// The *claimed* source written in the payload (the genuine receiver
    /// for a faithful replay; whatever the attacker likes for a forgery).
    pub claimed_src: u16,
    /// Destination node (the data sender being deceived).
    pub dest: u16,
    /// Message class.
    pub class: u8,
    /// Packet length in flits.
    pub len: u16,
    /// The authentication tag carried in the payload.
    pub tag: u64,
}

/// The end-to-end reliability layer over all NICs of one network.
///
/// Attach it as an [`Observer`] during `step_observed`, then call
/// [`Transport::post_step`] once per cycle to let it fabricate control
/// packets and fire retransmission timers:
///
/// ```ignore
/// net.step_observed(&mut transport);
/// transport.post_step(&mut net);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Transport {
    arq: ArqConfig,
    packet_lengths: Vec<u16>,
    /// Registry + receiver assembly + dedup marks, windowed by packet id.
    window: PacketWindow,
    /// Unacknowledged messages — O(in-flight) by construction, and the
    /// timeout scan wants ordered iteration, so it stays a tree.
    pending: BTreeMap<u64, Pending>,
    outbox: Vec<Outbox>,
    records: Vec<DeliveryRecord>,
    failed: Vec<FailureRecord>,
    stats: TransportStats,
    cycle_seen: Cycle,
    /// NIC-pair secret for control-packet authentication tags, derived
    /// from the run seed. Routers (and the `adversary` module) never see
    /// it.
    secret: u64,
    /// Forgery detections awaiting pickup by the containment plane.
    suspicions: Vec<SuspicionEvent>,
    /// Reused timeout-scan scratch.
    due_scratch: Vec<u64>,
    /// When enabled, every ARQ decision is recorded with its inputs so
    /// the `arq_equivalence` test can replay the pure transition
    /// functions ([`crate::arq`]) against what the transport actually did.
    decision_log: Option<Vec<arq::ArqDecision>>,
}

impl Transport {
    /// Creates the transport for networks built from `cfg`.
    pub fn new(cfg: &NocConfig, arq: ArqConfig) -> Transport {
        Transport {
            arq,
            packet_lengths: cfg.packet_lengths.clone(),
            window: PacketWindow::default(),
            pending: BTreeMap::new(),
            outbox: Vec::new(),
            records: Vec::new(),
            failed: Vec::new(),
            stats: TransportStats::default(),
            cycle_seen: 0,
            secret: arq::auth_tag(cfg.seed ^ 0xA05E_C2E7, PacketId(cfg.seed), false),
            suspicions: Vec::new(),
            due_scratch: Vec::new(),
            decision_log: None,
        }
    }

    /// Starts recording every ARQ decision with its inputs (off by
    /// default: the log grows unboundedly and is a test/diagnosis tool).
    pub fn enable_decision_log(&mut self) {
        self.decision_log = Some(Vec::new());
    }

    /// The recorded decisions since [`Transport::enable_decision_log`]
    /// (empty when logging was never enabled).
    pub fn decision_log(&self) -> &[arq::ArqDecision] {
        self.decision_log.as_deref().unwrap_or(&[])
    }

    #[inline]
    fn log_decision(&mut self, d: arq::ArqDecision) {
        if let Some(log) = self.decision_log.as_mut() {
            log.push(d);
        }
    }

    /// Aggregate counters.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// Exactly-once deliveries in arrival order.
    pub fn records(&self) -> &[DeliveryRecord] {
        self.records.as_slice()
    }

    /// Messages the sender gave up on (delivery failures), with their
    /// endpoints.
    pub fn failed(&self) -> &[FailureRecord] {
        self.failed.as_slice()
    }

    /// Unacknowledged application messages currently tracked.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// On-wire packets currently held in the tracking window (live plus
    /// not-yet-retired). The memory-bound tests watch this.
    pub fn tracked_packets(&self) -> usize {
        self.window.len()
    }

    /// True when no message awaits acknowledgement and no control packet
    /// awaits fabrication — the transport's drain criterion.
    pub fn quiescent(&self) -> bool {
        self.pending.is_empty() && self.outbox.is_empty()
    }

    /// Drains the forgery detections accumulated since the last call.
    /// Attack harnesses feed these to `Network::note_suspicion` so the
    /// containment plane can escalate the offending router to malicious.
    pub fn take_suspicions(&mut self) -> Vec<SuspicionEvent> {
        std::mem::take(&mut self.suspicions)
    }

    /// The payload meaning of a registered **control** packet currently
    /// on the wire (`None` for data packets, unknown ids and retired
    /// slots). This models an on-path attacker capturing a traversing
    /// control packet's bits — including its genuine authentication tag —
    /// for later replay; flits carry identity only, so the capture reads
    /// the registry.
    pub fn control_meta(&self, pid: PacketId) -> Option<ControlCapture> {
        let slot = self.window.get(pid.0)?;
        let nack = match slot.meta.kind {
            WireKind::Data => return None,
            WireKind::Ack => false,
            WireKind::Nack => true,
        };
        Some(ControlCapture {
            app: slot.meta.app,
            nack,
            claimed_src: slot.meta.src,
            dest: slot.meta.dest,
            class: slot.meta.class,
            len: slot.meta.len,
            tag: slot.meta.tag,
        })
    }

    /// The application message id of a registered **data** packet
    /// (`None` for control packets, unknown ids and retired slots).
    /// Attack harnesses use this to resolve a spoofing victim to the
    /// message its forged ACK must name — for a retransmission the wire
    /// id and the application id differ.
    pub fn data_app(&self, pid: PacketId) -> Option<u64> {
        let slot = self.window.get(pid.0)?;
        (slot.meta.kind == WireKind::Data).then_some(slot.meta.app)
    }

    /// Registers an adversarially fabricated control packet: the harness
    /// has already injected `pid` through `Network::enqueue_packet` (so
    /// its flits physically originate at the attacker) and `claim` is the
    /// payload the attacker wrote. The transport treats it like any other
    /// wire packet — whether it is believed is decided by the hardened
    /// control path at arrival.
    pub fn register_forged_control(&mut self, pid: PacketId, at: Cycle, claim: ControlCapture) {
        self.window.insert(
            pid.0,
            at,
            PacketSlot::new(WireMeta {
                kind: if claim.nack {
                    WireKind::Nack
                } else {
                    WireKind::Ack
                },
                app: claim.app,
                src: claim.claimed_src,
                dest: claim.dest,
                class: claim.class,
                len: claim.len,
                tag: claim.tag,
            }),
        );
    }

    fn class_len(&self, class: u8) -> u16 {
        self.packet_lengths
            .get(class as usize)
            .copied()
            .unwrap_or(1)
    }

    fn complete(&self, pid: u64) -> bool {
        let Some(slot) = self.window.get(pid) else {
            return false;
        };
        !slot.done && slot.all_seqs_seen(slot.meta.len)
    }

    /// Dispatches one fully assembled packet.
    fn on_complete(&mut self, pid: u64, at: Cycle) {
        let Some(slot) = self.window.get_mut(pid) else {
            return;
        };
        let meta = slot.meta;
        slot.done = true;
        let corrupted = slot.corrupted;
        let wire_src = slot.wire_src;
        match meta.kind {
            WireKind::Data => {
                let already = self.window.get(meta.app).is_some_and(|s| s.app_delivered);
                let action = arq::receiver_data_action(already, corrupted);
                self.log_decision(arq::ArqDecision::Data {
                    already_delivered: already,
                    corrupted,
                    action,
                });
                match action {
                    arq::ReceiverAction::SuppressAndReAck => {
                        self.stats.duplicates_suppressed += 1;
                        self.queue_ctl(WireKind::Ack, meta);
                    }
                    arq::ReceiverAction::Nack => {
                        self.stats.corrupted_arrivals += 1;
                        self.queue_ctl(WireKind::Nack, meta);
                    }
                    arq::ReceiverAction::DeliverAndAck => {
                        if let Some(s) = self.window.get_mut(meta.app) {
                            s.app_delivered = true;
                        }
                        self.stats.delivered += 1;
                        if let Some(p) = self.pending.get(&meta.app) {
                            self.records.push(DeliveryRecord {
                                app: meta.app,
                                src: meta.src,
                                dest: meta.dest,
                                offered_at: p.offered_at,
                                delivered_at: at,
                                attempts: p.attempts,
                            });
                        }
                        self.queue_ctl(WireKind::Ack, meta);
                    }
                }
            }
            WireKind::Ack | WireKind::Nack => {
                let nack = meta.kind == WireKind::Nack;
                let Some(p) = self.pending.get(&meta.app) else {
                    // No pending entry: the message already completed (or
                    // gave up). Late duplicates and replayed copies land
                    // here and are absorbed idempotently — a replay can
                    // re-say what was already believed, never more.
                    self.stats.stale_controls += 1;
                    return;
                };
                let sig = arq::ControlSignature {
                    nack,
                    tag_valid: meta.tag == arq::auth_tag(self.secret, PacketId(meta.app), nack),
                    src_valid: wire_src == Some(p.dest),
                };
                let action = arq::sender_control_action(sig);
                self.log_decision(arq::ArqDecision::Control { sig, action });
                match action {
                    arq::SenderControlAction::Complete => {
                        // An authentic ACK arrived back at the data
                        // sender: the message is done (a corrupted
                        // authentic ACK still acknowledges — its identity
                        // is the information).
                        self.pending.remove(&meta.app);
                    }
                    arq::SenderControlAction::RetransmitNow => {
                        if let Some(p) = self.pending.get_mut(&meta.app) {
                            // The receiver has proven the path delivers,
                            // the copy was just damaged.
                            p.deadline = at;
                        }
                    }
                    arq::SenderControlAction::Ignore => {
                        // Spoofed: bad tag or wrong physical origin. The
                        // timer keeps running — a black-holed-and-spoofed
                        // message degrades to plain loss — and the wire
                        // source is reported for malice scoring.
                        self.stats.forged_controls_ignored += 1;
                        self.suspicions.push(SuspicionEvent {
                            router: wire_src,
                            cycle: at,
                        });
                    }
                }
            }
        }
    }

    fn queue_ctl(&mut self, kind: WireKind, data: WireMeta) {
        // The genuine receiver signs its control packet with the keyed
        // per-packet tag; forgers must guess this value.
        let tag = arq::auth_tag(self.secret, PacketId(data.app), kind == WireKind::Nack);
        self.outbox.push(Outbox {
            kind,
            app: data.app,
            from: data.dest,
            to: data.src,
            class: data.class,
            len: data.len,
            tag,
        });
    }

    /// Fabricates queued control packets and fires retransmission timers.
    /// Call once per cycle, after `step_observed`.
    pub fn post_step(&mut self, net: &mut Network) {
        let cy = net.cycle();
        // 1. Control packets decided during the observation phase.
        for i in 0..self.outbox.len() {
            let msg = self.outbox[i];
            let Some(pid) = net.enqueue_packet(msg.from, msg.to, msg.class, msg.len) else {
                continue;
            };
            self.window.insert(
                pid.0,
                cy,
                PacketSlot::new(WireMeta {
                    kind: msg.kind,
                    app: msg.app,
                    src: msg.from,
                    dest: msg.to,
                    class: msg.class,
                    len: msg.len,
                    tag: msg.tag,
                }),
            );
            match msg.kind {
                WireKind::Ack => self.stats.acks_sent += 1,
                WireKind::Nack => self.stats.nacks_sent += 1,
                WireKind::Data => {}
            }
        }
        self.outbox.clear();
        // 2. Timeouts.
        self.due_scratch.clear();
        for (&app, p) in &self.pending {
            if cy >= p.deadline {
                self.due_scratch.push(app);
            }
        }
        for i in 0..self.due_scratch.len() {
            let app = self.due_scratch[i];
            let Some(p) = self.pending.get(&app).copied() else {
                continue;
            };
            let delivered = self.window.get(app).is_some_and(|s| s.app_delivered);
            let action = arq::sender_timeout_action(&self.arq, p.attempts, delivered);
            match action {
                arq::SenderTimeoutAction::GiveUp { record_failure } => {
                    self.pending.remove(&app);
                    if record_failure {
                        self.failed.push(FailureRecord {
                            app,
                            src: p.src,
                            dest: p.dest,
                        });
                        self.stats.gave_up += 1;
                    }
                    self.log_decision(arq::ArqDecision::Timeout {
                        attempts: p.attempts,
                        delivered,
                        action,
                        applied: true,
                    });
                }
                arq::SenderTimeoutAction::Retransmit {
                    next_attempts,
                    backoff,
                } => {
                    let injected = net.enqueue_packet(p.src, p.dest, p.class, p.len);
                    self.log_decision(arq::ArqDecision::Timeout {
                        attempts: p.attempts,
                        delivered,
                        action,
                        applied: injected.is_some(),
                    });
                    let Some(pid) = injected else {
                        // Injection refused under backpressure: state is
                        // untouched and the timer re-fires next cycle.
                        continue;
                    };
                    self.window.insert(
                        pid.0,
                        cy,
                        PacketSlot::new(WireMeta {
                            kind: WireKind::Data,
                            app,
                            src: p.src,
                            dest: p.dest,
                            class: p.class,
                            len: p.len,
                            tag: 0,
                        }),
                    );
                    if let Some(p) = self.pending.get_mut(&app) {
                        p.attempts = next_attempts;
                        p.deadline = cy.saturating_add(backoff);
                    }
                    self.stats.retransmits += 1;
                }
            }
        }
        // 3. Retire per-packet state past the retention horizon.
        self.window.retire(cy, self.arq.retire_horizon);
    }
}

impl Observer for Transport {
    fn on_inject(&mut self, cycle: Cycle, flit: &Flit) {
        self.cycle_seen = cycle;
        if !flit.is_head() {
            return;
        }
        let pid = flit.packet.0;
        if let Some(meta) = self.window.get(pid).map(|s| s.meta) {
            // A transport-fabricated packet entered the wire; (re)start the
            // sender timer for data packets now that it is actually moving.
            if meta.kind == WireKind::Data {
                let timeout = self
                    .pending
                    .get(&meta.app)
                    .map(|p| self.arq.timeout_after(p.attempts))
                    .unwrap_or(self.arq.ack_timeout);
                if let Some(p) = self.pending.get_mut(&meta.app) {
                    p.deadline = cycle.saturating_add(timeout);
                }
            }
            return;
        }
        // Unknown head flit: ordinary NIC-generated application traffic.
        let len = self.class_len(flit.class);
        self.window.insert(
            pid,
            cycle,
            PacketSlot::new(WireMeta {
                kind: WireKind::Data,
                app: pid,
                src: flit.src.0,
                dest: flit.dest.0,
                class: flit.class,
                len,
                tag: 0,
            }),
        );
        self.pending.insert(
            pid,
            Pending {
                src: flit.src.0,
                dest: flit.dest.0,
                class: flit.class,
                len,
                offered_at: cycle,
                attempts: 0,
                deadline: cycle.saturating_add(self.arq.ack_timeout),
            },
        );
        self.stats.offered += 1;
    }

    fn on_eject(&mut self, ev: &EjectEvent) {
        let flit = ev.flit;
        let pid = flit.packet.0;
        let Some(slot) = self.window.get_mut(pid) else {
            // Never registered, or already retired past the horizon.
            self.stats.stray_flits += 1;
            return;
        };
        if ev.node.0 != slot.meta.dest {
            self.stats.misrouted_flits += 1;
            return;
        }
        if slot.done {
            self.stats.stray_flits += 1;
            return;
        }
        if flit.corrupted || flit.origin == noc_types::flit::FlitOrigin::StaleReplay {
            slot.corrupted = true;
        }
        if slot.wire_src.is_none() {
            // Physical injection node, stamped by the network — the
            // unforgeable half of control-packet source validation.
            slot.wire_src = Some(flit.src.0);
        }
        slot.note_seq(flit.seq);
        if self.complete(pid) {
            self.on_complete(pid, ev.cycle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::NocConfig;

    fn drive(net: &mut Network, t: &mut Transport, cycles: u64) {
        for _ in 0..cycles {
            net.step_observed(t);
            t.post_step(net);
        }
    }

    #[test]
    fn arq_config_validation_and_backoff() {
        let arq = ArqConfig::default_policy();
        assert!(arq.validate().is_ok());
        assert_eq!(arq.timeout_after(0), 2_500);
        assert_eq!(arq.timeout_after(1), 5_000);
        assert_eq!(arq.timeout_after(3), 20_000);
        // Capped at backoff_cap.
        assert_eq!(arq.timeout_after(40), 20_000);
        assert!(ArqConfig {
            ack_timeout: 0,
            ..arq
        }
        .validate()
        .is_err());
        assert!(ArqConfig {
            backoff_factor: 0,
            ..arq
        }
        .validate()
        .is_err());
    }

    #[test]
    fn fault_free_messages_deliver_and_quiesce() {
        let mut cfg = NocConfig::small_test();
        cfg.injection_rate = 0.05;
        let mut net = Network::new(cfg.clone());
        let mut t = Transport::new(&cfg, ArqConfig::default_policy());
        drive(&mut net, &mut t, 1_500);
        net.set_injection_enabled(false);
        drive(&mut net, &mut t, 4_000);
        let s = t.stats();
        assert!(s.offered > 0, "traffic must flow");
        assert_eq!(s.delivered, s.offered, "all messages delivered");
        assert_eq!(s.gave_up, 0);
        assert_eq!(s.misrouted_flits, 0);
        assert!(
            t.quiescent(),
            "all ACKs returned: {} pending",
            t.pending_count()
        );
        assert_eq!(t.records().len() as u64, s.offered);
        // ACK overhead: one ACK per delivery (no losses, no duplicates).
        assert_eq!(s.acks_sent, s.delivered);
        assert_eq!(s.retransmits, 0, "nothing times out fault-free");
    }

    #[test]
    fn receiver_state_is_bounded_by_the_retirement_horizon() {
        let mut cfg = NocConfig::small_test();
        cfg.injection_rate = 0.10;
        let arq = ArqConfig {
            ack_timeout: 400,
            retire_horizon: 1_200,
            ..ArqConfig::default_policy()
        };
        let mut net = Network::new(cfg.clone());
        let mut t = Transport::new(&cfg, arq);
        let mut max_window = 0usize;
        for _ in 0..15_000 {
            net.step_observed(&mut t);
            t.post_step(&mut net);
            max_window = max_window.max(t.tracked_packets());
        }
        net.set_injection_enabled(false);
        drive(&mut net, &mut t, 4_000);
        let s = t.stats();
        // Enough traffic that an O(delivered) tracker would visibly grow:
        // data + one ACK per delivery means > 2 * offered ids ever seen.
        assert!(s.offered > 1_500, "too little traffic: {}", s.offered);
        // The window never holds more than ~one horizon's worth of ids
        // (offered + control at < 1/cycle on this mesh), far below the
        // full campaign total.
        assert!(
            max_window < 3_000,
            "window grew past the horizon bound: {max_window}"
        );
        assert!(
            (max_window as u64) < 2 * s.offered,
            "window {} tracks every packet ever offered ({})",
            max_window,
            s.offered
        );
        // Retirement must not cost exactly-once delivery.
        assert_eq!(s.delivered, s.offered);
        assert_eq!(s.gave_up, 0);
        assert_eq!(t.records().len() as u64, s.offered);
    }

    #[test]
    fn manual_message_round_trip() {
        let cfg = {
            let mut c = NocConfig::small_test();
            c.injection_rate = 0.0;
            c
        };
        let mut net = Network::new(cfg.clone());
        let mut t = Transport::new(&cfg, ArqConfig::default_policy());
        let pid = net.enqueue_packet(0, 15, 0, 5).expect("valid endpoints");
        drive(&mut net, &mut t, 600);
        assert_eq!(t.stats().offered, 1);
        assert_eq!(t.stats().delivered, 1);
        assert!(t.quiescent());
        let rec = t.records()[0];
        assert_eq!(rec.app, pid.0);
        assert_eq!(rec.src, 0);
        assert_eq!(rec.dest, 15);
        assert_eq!(rec.attempts, 0);
        assert!(rec.delivered_at > rec.offered_at);
    }
}
