//! The checker bank: every Table-1 invariance evaluated on every router's
//! cycle record, plus the end-to-end network checker at the NIs.
//!
//! [`AlertBank`] implements `noc_sim::Observer`; attach it to a network via
//! [`noc_sim::Network::step_observed`] and it raises [`AssertionEvent`]s in
//! the very cycle an illegal wire combination appears — the hardware-
//! assertion behaviour of the paper. The bank is purely observational: it
//! never influences the simulation (checkers "never interfere with — or
//! interrupt — the operation of the NoC").

use crate::batched::{ArbiterPack, ArbiterPackResult, VcOrderPack};
use crate::predicates::{check_arbiter_wires, vc_order_violated};
use crate::table::{info, CheckerId, Risk, TABLE1};
use noc_sim::routing::{productive, route_avoiding, turn_legal};
use noc_sim::Observer;
use noc_types::config::{BufferPolicy, NocConfig};
use noc_types::geometry::{Coord, Direction, NodeId};
use noc_types::record::{CycleRecord, EjectEvent, RcEvent, REGION_NONE};
use noc_types::{Cycle, Flit};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The output direction the *active* (degraded) routing function demands
/// for this RC execution, or `None` when the router is on the baseline
/// happy path (no fenced ports, no fault-region tables) and the plain
/// turn/progress model applies unmodified.
///
/// Mirrors the router's RC precedence exactly: an installed region-table
/// entry wins (its no-route sentinel decodes to a local eject), otherwise
/// a non-empty fence mask selects the fence-avoiding routing function.
/// Both are recomputed from the same post-fault destination wires the RC
/// unit consumed, so on a fault-free detour the recorded output always
/// equals this expectation and the checkers raise nothing — while a fault
/// that diverts the worm off the detour path disagrees with it and stays
/// detectable.
fn degraded_expectation(
    e: &RcEvent,
    alg: noc_types::config::RoutingAlgorithm,
    mesh: noc_types::geometry::Mesh,
    cur: Coord,
    dest: Coord,
) -> Option<Direction> {
    if e.region_next != REGION_NONE {
        return Some(Direction::from_bits(e.region_next as u64).unwrap_or(Direction::Local));
    }
    if e.avoid_mask != 0 {
        let mut avoid = [false; Direction::ALL.len()];
        for (i, a) in avoid.iter_mut().enumerate() {
            *a = e.avoid_mask >> i & 1 == 1;
        }
        return Some(route_avoiding(alg, mesh, cur, dest, &avoid));
    }
    None
}

/// One raised hardware assertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssertionEvent {
    /// Which invariance fired.
    pub checker: CheckerId,
    /// Cycle of the violation.
    pub cycle: Cycle,
    /// Router (or NI node, for the end-to-end checker) that raised it.
    pub router: u16,
    /// Port context (input or output port depending on the checker).
    pub port: u8,
    /// VC context where applicable.
    pub vc: u8,
}

impl fmt::Display for AssertionEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "c{} n{} p{}v{} {} ({})",
            self.cycle,
            self.router,
            self.port,
            self.vc,
            self.checker,
            info(self.checker).name
        )
    }
}

/// Per-packet end-to-end tracking state at the destination NIs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct E2eEntry {
    node: Option<NodeId>,
    next_seq: u16,
    tail_seen: bool,
}

/// The distributed NoCAlert checker array for one network.
///
/// # Example
///
/// ```
/// use noc_sim::Network;
/// use noc_types::NocConfig;
/// use nocalert::AlertBank;
///
/// let cfg = NocConfig::small_test();
/// let mut net = Network::new(cfg.clone());
/// let mut bank = AlertBank::new(&cfg);
/// for _ in 0..500 {
///     net.step_observed(&mut bank);
/// }
/// assert!(bank.assertions().is_empty(), "fault-free runs never assert");
/// ```
#[derive(Debug)]
pub struct AlertBank {
    cfg: NocConfig,
    enabled: [bool; CheckerId::COUNT],
    events: Vec<AssertionEvent>,
    counts: [u64; CheckerId::COUNT],
    first_cycle: Option<Cycle>,
    first_cycle_normal_risk: Option<Cycle>,
    /// Distinct checkers asserted during the first detection cycle.
    first_cycle_checkers: Vec<CheckerId>,
    /// End-to-end tracking, a dense slab indexed by the (monotone)
    /// `PacketId` so the per-ejection path is a bounds check away from the
    /// entry instead of a hash lookup.
    e2e: Vec<E2eEntry>,
    /// Reused scratch for the invariance-8 cross-arbiter check.
    va2_granted: Vec<(u8, u8)>,
    max_events: usize,
}

// Manual impl so `clone_from` (the campaign arena's per-run reset) reuses
// the event log and the e2e slab instead of reallocating them each run.
impl Clone for AlertBank {
    fn clone(&self) -> AlertBank {
        AlertBank {
            cfg: self.cfg.clone(),
            enabled: self.enabled,
            events: self.events.clone(),
            counts: self.counts,
            first_cycle: self.first_cycle,
            first_cycle_normal_risk: self.first_cycle_normal_risk,
            first_cycle_checkers: self.first_cycle_checkers.clone(),
            e2e: self.e2e.clone(),
            va2_granted: self.va2_granted.clone(),
            max_events: self.max_events,
        }
    }

    fn clone_from(&mut self, src: &AlertBank) {
        self.cfg.clone_from(&src.cfg);
        self.enabled = src.enabled;
        self.events.clone_from(&src.events);
        self.counts = src.counts;
        self.first_cycle = src.first_cycle;
        self.first_cycle_normal_risk = src.first_cycle_normal_risk;
        self.first_cycle_checkers
            .clone_from(&src.first_cycle_checkers);
        self.e2e.clone_from(&src.e2e);
        self.va2_granted.clone_from(&src.va2_granted);
        self.max_events = src.max_events;
    }
}

impl AlertBank {
    /// Creates a bank wired for `cfg`, with every applicable checker
    /// enabled (invariance 26 xor 27 depending on the buffer policy).
    pub fn new(cfg: &NocConfig) -> AlertBank {
        let mut enabled = [true; CheckerId::COUNT];
        for e in &TABLE1 {
            enabled[e.id.index()] = e.applicability.applies(cfg.buffer_policy);
        }
        AlertBank {
            cfg: cfg.clone(),
            enabled,
            events: Vec::new(),
            counts: [0; CheckerId::COUNT],
            first_cycle: None,
            first_cycle_normal_risk: None,
            first_cycle_checkers: Vec::new(),
            e2e: Vec::new(),
            va2_granted: Vec::new(),
            max_events: 100_000,
        }
    }

    /// Disables one checker (ablation studies; e.g. measuring which faults
    /// escape when a checker is removed).
    pub fn disable(&mut self, id: CheckerId) {
        self.enabled[id.index()] = false;
    }

    /// Clears all recorded state, keeping the enable mask.
    pub fn reset(&mut self) {
        self.events.clear();
        self.counts = [0; CheckerId::COUNT];
        self.first_cycle = None;
        self.first_cycle_normal_risk = None;
        self.first_cycle_checkers.clear();
        self.e2e.clear();
    }

    /// All raised assertions, in order (capped at an internal maximum to
    /// bound memory under permanently asserting faults).
    pub fn assertions(&self) -> &[AssertionEvent] {
        &self.events
    }

    /// The assertions raised at or after index `from` — the tail a
    /// closed-loop consumer (e.g. the recovery harness) has not drained
    /// yet. Out-of-range indices yield an empty slice.
    pub fn events_since(&self, from: usize) -> &[AssertionEvent] {
        self.events.get(from..).unwrap_or(&[])
    }

    /// Per-checker assertion counts (`counts()[id.index()]`).
    pub fn counts(&self) -> &[u64; CheckerId::COUNT] {
        &self.counts
    }

    /// True if any assertion has been raised.
    pub fn any_asserted(&self) -> bool {
        self.first_cycle.is_some()
    }

    /// Cycle of the first assertion, if any.
    pub fn first_detection(&self) -> Option<Cycle> {
        self.first_cycle
    }

    /// Cycle of the first assertion at or after cycle `at` — the
    /// detection instant relative to a later disturbance (an attacker
    /// going live mid-run, an aging epoch boundary), where assertions
    /// raised before `at` belong to earlier history. Events accumulate in
    /// cycle order, so this is the first matching event in the log.
    pub fn first_detection_since(&self, at: Cycle) -> Option<Cycle> {
        self.events.iter().find(|e| e.cycle >= at).map(|e| e.cycle)
    }

    /// Cycle of the first *normal-risk* assertion — the detection instant
    /// of the "NoCAlert Cautious" policy of Observation 2, which defers
    /// lone low-risk (invariances 1/3) assertions.
    pub fn first_detection_cautious(&self) -> Option<Cycle> {
        self.first_cycle_normal_risk
    }

    /// Distinct checkers that asserted within the first detection cycle
    /// (the Figure-9 "simultaneously asserted checkers" statistic).
    pub fn first_cycle_checkers(&self) -> &[CheckerId] {
        &self.first_cycle_checkers
    }

    /// Structural equality of the accumulated detection state: events,
    /// per-checker counts, first-detection bookkeeping and the end-to-end
    /// tracking slab. The configuration, enable mask and reused scratch
    /// are excluded — two banks attached to the same campaign share those
    /// by construction. Equality here means the banks are
    /// indistinguishable through every public accessor and will react
    /// identically to identical future records.
    pub fn state_eq(&self, other: &AlertBank) -> bool {
        self.counts == other.counts
            && self.first_cycle == other.first_cycle
            && self.first_cycle_normal_risk == other.first_cycle_normal_risk
            && self.first_cycle_checkers == other.first_cycle_checkers
            && self.events == other.events
            && self.e2e == other.e2e
    }

    /// The set of distinct checkers that asserted at least once.
    pub fn asserted_set(&self) -> Vec<CheckerId> {
        CheckerId::all()
            .filter(|c| self.counts[c.index()] > 0)
            .collect()
    }

    fn raise(&mut self, id: CheckerId, cycle: Cycle, router: u16, port: u8, vc: u8) {
        if !self.enabled[id.index()] {
            return;
        }
        self.counts[id.index()] += 1;
        if self.first_cycle.is_none() {
            self.first_cycle = Some(cycle);
        }
        if self.first_cycle == Some(cycle) && !self.first_cycle_checkers.contains(&id) {
            self.first_cycle_checkers.push(id);
        }
        if self.first_cycle_normal_risk.is_none() && info(id).risk == Risk::Normal {
            self.first_cycle_normal_risk = Some(cycle);
        }
        if self.events.len() < self.max_events {
            self.events.push(AssertionEvent {
                checker: id,
                cycle,
                router,
                port,
                vc,
            });
        }
    }

    #[inline]
    fn head_kind_is_head(kind: u64) -> bool {
        kind == 0 || kind == 3 // Head or HeadTail encodings
    }

    /// Raises invariances 4/5/6 for the arbiter event at pack position
    /// `idx`, consuming the position. The verdict comes from the wide
    /// bit-lane evaluation when the event was packed; otherwise the same
    /// scalar predicate is applied to the raw `(req, grant)` wires — one
    /// definition of the arbiter invariances either way, shared with the
    /// static prover (see `crate::predicates` and `crate::batched`).
    fn raise_arbiter_at(
        &mut self,
        res: &ArbiterPackResult,
        idx: &mut usize,
        cycle: Cycle,
        router: u16,
        port: u8,
        wires: (u64, u64),
    ) {
        let check = match res.lane(*idx) {
            Some(c) => c,
            None => check_arbiter_wires(wires.0, wires.1),
        };
        *idx += 1;
        if check.grant_without_request {
            self.raise(CheckerId(4), cycle, router, port, 0);
        }
        if check.grant_to_nobody {
            self.raise(CheckerId(5), cycle, router, port, 0);
        }
        if check.multiple_grants {
            self.raise(CheckerId(6), cycle, router, port, 0);
        }
    }
}

impl Observer for AlertBank {
    fn on_cycle_record(&mut self, cycle: Cycle, rec: &CycleRecord) {
        let router = rec.router;
        let mesh = self.cfg.mesh;
        let cur = mesh.coord(NodeId(router));
        let alg = self.cfg.routing;
        let vcs = self.cfg.vcs_per_port;

        // ---- RC checkers: 1, 2, 3, 20, 21, 31 ----
        let mut rc_per_port = [0u8; 8];
        for e in &rec.rc {
            rc_per_port[(e.port & 7) as usize] += 1;
            match Direction::from_bits(e.out_dir) {
                None => self.raise(CheckerId(2), cycle, router, e.port, e.vc),
                Some(out) => {
                    if !mesh.port_live(NodeId(router), out) {
                        self.raise(CheckerId(2), cycle, router, e.port, e.vc);
                    } else {
                        let in_dir = Direction::ALL[(e.port as usize).min(4)];
                        let dest = Coord::new(e.dest_x as u8, e.dest_y as u8);
                        // Region-aware bound: under degraded routing
                        // (fenced ports, fault-region detours) the legal
                        // output is re-derived from the recorded routing
                        // registers, and only that exact direction is
                        // excused from the XY turn/progress model — the
                        // checkers stay armed off the happy path instead
                        // of disarming wholesale, so a misroute *inside* a
                        // detour region is still caught.
                        let excused = match degraded_expectation(e, alg, mesh, cur, dest) {
                            Some(expected) => out == expected,
                            None => false,
                        };
                        if !turn_legal(alg, in_dir, out) && !excused {
                            self.raise(CheckerId(1), cycle, router, e.port, e.vc);
                        }
                        if e.head_valid
                            && !e.buf_empty
                            && !productive(mesh, cur, dest, out)
                            && !excused
                        {
                            self.raise(CheckerId(3), cycle, router, e.port, e.vc);
                        }
                    }
                }
            }
            if !e.head_valid {
                self.raise(CheckerId(20), cycle, router, e.port, e.vc);
            }
            if e.buf_empty {
                self.raise(CheckerId(21), cycle, router, e.port, e.vc);
            }
        }
        for (p, &n) in rc_per_port.iter().enumerate() {
            if n > 1 {
                self.raise(CheckerId(31), cycle, router, p as u8, 0);
            }
        }

        // ---- Local arbiters: 4, 5, 6 (+7 on SA1 credits) ----
        // Every arbiter event in this record — VA1, SA1, VA2 and SA2 —
        // is packed into bit-lanes and invariances 4/5/6 evaluated for
        // all of them in one wide pass; `raise_arbiter_at` then hands
        // each event its lane verdict back in push order, falling back
        // to the scalar predicate for any event that could not be
        // packed (see `crate::batched`). Assertion order is untouched:
        // verdicts are consumed exactly where the per-event calls were.
        let mut pack = ArbiterPack::new();
        for e in &rec.va1 {
            pack.push(e.req, e.grant);
        }
        for e in &rec.sa1 {
            pack.push(e.req, e.grant);
        }
        for e in &rec.va2 {
            pack.push(e.req, e.grant);
        }
        for e in &rec.sa2 {
            pack.push(e.req, e.grant);
        }
        let arb = pack.evaluate();
        let mut arb_idx = 0usize;
        for e in &rec.va1 {
            self.raise_arbiter_at(&arb, &mut arb_idx, cycle, router, e.port, (e.req, e.grant));
        }
        for e in &rec.sa1 {
            self.raise_arbiter_at(&arb, &mut arb_idx, cycle, router, e.port, (e.req, e.grant));
            if e.grant & !e.credit_ok != 0 {
                self.raise(CheckerId(7), cycle, router, e.port, 0);
            }
        }

        // ---- VA2: 4, 5, 6, 7, 8, 10, 12, 19 ----
        // Reconstruct each input port's VA1 winner for the one-to-one check.
        let mut va1_winner = [None::<u8>; 8];
        for e in &rec.va1 {
            if e.grant != 0 {
                va1_winner[(e.port & 7) as usize] = Some(e.grant.trailing_zeros() as u8);
            }
        }
        self.va2_granted.clear();
        for e in &rec.va2 {
            self.raise_arbiter_at(
                &arb,
                &mut arb_idx,
                cycle,
                router,
                e.out_port,
                (e.req, e.grant),
            );
            if e.grant != 0 {
                // Grant to an occupied downstream VC (invariance 7).
                if (e.free_mask >> e.out_vc) & 1 == 0 {
                    self.raise(CheckerId(7), cycle, router, e.out_port, e.out_vc as u8);
                }
                // Out-of-range or out-of-class VC value (invariance 19).
                if e.out_vc >= vcs as u64 {
                    self.raise(CheckerId(19), cycle, router, e.out_port, e.out_vc as u8);
                } else if let Some(class) = e.winner_class {
                    if self.cfg.class_of_vc(e.out_vc as u8) != class {
                        self.raise(CheckerId(19), cycle, router, e.out_port, e.out_vc as u8);
                    }
                }
                for p in 0..8u8 {
                    if (e.grant >> p) & 1 == 1 {
                        if let Some(v) = va1_winner[p as usize] {
                            self.va2_granted.push((p, v));
                        }
                    }
                }
            }
            if let Some(rc_port) = e.winner_rc_port {
                if rc_port != e.out_port as u64 {
                    self.raise(CheckerId(10), cycle, router, e.out_port, 0);
                }
            }
            if e.grant != 0 && e.winner.is_some() && !e.winner_won_va1 {
                self.raise(CheckerId(12), cycle, router, e.out_port, 0);
            }
        }
        // Invariance 8: the same input VC allocated by two VA2 arbiters.
        self.va2_granted.sort_unstable();
        for i in 1..self.va2_granted.len() {
            if self.va2_granted[i - 1] == self.va2_granted[i] {
                let (p, v) = self.va2_granted[i];
                self.raise(CheckerId(8), cycle, router, p, v);
            }
        }

        // ---- SA2: 4, 5, 6, 7, 9, 11, 13 ----
        let mut port_grants = [0u32; 8];
        for e in &rec.sa2 {
            self.raise_arbiter_at(
                &arb,
                &mut arb_idx,
                cycle,
                router,
                e.out_port,
                (e.req, e.grant),
            );
            for p in 0..8u8 {
                if (e.grant >> p) & 1 == 1 {
                    port_grants[p as usize] += 1;
                }
            }
            if let Some(rc_port) = e.winner_rc_port {
                if rc_port != e.out_port as u64 {
                    self.raise(CheckerId(11), cycle, router, e.out_port, 0);
                }
            }
            if e.grant != 0 && e.winner.is_some() {
                if !e.winner_won_sa1 {
                    self.raise(CheckerId(13), cycle, router, e.out_port, 0);
                }
                if !e.winner_credit_ok {
                    self.raise(CheckerId(7), cycle, router, e.out_port, 0);
                }
            }
        }
        for (p, &n) in port_grants.iter().enumerate() {
            if n > 1 {
                self.raise(CheckerId(9), cycle, router, p as u8, 0);
            }
        }

        // ---- Crossbar: 14, 15, 16 ----
        for o in 0..5u8 {
            if rec.xbar.col(o).count_ones() > 1 {
                self.raise(CheckerId(14), cycle, router, o, 0);
            }
        }
        for p in 0..5u8 {
            if rec.xbar.row(p, 5).count_ones() > 1 {
                self.raise(CheckerId(15), cycle, router, p, 0);
            }
        }
        if rec.xbar.in_count != rec.xbar.out_count {
            self.raise(CheckerId(16), cycle, router, 0, 0);
        }

        // ---- VC state: 17, 22, 23 + continuous register monitoring ----
        // Pipeline order: RC completes from Routing(1), VA from
        // VaPending(2), SA fires only on Active(3).
        // In the speculative design of Section 4.4, SA may legally
        // succeed while VA is still pending — invariance 17 is altered
        // "so as not to raise an assertion if SA succeeds before VA is
        // done". The predicate is shared with the static prover; all of
        // the record's VC events are evaluated in one bit-lane pass
        // (scalar fallback for any event past the lane capacity).
        let mut vpack = VcOrderPack::new();
        for e in &rec.vc {
            vpack.push(e.state_before, e.ev_rc_done, e.ev_va_done, e.ev_sa_won);
        }
        let vres = vpack.evaluate(self.cfg.speculative);
        for (vi, e) in rec.vc.iter().enumerate() {
            let s = e.state_before;
            let order_violated = match vres.lane(vi) {
                Some(f) => f,
                None => vc_order_violated(
                    s,
                    e.ev_rc_done,
                    e.ev_va_done,
                    e.ev_sa_won,
                    self.cfg.speculative,
                ),
            };
            if order_violated {
                self.raise(CheckerId(17), cycle, router, e.port, e.vc);
            }
            if e.ev_va_done {
                if e.empty {
                    self.raise(CheckerId(23), cycle, router, e.port, e.vc);
                } else if !Self::head_kind_is_head(e.head_kind) {
                    self.raise(CheckerId(22), cycle, router, e.port, e.vc);
                }
            }
            // The latched RC/VA results are register outputs and the
            // corresponding checkers hang off them permanently: an upset
            // that parks an invalid encoding in the status table is caught
            // even between pipeline events.
            if e.state_after >= 2 {
                // RC result latched (VaPending or Active).
                let bad_dir = match Direction::from_bits(e.out_port) {
                    None => true,
                    Some(d) => !mesh.port_live(NodeId(router), d),
                };
                if bad_dir {
                    self.raise(CheckerId(2), cycle, router, e.port, e.vc);
                }
            }
            if e.state_after == 3 {
                // VA result latched (Active).
                if e.out_vc >= vcs as u64
                    || self.cfg.class_of_vc(e.out_vc as u8) != self.cfg.class_of_vc(e.vc)
                {
                    self.raise(CheckerId(19), cycle, router, e.port, e.vc);
                }
            }
        }

        // ---- Buffers: 18, 24, 25, 26, 27, 28 + port-level 29, 30 ----
        let atomic = self.cfg.buffer_policy == BufferPolicy::Atomic;
        let mut writes_per_port = [0u8; 8];
        for e in &rec.writes {
            writes_per_port[(e.port & 7) as usize] += 1;
            if e.buf_was_full {
                self.raise(CheckerId(25), cycle, router, e.port, e.vc);
            }
            if !e.is_head && e.vc_was_free {
                self.raise(CheckerId(18), cycle, router, e.port, e.vc);
            }
            if atomic {
                if e.is_head && !e.vc_was_free {
                    self.raise(CheckerId(26), cycle, router, e.port, e.vc);
                }
            } else {
                // Mixing in a non-atomic buffer: a tail must be followed
                // by a header, and a header may only follow a tail (or
                // enter a free VC, which invariance 18 already covers).
                let mixing = !e.vc_was_free && (e.prev_written_was_tail != e.is_head);
                if mixing {
                    self.raise(CheckerId(27), cycle, router, e.port, e.vc);
                }
            }
            if (e.is_tail && e.arrived_count != e.expected_len) || e.arrived_count > e.expected_len
            {
                self.raise(CheckerId(28), cycle, router, e.port, e.vc);
            }
        }
        let mut reads_per_port = [0u8; 8];
        for e in &rec.reads {
            reads_per_port[(e.port & 7) as usize] += 1;
            if e.was_empty {
                self.raise(CheckerId(24), cycle, router, e.port, e.vc);
            }
        }
        for p in 0..8usize {
            if reads_per_port[p] > 1 {
                self.raise(CheckerId(29), cycle, router, p as u8, 0);
            }
            if writes_per_port[p] > 1 {
                self.raise(CheckerId(30), cycle, router, p as u8, 0);
            }
        }
    }

    fn on_quiescent_cycles(&self, _cycle: Cycle, _n: u64) -> bool {
        // The bank is memoryless across cycles: an empty record trips no
        // checker (all event vectors empty, the crossbar matrix zero) and
        // quiescent cycles deliver no ejections, so skipping them never
        // changes any accumulator.
        true
    }

    fn on_eject(&mut self, ev: &EjectEvent) {
        // ---- End-to-end network-level invariance 32 ----
        let node = ev.node;
        let f: &Flit = &ev.flit;
        let mut bad = f.dest != node;
        let idx = f.packet.0 as usize;
        if idx >= self.e2e.len() {
            self.e2e.resize_with(idx + 1, E2eEntry::default);
        }
        let entry = &mut self.e2e[idx];
        match entry.node {
            None => entry.node = Some(node),
            Some(n) if n != node => bad = true,
            _ => {}
        }
        if entry.tail_seen || f.seq != entry.next_seq {
            bad = true;
        }
        entry.next_seq = entry.next_seq.max(f.seq.saturating_add(1));
        if f.is_tail() {
            entry.tail_seen = true;
        }
        // A corrupted payload is flagged by the (assumed) end-to-end EDC at
        // the NI — part of the network-level protective blanket.
        if f.corrupted {
            bad = true;
        }
        if bad {
            self.raise(
                CheckerId(32),
                ev.cycle,
                node.0,
                Direction::Local.index() as u8,
                0,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::Network;
    use noc_types::flit::{make_packet, FlitKind};
    use noc_types::PacketId;

    fn eject(bank: &mut AlertBank, node: u16, cycle: Cycle, flit: Flit) {
        bank.on_eject(&EjectEvent {
            node: NodeId(node),
            cycle,
            flit,
        });
    }

    #[test]
    fn fault_free_small_mesh_never_asserts() {
        let cfg = NocConfig::small_test();
        let mut net = Network::new(cfg.clone());
        let mut bank = AlertBank::new(&cfg);
        for _ in 0..3_000 {
            net.step_observed(&mut bank);
        }
        assert!(
            bank.assertions().is_empty(),
            "spurious assertions: {:?}",
            &bank.assertions()[..bank.assertions().len().min(5)]
        );
    }

    #[test]
    fn fault_free_paper_baseline_never_asserts() {
        let mut cfg = NocConfig::paper_baseline();
        cfg.injection_rate = 0.15;
        let mut net = Network::new(cfg.clone());
        let mut bank = AlertBank::new(&cfg);
        for _ in 0..2_000 {
            net.step_observed(&mut bank);
        }
        assert!(bank.assertions().is_empty());
    }

    #[test]
    fn fault_free_non_atomic_never_asserts() {
        let mut cfg = NocConfig::small_test();
        cfg.buffer_policy = BufferPolicy::NonAtomic;
        let mut net = Network::new(cfg.clone());
        let mut bank = AlertBank::new(&cfg);
        for _ in 0..3_000 {
            net.step_observed(&mut bank);
        }
        assert!(
            bank.assertions().is_empty(),
            "spurious: {:?}",
            &bank.assertions()[..bank.assertions().len().min(5)]
        );
    }

    #[test]
    fn e2e_flags_misdelivery() {
        let cfg = NocConfig::small_test();
        let mut bank = AlertBank::new(&cfg);
        let flits = make_packet(PacketId(1), 1, NodeId(0), NodeId(7), 0, 1, 0);
        eject(&mut bank, 3, 10, flits[0]); // delivered to node 3, dest 7
        assert_eq!(bank.asserted_set(), vec![CheckerId(32)]);
    }

    #[test]
    fn first_detection_since_skips_earlier_history() {
        let cfg = NocConfig::small_test();
        let mut bank = AlertBank::new(&cfg);
        assert_eq!(bank.first_detection_since(0), None);
        let early = make_packet(PacketId(1), 1, NodeId(0), NodeId(7), 0, 1, 0);
        eject(&mut bank, 3, 10, early[0]); // misdelivery at cycle 10
        let late = make_packet(PacketId(2), 2, NodeId(0), NodeId(7), 0, 1, 0);
        eject(&mut bank, 4, 50, late[0]); // misdelivery at cycle 50
        assert_eq!(bank.first_detection_since(0), Some(10));
        assert_eq!(bank.first_detection_since(10), Some(10));
        assert_eq!(bank.first_detection_since(11), Some(50));
        assert_eq!(bank.first_detection_since(51), None);
    }

    #[test]
    fn e2e_flags_out_of_order_and_continuation() {
        let cfg = NocConfig::small_test();
        let mut bank = AlertBank::new(&cfg);
        let flits = make_packet(PacketId(2), 1, NodeId(0), NodeId(5), 0, 3, 0);
        eject(&mut bank, 5, 10, flits[0]);
        eject(&mut bank, 5, 11, flits[2]); // skipped seq 1
        assert!(bank.any_asserted());
        bank.reset();
        eject(&mut bank, 5, 10, flits[0]);
        eject(&mut bank, 5, 11, flits[1]);
        eject(&mut bank, 5, 12, flits[2]);
        assert!(!bank.any_asserted());
        // Continuation after tail.
        let stray = Flit {
            seq: 3,
            kind: FlitKind::Body,
            ..flits[1]
        };
        eject(&mut bank, 5, 13, stray);
        assert!(bank.any_asserted());
    }

    #[test]
    fn e2e_flags_corrupted_flit() {
        let cfg = NocConfig::small_test();
        let mut bank = AlertBank::new(&cfg);
        let mut f = make_packet(PacketId(3), 1, NodeId(0), NodeId(5), 0, 1, 0)[0];
        f.corrupted = true;
        eject(&mut bank, 5, 10, f);
        assert!(bank.any_asserted());
    }

    #[test]
    fn disabled_checker_stays_silent() {
        let cfg = NocConfig::small_test();
        let mut bank = AlertBank::new(&cfg);
        bank.disable(CheckerId(32));
        let flits = make_packet(PacketId(1), 1, NodeId(0), NodeId(7), 0, 1, 0);
        eject(&mut bank, 3, 10, flits[0]);
        assert!(!bank.any_asserted());
    }

    #[test]
    fn cautious_mode_ignores_lone_low_risk() {
        let cfg = NocConfig::small_test();
        let mut bank = AlertBank::new(&cfg);
        // Fabricate a lone invariance-3 event through raise().
        bank.raise(CheckerId(3), 100, 0, 0, 0);
        assert_eq!(bank.first_detection(), Some(100));
        assert_eq!(bank.first_detection_cautious(), None);
        bank.raise(CheckerId(16), 120, 0, 0, 0);
        assert_eq!(bank.first_detection_cautious(), Some(120));
        assert_eq!(bank.first_cycle_checkers(), &[CheckerId(3)]);
    }

    #[test]
    fn policy_gates_26_vs_27() {
        let atomic = AlertBank::new(&NocConfig::small_test());
        assert!(atomic.enabled[CheckerId(26).index()]);
        assert!(!atomic.enabled[CheckerId(27).index()]);
        let mut cfg = NocConfig::small_test();
        cfg.buffer_policy = BufferPolicy::NonAtomic;
        let non_atomic = AlertBank::new(&cfg);
        assert!(!non_atomic.enabled[CheckerId(26).index()]);
        assert!(non_atomic.enabled[CheckerId(27).index()]);
    }
}
