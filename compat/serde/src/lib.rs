//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so the workspace carries a
//! minimal self-contained serialization framework under the `serde` name:
//!
//! * [`Value`] — a JSON document tree with a writer ([`Value::write_json`])
//!   and a strict parser ([`Value::parse_json`]);
//! * [`Serialize`] / [`Deserialize`] — conversions between Rust types and
//!   [`Value`], with impls for the primitives, strings, tuples, arrays,
//!   `Option`, `Vec` and maps used across the workspace;
//! * derive macros (re-exported from `serde_derive`) generating those
//!   impls for plain structs and enums, using serde's JSON conventions
//!   (named struct → object, newtype → inner value, tuple → array, unit
//!   enum variant → string, data variant → externally tagged object).
//!
//! It is **not** wire-compatible with real serde beyond the JSON shapes
//! described above, and it supports no attributes and no generics — the
//! workspace uses neither. The campaign checkpoint format (see
//! DESIGN.md, "Campaign resilience") round-trips through this module.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A (finite) float. Non-finite values serialize as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric payload as `u64`, accepting any integral representation.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) => u64::try_from(n).ok(),
            Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// Numeric payload as `i64`, accepting any integral representation.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(n) => Some(n),
            Value::U64(n) => i64::try_from(n).ok(),
            Value::F64(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            _ => None,
        }
    }

    /// Numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(f) => Some(f),
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The key/value list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Renders the document as compact JSON.
    pub fn write_json(&self, out: &mut String) {
        self.write_indented(out, None, 0);
    }

    /// Renders the document as pretty-printed JSON (two-space indent).
    pub fn write_json_pretty(&self, out: &mut String) {
        self.write_indented(out, Some(2), 0);
    }

    fn write_indented(&self, out: &mut String, indent: Option<usize>, level: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::U64(n) => {
                out.push_str(&n.to_string());
            }
            Value::I64(n) => {
                out.push_str(&n.to_string());
            }
            Value::F64(f) => {
                if f.is_finite() {
                    // Rust's shortest round-trip float formatting; force a
                    // decimal point so the value re-parses as a float.
                    let s = f.to_string();
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write_indented(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_json_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write_indented(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Trailing non-whitespace is an error.
    pub fn parse_json(input: &str) -> Result<Value, DeError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(DeError::new(format!(
                "trailing characters at byte {}",
                p.pos
            )));
        }
        Ok(v)
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value, DeError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(DeError::new(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, DeError> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(DeError::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let v = self.value()?;
                    fields.push((k, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(DeError::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(DeError::new(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| DeError::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| DeError::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| DeError::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| DeError::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| DeError::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(DeError::new("unknown escape")),
                    }
                }
                _ => return Err(DeError::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError::new("bad number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| DeError::new(format!("bad number '{text}'")))
    }
}

/// A deserialization failure, with a plain-text description of where the
/// document diverged from the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// A new error with the given description.
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }

    /// "expected X while deserializing Y".
    pub fn expected(what: &str, ctx: &str) -> DeError {
        DeError::new(format!("expected {what} while deserializing {ctx}"))
    }

    /// Unknown enum variant tag.
    pub fn unknown_variant(tag: &str, ctx: &str) -> DeError {
        DeError::new(format!("unknown variant '{tag}' for {ctx}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Conversion into a [`Value`].
pub trait Serialize {
    /// The document representation of `self`.
    fn to_value(&self) -> Value;
}

/// Conversion from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from its document representation.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- support functions used by the derive-generated code ----

/// Deserializes one named field of an object; a missing key reads as
/// `Null` (so `Option` fields tolerate omission).
pub fn de_field<T: Deserialize>(v: &Value, key: &str, ctx: &str) -> Result<T, DeError> {
    let field = v.get(key).unwrap_or(&Value::Null);
    T::from_value(field).map_err(|e| DeError::new(format!("{ctx}.{key}: {e}")))
}

/// Wraps a data-carrying enum variant as `{"Variant": inner}`.
pub fn variant_value(tag: &str, inner: Value) -> Value {
    Value::Object(vec![(tag.to_string(), inner)])
}

/// Splits `{"Variant": inner}` into `("Variant", inner)`.
pub fn variant_parts<'v>(v: &'v Value, ctx: &str) -> Result<(&'v str, &'v Value), DeError> {
    match v.as_object() {
        Some([(tag, inner)]) => Ok((tag, inner)),
        _ => Err(DeError::expected("single-key variant object", ctx)),
    }
}

/// Deserializes element `i` of a tuple representation.
pub fn tuple_elem<T: Deserialize>(v: &Value, i: usize, ctx: &str) -> Result<T, DeError> {
    let items = v
        .as_array()
        .ok_or_else(|| DeError::expected("array", ctx))?;
    let item = items
        .get(i)
        .ok_or_else(|| DeError::new(format!("{ctx}: missing tuple element {i}")))?;
    T::from_value(item).map_err(|e| DeError::new(format!("{ctx}[{i}]: {e}")))
}

// ---- impls for std types ----

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", "bool"))
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::expected("integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::expected("number", "f32"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| DeError::new(format!("expected array of {N} elements, got {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                Ok(($(tuple_elem::<$t>(v, $i, "tuple")?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort keys.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Object(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object", "HashMap"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object", "BTreeMap"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let doc = Value::Object(vec![
            ("a".into(), Value::U64(18_446_744_073_709_551_615)),
            ("b".into(), Value::I64(-42)),
            ("c".into(), Value::F64(0.125)),
            (
                "d".into(),
                Value::Array(vec![
                    Value::Null,
                    Value::Bool(true),
                    Value::Str("x\"\n".into()),
                ]),
            ),
            ("e".into(), Value::Object(vec![])),
        ]);
        let mut s = String::new();
        doc.write_json(&mut s);
        assert_eq!(Value::parse_json(&s).unwrap(), doc);
        let mut pretty = String::new();
        doc.write_json_pretty(&mut pretty);
        assert_eq!(Value::parse_json(&pretty).unwrap(), doc);
    }

    #[test]
    fn primitive_impls_roundtrip() {
        assert_eq!(u8::from_value(&42u8.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            Option::<u64>::from_value(&None::<u64>.to_value()).unwrap(),
            None
        );
        assert_eq!(
            Vec::<u16>::from_value(&vec![1u16, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
        let t = (1u8, -2i32, 0.5f64);
        assert_eq!(<(u8, i32, f64)>::from_value(&t.to_value()).unwrap(), t);
        let arr = [1.0f64, 2.0, 3.0];
        assert_eq!(<[f64; 3]>::from_value(&arr.to_value()).unwrap(), arr);
    }

    #[test]
    fn u8_range_check() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u8::from_value(&Value::Str("nope".into())).is_err());
    }

    #[test]
    fn float_without_fraction_reparses_as_float_compatible() {
        let mut s = String::new();
        Value::F64(2.0).write_json(&mut s);
        assert_eq!(s, "2.0");
        assert_eq!(Value::parse_json(&s).unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Value::parse_json("{").is_err());
        assert!(Value::parse_json("[1,]").is_err());
        assert!(Value::parse_json("12 34").is_err());
        assert!(Value::parse_json("\"unterminated").is_err());
    }
}
