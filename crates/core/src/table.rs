//! Table 1 of the paper: the complete list of the 32 invariances, with the
//! metadata the rest of the system keys off — owning module, the
//! functional-correctness categories of Figure 3, risk level (Observation
//! 2) and buffer-policy applicability.

use noc_types::config::BufferPolicy;
use noc_types::site::{ModuleClass, SignalKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one invariance checker, 1–32 as numbered in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CheckerId(pub u8);

impl CheckerId {
    /// Number of checkers in Table 1.
    pub const COUNT: usize = 32;

    /// All checker ids in Table-1 order.
    pub fn all() -> impl Iterator<Item = CheckerId> {
        (1..=Self::COUNT as u8).map(CheckerId)
    }

    /// Index into dense per-checker arrays (`id - 1`).
    #[inline]
    pub fn index(self) -> usize {
        (self.0 - 1) as usize
    }
}

impl fmt::Display for CheckerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inv{}", self.0)
    }
}

/// The four fundamental network-correctness conditions of Figure 3
/// (after Borrione et al. and ForEVeR, restated at flit granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// No flit is lost inside the network.
    NoFlitDrop,
    /// Every flit reaches its destination in bounded time (no deadlock or
    /// livelock).
    BoundedDelivery,
    /// No flit is spontaneously generated or duplicated.
    NoNewFlit,
    /// No data corruption / packet mixing.
    NoMixing,
}

/// Risk level driving the "NoCAlert Cautious" recovery policy of
/// Observation 2: low-risk checkers (1 and 3) defer the recovery trigger
/// when asserted alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Risk {
    /// Assertion should trigger recovery immediately.
    Normal,
    /// Misdirection-style assertion that is overwhelmingly benign when it
    /// appears on its own (RC misroutes that remain legal elsewhere).
    Low,
}

/// Which buffer policies an invariance applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Applicability {
    /// Always checked.
    Always,
    /// Only with atomic VC buffers (invariance 26).
    AtomicOnly,
    /// Only with non-atomic VC buffers (invariance 27).
    NonAtomicOnly,
}

impl Applicability {
    /// Whether a checker with this applicability runs under `policy`.
    pub fn applies(self, policy: BufferPolicy) -> bool {
        match self {
            Applicability::Always => true,
            Applicability::AtomicOnly => policy == BufferPolicy::Atomic,
            Applicability::NonAtomicOnly => policy == BufferPolicy::NonAtomic,
        }
    }
}

/// Static description of one Table-1 invariance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CheckerInfo {
    /// Table-1 number.
    pub id: CheckerId,
    /// Short name, as in the table.
    pub name: &'static str,
    /// One-line functional rule.
    pub rule: &'static str,
    /// The router module the checker monitors (`None` for the network-level
    /// end-to-end invariance 32).
    pub module: Option<ModuleClass>,
    /// Figure-3 categories the invariance protects.
    pub categories: &'static [Category],
    /// Risk level (Observation 2).
    pub risk: Risk,
    /// Buffer-policy applicability.
    pub applicability: Applicability,
    /// Every wire bundle the checker's predicate reads. This is the static
    /// fan-in of the hardware assertion: a stuck or flipped value on any of
    /// these signals is *visible* inside the checker's input cone.
    pub observes: &'static [SignalKind],
    /// The subset of [`CheckerInfo::observes`] whose illegal values the
    /// checker itself flags (its detection responsibility). Signals that
    /// are merely gating/context inputs are observed but not constrained.
    /// The static coverage pass (`noc-lint`) unions these sets to prove
    /// every live fault site answers to at least one checker.
    pub constrains: &'static [SignalKind],
}

use Category::*;
use SignalKind::*;

/// The eight request/grant wire pairs of the four arbitration stages —
/// invariances 4 and 5 monitor every arbiter in the router.
const ARB_WIRES: &[SignalKind] = &[
    Va1Req, Va1Grant, Va2Req, Va2Grant, Sa1Req, Sa1Grant, Sa2Req, Sa2Grant,
];
/// The grant vectors alone (invariance 6 constrains the one-hot shape of
/// the output side of each arbiter).
const ARB_GRANTS: &[SignalKind] = &[Va1Grant, Va2Grant, Sa1Grant, Sa2Grant];

/// The full Table 1.
pub const TABLE1: [CheckerInfo; CheckerId::COUNT] = [
    CheckerInfo {
        id: CheckerId(1),
        name: "Illegal turn",
        rule: "Routing algorithms forbid some turns to prevent deadlocks in the network.",
        module: Some(ModuleClass::Rc),
        categories: &[BoundedDelivery],
        risk: Risk::Low,
        applicability: Applicability::Always,
        observes: &[RcOutDir],
        constrains: &[RcOutDir],
    },
    CheckerInfo {
        id: CheckerId(2),
        name: "Invalid RC output direction",
        rule: "Some RC output encodings denote no physical port (e.g. value 6 on a 5-port router).",
        module: Some(ModuleClass::Rc),
        categories: &[BoundedDelivery],
        risk: Risk::Normal,
        applicability: Applicability::Always,
        observes: &[RcOutDir, VcOutPort],
        constrains: &[RcOutDir, VcOutPort],
    },
    CheckerInfo {
        id: CheckerId(3),
        name: "Non-minimal routing",
        rule: "The RC output direction must take the flit one step closer to its destination.",
        module: Some(ModuleClass::Rc),
        categories: &[BoundedDelivery],
        risk: Risk::Low,
        applicability: Applicability::Always,
        observes: &[RcDestX, RcDestY, RcHeadValid, BufEmpty, RcOutDir],
        constrains: &[RcOutDir],
    },
    CheckerInfo {
        id: CheckerId(4),
        name: "Grant w/o request",
        rule: "It is not possible for a client to win a grant without making a request.",
        module: Some(ModuleClass::Sa1),
        categories: &[NoNewFlit, NoMixing],
        risk: Risk::Normal,
        applicability: Applicability::Always,
        observes: ARB_WIRES,
        constrains: ARB_WIRES,
    },
    CheckerInfo {
        id: CheckerId(5),
        name: "Grant to nobody",
        rule: "The arbiter must always provide a winner when there is at least one client request.",
        module: Some(ModuleClass::Sa1),
        categories: &[BoundedDelivery],
        risk: Risk::Normal,
        applicability: Applicability::Always,
        observes: ARB_WIRES,
        constrains: ARB_WIRES,
    },
    CheckerInfo {
        id: CheckerId(6),
        name: "1-hot grant vector",
        rule: "The arbiter's output vector must have at most one bit set to logic high.",
        module: Some(ModuleClass::Sa1),
        categories: &[NoMixing],
        risk: Risk::Normal,
        applicability: Applicability::Always,
        observes: ARB_GRANTS,
        constrains: ARB_GRANTS,
    },
    CheckerInfo {
        id: CheckerId(7),
        name: "Grant to occupied or full VC",
        rule: "A grant to an occupied output VC, or without downstream credits, is forbidden.",
        module: Some(ModuleClass::Va2),
        categories: &[NoFlitDrop, NoMixing],
        risk: Risk::Normal,
        applicability: Applicability::Always,
        observes: &[Sa1Grant, Va2Grant, Va2OutVc, Sa2Grant],
        constrains: &[Sa1Grant, Va2Grant, Va2OutVc, Sa2Grant],
    },
    CheckerInfo {
        id: CheckerId(8),
        name: "One-to-one VC assignment",
        rule: "An input VC must not be assigned to multiple output VCs.",
        module: Some(ModuleClass::Va2),
        categories: &[NoMixing],
        risk: Risk::Normal,
        applicability: Applicability::Always,
        observes: &[Va1Grant, Va2Grant],
        constrains: &[Va2Grant],
    },
    CheckerInfo {
        id: CheckerId(9),
        name: "One-to-one port assignment",
        rule: "An input port must not gain simultaneous access to multiple output ports.",
        module: Some(ModuleClass::Sa2),
        categories: &[NoMixing],
        risk: Risk::Normal,
        applicability: Applicability::Always,
        observes: &[Sa2Grant],
        constrains: &[Sa2Grant],
    },
    CheckerInfo {
        id: CheckerId(10),
        name: "VA agrees with RC",
        rule: "The output VC assigned by VA must belong to the output port computed by RC.",
        module: Some(ModuleClass::Va2),
        categories: &[BoundedDelivery, NoMixing],
        risk: Risk::Normal,
        applicability: Applicability::Always,
        observes: &[Va2Grant, VcOutPort],
        constrains: &[Va2Grant, VcOutPort],
    },
    CheckerInfo {
        id: CheckerId(11),
        name: "SA agrees with RC",
        rule: "The SA result must be in agreement with the result of the RC stage.",
        module: Some(ModuleClass::Sa2),
        categories: &[BoundedDelivery, NoMixing],
        risk: Risk::Normal,
        applicability: Applicability::Always,
        observes: &[Sa2Grant, VcOutPort],
        constrains: &[Sa2Grant, VcOutPort],
    },
    CheckerInfo {
        id: CheckerId(12),
        name: "Intra-VA stage order",
        rule: "If a VC wins the VA2 arbitration stage, it must also have won the VA1 stage.",
        module: Some(ModuleClass::Va2),
        categories: &[NoMixing],
        risk: Risk::Normal,
        applicability: Applicability::Always,
        observes: &[Va1Grant, Va2Grant],
        constrains: &[Va2Grant],
    },
    CheckerInfo {
        id: CheckerId(13),
        name: "Intra-SA stage order",
        rule: "If a VC wins the SA2 arbitration stage, it must also have won the SA1 stage.",
        module: Some(ModuleClass::Sa2),
        categories: &[NoFlitDrop, BoundedDelivery, NoMixing],
        risk: Risk::Normal,
        applicability: Applicability::Always,
        observes: &[Sa1Grant, Sa2Grant],
        constrains: &[Sa2Grant],
    },
    CheckerInfo {
        id: CheckerId(14),
        name: "1-hot XBAR column control vector",
        rule:
            "At most one connection may be active per crossbar column per cycle (no flit mixing).",
        module: Some(ModuleClass::XbarCtl),
        categories: &[NoMixing],
        risk: Risk::Normal,
        applicability: Applicability::Always,
        observes: &[XbarCol],
        constrains: &[XbarCol],
    },
    CheckerInfo {
        id: CheckerId(15),
        name: "1-hot XBAR row control vector",
        rule: "At most one connection may be active per crossbar row per cycle (no multicasting).",
        module: Some(ModuleClass::XbarCtl),
        categories: &[NoNewFlit],
        risk: Risk::Normal,
        applicability: Applicability::Always,
        observes: &[XbarCol],
        constrains: &[XbarCol],
    },
    CheckerInfo {
        id: CheckerId(16),
        name: "#incoming flits equals #outgoing flits",
        rule: "Each cycle, the number of flits leaving the XBAR must equal the number entering it.",
        module: Some(ModuleClass::XbarCtl),
        categories: &[NoFlitDrop, NoNewFlit],
        risk: Risk::Normal,
        applicability: Applicability::Always,
        observes: &[XbarCol, XbarGrantIn],
        constrains: &[XbarCol, XbarGrantIn],
    },
    CheckerInfo {
        id: CheckerId(17),
        name: "Consistent VC buffer state",
        rule: "The NoC router pipeline stages must be executed in the correct order.",
        module: Some(ModuleClass::VcState),
        categories: &[NoFlitDrop, NoNewFlit, NoMixing],
        risk: Risk::Normal,
        applicability: Applicability::Always,
        observes: &[VcStateCode, VcEvRcDone, VcEvVaDone, VcEvSaWon],
        constrains: &[VcStateCode, VcEvRcDone, VcEvVaDone, VcEvSaWon],
    },
    CheckerInfo {
        id: CheckerId(18),
        name: "Only header flits in free VC buffers",
        rule: "Only a header flit may enter a free (unallocated) VC buffer.",
        module: Some(ModuleClass::VcState),
        categories: &[NoMixing],
        risk: Risk::Normal,
        applicability: Applicability::Always,
        observes: &[BufWrite, BufHeadKind, VcStateCode],
        constrains: &[BufWrite, BufHeadKind],
    },
    CheckerInfo {
        id: CheckerId(19),
        name: "Invalid output VC value",
        rule: "The output VC saved at the end of VA must be within range and message class.",
        module: Some(ModuleClass::VcState),
        categories: &[NoFlitDrop, NoMixing],
        risk: Risk::Normal,
        applicability: Applicability::Always,
        observes: &[Va2OutVc, VcOutVc],
        constrains: &[Va2OutVc, VcOutVc],
    },
    CheckerInfo {
        id: CheckerId(20),
        name: "Complete RC stage on a non-header flit",
        rule: "Routing computation is performed only on header flits.",
        module: Some(ModuleClass::VcState),
        categories: &[BoundedDelivery],
        risk: Risk::Normal,
        applicability: Applicability::Always,
        observes: &[VcEvRcDone, RcHeadValid, BufHeadKind],
        constrains: &[VcEvRcDone, RcHeadValid, BufHeadKind],
    },
    CheckerInfo {
        id: CheckerId(21),
        name: "Complete RC stage on an empty VC",
        rule: "A transition from RC to VA is forbidden if the VC's buffer is empty.",
        module: Some(ModuleClass::VcState),
        categories: &[NoNewFlit],
        risk: Risk::Normal,
        applicability: Applicability::Always,
        observes: &[VcEvRcDone, BufEmpty],
        constrains: &[VcEvRcDone, BufEmpty],
    },
    CheckerInfo {
        id: CheckerId(22),
        name: "Complete VA stage on a non-header flit",
        rule: "Virtual-channel allocation is performed only on header flits.",
        module: Some(ModuleClass::VcState),
        categories: &[NoMixing],
        risk: Risk::Normal,
        applicability: Applicability::Always,
        observes: &[VcEvVaDone, BufHeadKind],
        constrains: &[VcEvVaDone, BufHeadKind],
    },
    CheckerInfo {
        id: CheckerId(23),
        name: "Complete VA stage on an empty VC",
        rule: "A transition from VA to SA is forbidden if the VC's buffer is empty.",
        module: Some(ModuleClass::VcState),
        categories: &[NoNewFlit],
        risk: Risk::Normal,
        applicability: Applicability::Always,
        observes: &[VcEvVaDone, BufEmpty],
        constrains: &[VcEvVaDone, BufEmpty],
    },
    CheckerInfo {
        id: CheckerId(24),
        name: "Read from an empty buffer",
        rule: "A read signal cannot be issued to an empty VC buffer.",
        module: Some(ModuleClass::BufState),
        categories: &[NoNewFlit],
        risk: Risk::Normal,
        applicability: Applicability::Always,
        observes: &[BufRead, BufEmpty],
        constrains: &[BufRead, BufEmpty],
    },
    CheckerInfo {
        id: CheckerId(25),
        name: "Write to a full buffer",
        rule: "A write signal cannot be issued to a full VC buffer.",
        module: Some(ModuleClass::BufState),
        categories: &[NoFlitDrop],
        risk: Risk::Normal,
        applicability: Applicability::Always,
        observes: &[BufWrite, BufFull],
        constrains: &[BufWrite, BufFull],
    },
    CheckerInfo {
        id: CheckerId(26),
        name: "Buffer atomicity violation",
        rule: "With atomic buffers, a header flit cannot arrive at a non-free VC buffer.",
        module: Some(ModuleClass::BufState),
        categories: &[NoMixing],
        risk: Risk::Normal,
        applicability: Applicability::AtomicOnly,
        observes: &[BufWrite, BufHeadKind, VcStateCode],
        constrains: &[BufWrite, BufHeadKind],
    },
    CheckerInfo {
        id: CheckerId(27),
        name: "Packet mixing in non-atomic buffer",
        rule: "With non-atomic buffers, a tail flit may only be followed by a header flit.",
        module: Some(ModuleClass::BufState),
        categories: &[NoMixing],
        risk: Risk::Normal,
        applicability: Applicability::NonAtomicOnly,
        observes: &[BufWrite, BufHeadKind],
        constrains: &[BufWrite, BufHeadKind],
    },
    CheckerInfo {
        id: CheckerId(28),
        name: "Packet flit-count violation",
        rule: "Packets of a message class all have the same pre-defined number of flits.",
        module: Some(ModuleClass::BufState),
        categories: &[NoFlitDrop, NoNewFlit],
        risk: Risk::Normal,
        applicability: Applicability::Always,
        observes: &[BufWrite, BufHeadKind],
        constrains: &[BufWrite, BufHeadKind],
    },
    CheckerInfo {
        id: CheckerId(29),
        name: "Concurrent read from multiple VCs",
        rule: "Only one flit may leave a single input port per cycle (single output multiplexer).",
        module: None,
        categories: &[NoMixing, NoFlitDrop],
        risk: Risk::Normal,
        applicability: Applicability::Always,
        observes: &[BufRead],
        constrains: &[BufRead],
    },
    CheckerInfo {
        id: CheckerId(30),
        name: "Concurrent write to multiple VCs",
        rule: "Only one flit may arrive at a single input port per cycle (single demultiplexer).",
        module: None,
        categories: &[NoMixing, NoNewFlit],
        risk: Risk::Normal,
        applicability: Applicability::Always,
        observes: &[BufWrite],
        constrains: &[BufWrite],
    },
    CheckerInfo {
        id: CheckerId(31),
        name: "Concurrent RC stage completion of multiple VCs",
        rule: "Only one VC per input port may complete its RC stage per cycle.",
        module: None,
        categories: &[BoundedDelivery],
        risk: Risk::Normal,
        applicability: Applicability::Always,
        observes: &[VcEvRcDone],
        constrains: &[VcEvRcDone],
    },
    CheckerInfo {
        id: CheckerId(32),
        name: "Network-level invariance (end-to-end)",
        rule: "Flits arrive at their intended destination, in order, with no stray continuations.",
        module: None,
        categories: &[NoFlitDrop, BoundedDelivery, NoNewFlit, NoMixing],
        risk: Risk::Normal,
        applicability: Applicability::Always,
        observes: &[RcDestX, RcDestY],
        constrains: &[RcDestX, RcDestY],
    },
];

/// Looks up the Table-1 entry for a checker id.
///
/// # Panics
///
/// Panics if `id` is outside `1..=32`.
pub fn info(id: CheckerId) -> &'static CheckerInfo {
    &TABLE1[id.index()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_32_entries_in_order() {
        assert_eq!(TABLE1.len(), 32);
        for (i, e) in TABLE1.iter().enumerate() {
            assert_eq!(e.id.0 as usize, i + 1);
            assert!(!e.name.is_empty());
            assert!(!e.rule.is_empty());
            assert!(!e.categories.is_empty());
        }
    }

    #[test]
    fn low_risk_checkers_are_1_and_3() {
        let low: Vec<u8> = TABLE1
            .iter()
            .filter(|e| e.risk == Risk::Low)
            .map(|e| e.id.0)
            .collect();
        assert_eq!(low, vec![1, 3]);
    }

    #[test]
    fn buffer_policy_applicability() {
        assert!(info(CheckerId(26))
            .applicability
            .applies(BufferPolicy::Atomic));
        assert!(!info(CheckerId(26))
            .applicability
            .applies(BufferPolicy::NonAtomic));
        assert!(info(CheckerId(27))
            .applicability
            .applies(BufferPolicy::NonAtomic));
        assert!(!info(CheckerId(27))
            .applicability
            .applies(BufferPolicy::Atomic));
        assert!(info(CheckerId(1))
            .applicability
            .applies(BufferPolicy::Atomic));
    }

    #[test]
    fn every_figure3_category_is_covered() {
        for cat in [
            Category::NoFlitDrop,
            Category::BoundedDelivery,
            Category::NoNewFlit,
            Category::NoMixing,
        ] {
            assert!(
                TABLE1.iter().any(|e| e.categories.contains(&cat)),
                "{cat:?} uncovered"
            );
        }
    }

    #[test]
    fn observes_metadata_is_complete_and_consistent() {
        for e in &TABLE1 {
            assert!(
                !e.observes.is_empty(),
                "{} declares no observed signals",
                e.id
            );
            assert!(
                !e.constrains.is_empty(),
                "{} declares no constrained signals",
                e.id
            );
            for s in e.constrains {
                assert!(
                    e.observes.contains(s),
                    "{} constrains {s:?} without observing it",
                    e.id
                );
            }
            // A module-owned checker must read at least one wire of its own
            // module (cross-module context signals are allowed on top).
            if let Some(m) = e.module {
                assert!(
                    e.observes.iter().any(|s| s.module() == m),
                    "{} ({m}) observes no signal of its own module",
                    e.id
                );
            }
        }
    }

    #[test]
    fn every_signal_kind_is_constrained_by_some_checker() {
        use noc_types::site::SignalKind;
        for policy in [BufferPolicy::Atomic, BufferPolicy::NonAtomic] {
            for sig in SignalKind::ALL {
                assert!(
                    TABLE1
                        .iter()
                        .filter(|e| e.applicability.applies(policy))
                        .any(|e| e.constrains.contains(&sig)),
                    "{sig:?} unconstrained under {policy:?}"
                );
            }
        }
    }

    #[test]
    fn checker_id_iteration_and_display() {
        let all: Vec<_> = CheckerId::all().collect();
        assert_eq!(all.len(), 32);
        assert_eq!(all[0].to_string(), "inv1");
        assert_eq!(all[31].index(), 31);
    }
}
