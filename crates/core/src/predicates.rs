//! Pure combinational checker predicates.
//!
//! The invariance conditions that operate on small, closed input cones are
//! factored out of [`crate::AlertBank`] into free functions so that exactly
//! one definition exists for each predicate. Two consumers share them:
//!
//! 1. the runtime checker bank, which evaluates them on live wire records
//!    every cycle, and
//! 2. the static prover in `nocalert-analysis`, which enumerates the full
//!    input space of each cone and proves the predicate silent on every
//!    legal input (and, for the VC-state cone, that it fires on every
//!    illegal one).
//!
//! Because both sides call the *same* functions, an exhaustive proof over a
//! cone is a proof about the deployed checker, not about a re-derivation of
//! it.

use serde::{Deserialize, Serialize};

/// Result of evaluating the three arbiter invariances (Table 1: 4, 5, 6)
/// on one request/grant wire pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArbiterCheck {
    /// Invariance 4: a grant bit is set outside the request vector.
    pub grant_without_request: bool,
    /// Invariance 5: requests pending but no grant issued.
    pub grant_to_nobody: bool,
    /// Invariance 6: more than one grant bit set.
    pub multiple_grants: bool,
}

impl ArbiterCheck {
    /// True when none of the three invariances is violated.
    #[inline]
    pub fn silent(self) -> bool {
        !(self.grant_without_request || self.grant_to_nobody || self.multiple_grants)
    }
}

/// Evaluates invariances 4/5/6 on an arbiter's request and grant vectors.
///
/// Both vectors are taken as raw (possibly fault-corrupted) wires; bits at
/// or above the arbiter's width must already be masked off by the caller,
/// exactly as the physical checker sees only the existing wires.
#[inline]
pub fn check_arbiter_wires(req: u64, grant: u64) -> ArbiterCheck {
    ArbiterCheck {
        grant_without_request: grant & !req != 0,
        grant_to_nobody: req != 0 && grant == 0,
        multiple_grants: grant.count_ones() > 1,
    }
}

/// Invariance 17: pipeline-stage events must match the VC's 2-bit state.
///
/// `state` is the raw state-register value *before* the events apply
/// (encodings in `noc_sim::vc::state`): RC may complete only from
/// `ROUTING` (1), VA only from `VA_PENDING` (2), and a switch grant may
/// land only on an `ACTIVE` (3) VC — or, in the speculative pipeline of
/// Section 4.4, also while VA is still pending (`state == 2`).
///
/// Returns `true` when the combination is illegal (the checker fires).
#[inline]
pub fn vc_order_violated(
    state: u64,
    ev_rc_done: bool,
    ev_va_done: bool,
    ev_sa_won: bool,
    speculative: bool,
) -> bool {
    let sa_ok = (speculative && state == 2) || state == 3;
    (ev_rc_done && state != 1) || (ev_va_done && state != 2) || (ev_sa_won && !sa_ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arbiter_predicate_matches_definitions() {
        assert!(check_arbiter_wires(0, 0).silent());
        assert!(check_arbiter_wires(0b1010, 0b0010).silent());
        assert!(check_arbiter_wires(0b1010, 0b0100).grant_without_request);
        assert!(check_arbiter_wires(0b1010, 0).grant_to_nobody);
        assert!(check_arbiter_wires(0b1111, 0b0110).multiple_grants);
        // An all-zero grant on zero requests is legal silence.
        assert!(!check_arbiter_wires(0, 0).grant_to_nobody);
    }

    #[test]
    fn vc_order_predicate_basic_cases() {
        // Legal: each event from its proper state.
        assert!(!vc_order_violated(1, true, false, false, false));
        assert!(!vc_order_violated(2, false, true, false, false));
        assert!(!vc_order_violated(3, false, false, true, false));
        // Illegal: RC event on an idle VC; SA win while VA pending.
        assert!(vc_order_violated(0, true, false, false, false));
        assert!(vc_order_violated(2, false, false, true, false));
        // ...unless the pipeline is speculative (Section 4.4 relaxation).
        assert!(!vc_order_violated(2, false, false, true, true));
        assert!(vc_order_violated(1, false, false, true, true));
    }
}
