//! `nocalertd` — the campaign service daemon and its thin CLI client.
//!
//! ```text
//! # Serve (writes the bound address to --addr-file when binding port 0):
//! nocalertd serve --data-dir DIR [--addr 127.0.0.1:0] [--workers N] [--addr-file PATH]
//!
//! # Client verbs (all take --addr HOST:PORT):
//! nocalertd submit --addr A (--spec JSON | --spec-file PATH)   # prints the job id
//! nocalertd wait   --addr A --job ID [--timeout-secs S]        # exit 0 iff Completed
//! nocalertd events --addr A --job ID                           # prints the SSE feed
//! nocalertd cancel --addr A --job ID
//! nocalertd status --addr A [--job ID]
//! ```
//!
//! The client side exists so the CI smoke and scripts need nothing but
//! this binary; any HTTP client (`curl` included) speaks the same
//! routes.

use nocalert_service::{http, Server, ServerOptions};
use serde::Value;
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn fail(msg: &str) -> ! {
    eprintln!("[nocalertd] fatal: {msg}");
    std::process::exit(2);
}

/// `--key value` / `--flag` argument map with one leading positional
/// (the command verb).
struct Args {
    verb: String,
    map: HashMap<String, String>,
}

impl Args {
    fn from_env() -> Args {
        let mut it = std::env::args().skip(1).peekable();
        let verb = it.next().unwrap_or_default();
        let mut map = HashMap::new();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let val = match it.peek() {
                    Some(v) if !v.starts_with("--") => it.next().unwrap_or_default(),
                    _ => String::from("true"),
                };
                map.insert(key.to_string(), val);
            }
        }
        Args { verb, map }
    }

    fn str(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(|s| s.as_str())
    }

    fn required(&self, key: &str) -> &str {
        match self.str(key) {
            Some(v) => v,
            None => fail(&format!("missing required --{key}")),
        }
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.map
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn serve(args: &Args) -> i32 {
    let opts = ServerOptions {
        addr: args.get("addr", String::from("127.0.0.1:0")),
        data_dir: PathBuf::from(args.required("data-dir")),
        workers: args.get("workers", 2usize),
    };
    let server = match Server::bind(&opts) {
        Ok(s) => s,
        Err(e) => fail(&format!("bind {}: {e}", opts.addr)),
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => fail(&format!("local_addr: {e}")),
    };
    if let Some(path) = args.str("addr-file") {
        if let Err(e) = std::fs::write(path, addr.to_string()) {
            fail(&format!("cannot write {path}: {e}"));
        }
    }
    println!(
        "[nocalertd] listening on {addr}, data dir {}",
        opts.data_dir.display()
    );
    match server.run() {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("[nocalertd] server error: {e}");
            1
        }
    }
}

/// Parses a JSON response body, failing loudly on protocol violations.
fn parse(body: &str, ctx: &str) -> Value {
    match Value::parse_json(body) {
        Ok(v) => v,
        Err(e) => fail(&format!("{ctx}: unparseable response ({e}): {body}")),
    }
}

fn submit(args: &Args) -> i32 {
    let addr = args.required("addr");
    let spec = match (args.str("spec"), args.str("spec-file")) {
        (Some(s), _) => s.to_string(),
        (None, Some(path)) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => fail(&format!("cannot read {path}: {e}")),
        },
        (None, None) => fail("submit needs --spec JSON or --spec-file PATH"),
    };
    match http::request(addr, "POST", "/jobs", Some(&spec)) {
        Ok((201, body)) => {
            let doc = parse(&body, "submit");
            match doc.get("id").and_then(Value::as_str) {
                Some(id) => {
                    println!("{id}");
                    0
                }
                None => fail(&format!("submit: no id in response: {body}")),
            }
        }
        Ok((status, body)) => fail(&format!("submit rejected ({status}): {body}")),
        Err(e) => fail(&format!("submit: {e}")),
    }
}

fn wait(args: &Args) -> i32 {
    let addr = args.required("addr");
    let job = args.required("job");
    let deadline = Instant::now() + Duration::from_secs(args.get("timeout-secs", 600u64));
    loop {
        let (status, body) = match http::request(addr, "GET", &format!("/jobs/{job}"), None) {
            Ok(r) => r,
            Err(e) => fail(&format!("wait: {e}")),
        };
        if status != 200 {
            fail(&format!("wait: /jobs/{job} -> {status}: {body}"));
        }
        let doc = parse(&body, "wait");
        let state = doc
            .get("state")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        match state.as_str() {
            "Completed" => {
                if let Ok((200, result)) =
                    http::request(addr, "GET", &format!("/jobs/{job}/result"), None)
                {
                    let rdoc = parse(&result, "wait");
                    let digest = rdoc.get("digest").and_then(Value::as_str).unwrap_or("?");
                    let summary = rdoc.get("summary").and_then(Value::as_str).unwrap_or("?");
                    println!("{job} Completed digest={digest} :: {summary}");
                } else {
                    println!("{job} Completed");
                }
                return 0;
            }
            "Failed" | "Cancelled" => {
                eprintln!("[nocalertd] {job} ended {state}: {body}");
                return 1;
            }
            _ => {}
        }
        if Instant::now() >= deadline {
            eprintln!("[nocalertd] timed out waiting for {job} (last state {state})");
            return 3;
        }
        std::thread::sleep(Duration::from_millis(200));
    }
}

fn events(args: &Args) -> i32 {
    let addr = args.required("addr");
    let job = args.required("job");
    let outcome = http::stream_events(addr, &format!("/jobs/{job}/events"), &mut |data| {
        println!("{data}");
        true
    });
    match outcome {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("[nocalertd] events: {e}");
            1
        }
    }
}

fn cancel(args: &Args) -> i32 {
    let addr = args.required("addr");
    let job = args.required("job");
    match http::request(addr, "POST", &format!("/jobs/{job}/cancel"), None) {
        Ok((200, body)) => {
            println!("{body}");
            0
        }
        Ok((status, body)) => fail(&format!("cancel rejected ({status}): {body}")),
        Err(e) => fail(&format!("cancel: {e}")),
    }
}

fn status(args: &Args) -> i32 {
    let addr = args.required("addr");
    let path = match args.str("job") {
        Some(id) => format!("/jobs/{id}"),
        None => String::from("/jobs"),
    };
    match http::request(addr, "GET", &path, None) {
        Ok((200, body)) => {
            println!("{body}");
            0
        }
        Ok((status, body)) => fail(&format!("status ({status}): {body}")),
        Err(e) => fail(&format!("status: {e}")),
    }
}

fn main() {
    let args = Args::from_env();
    let code = match args.verb.as_str() {
        "serve" => serve(&args),
        "submit" => submit(&args),
        "wait" => wait(&args),
        "events" => events(&args),
        "cancel" => cancel(&args),
        "status" => status(&args),
        other => {
            eprintln!(
                "[nocalertd] unknown command {other:?}; expected serve|submit|wait|events|cancel|status"
            );
            2
        }
    };
    std::process::exit(code);
}
