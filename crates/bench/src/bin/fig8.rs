//! **Figure 8** — percentage of invariance violations captured by each of
//! the 32 NoCAlert checkers over all experiments.
//!
//! The paper notes invariance 27 is absent (atomic buffers) and that every
//! checker catches some violations in the absence of all others — no
//! checker is redundant.
//!
//! ```text
//! cargo run --release -p nocalert-bench --bin fig8 -- [--sites N|--full] \
//!     [--warm W] [--threads T] [--json out.json] \
//!     [--checkpoint-dir D] [--resume]
//! ```

use golden::stats::checker_shares;
use nocalert::{info, CheckerId};
use nocalert_bench::{maybe_write_json, Args, Experiment};
use serde::Serialize;

#[derive(Serialize)]
struct Fig8Out {
    shares_pct: Vec<(u8, f64)>,
}

fn main() {
    let args = Args::from_env();
    let exp = Experiment::from_args(&args);
    let warm: u64 = args.get("warm", 32_000);

    println!("== Figure 8: violations captured per checker ==");
    let (_c, mut results) = exp.run_campaign(0);
    let (_c2, mut results2) = exp.run_campaign(warm);
    results.append(&mut results2);

    let shares = checker_shares(&results);
    let mut bar = String::new();
    println!("{:<6} {:>8}  {:<44} ", "inv", "share%", "name");
    for id in CheckerId::all() {
        let s = shares[id.index()];
        bar.clear();
        for _ in 0..(s as usize) {
            bar.push('#');
        }
        println!(
            "{:<6} {:>8.2}  {:<44} {}",
            id.to_string(),
            s,
            info(id).name,
            bar
        );
    }
    let active = CheckerId::all().filter(|c| shares[c.index()] > 0.0).count();
    println!(
        "\n{active} of 32 checkers captured violations (invariance 27 requires non-atomic buffers)"
    );
    maybe_write_json(
        &args,
        &Fig8Out {
            shares_pct: CheckerId::all().map(|c| (c.0, shares[c.index()])).collect(),
        },
    );
}
