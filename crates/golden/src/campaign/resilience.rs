//! Panic isolation for campaign runs.
//!
//! Fault injection deliberately drives the simulator into states its
//! authors never anticipated; a panic in one rollout must not take down
//! a multi-hour sweep. Runs execute under [`catch_payload`], which wraps
//! `std::panic::catch_unwind` and stringifies the payload. While at
//! least one guarded run is in flight, a process-wide panic hook
//! suppresses the default stderr backtrace spew — thousands of expected
//! crash-quarantine events would otherwise drown real diagnostics. The
//! hook chains to the previously installed one whenever no guarded run
//! is active, so unrelated panics still report normally.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;

static INSTALL: Once = Once::new();
static QUIET: AtomicUsize = AtomicUsize::new(0);

fn install_hook() {
    INSTALL.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if QUIET.load(Ordering::SeqCst) == 0 {
                prev(info);
            }
        }));
    });
}

/// RAII guard: while alive, caught panics are not echoed to stderr.
struct QuietGuard;

impl QuietGuard {
    fn new() -> QuietGuard {
        install_hook();
        QUIET.fetch_add(1, Ordering::SeqCst);
        QuietGuard
    }
}

impl Drop for QuietGuard {
    fn drop(&mut self) {
        QUIET.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Renders a panic payload as a string (the two payload types `panic!`
/// produces, with a fallback for exotic ones).
fn payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Renders a worker-thread join error (a panic payload that escaped the
/// per-run boundary) for [`CampaignError::WorkerLost`] reports.
///
/// [`CampaignError::WorkerLost`]: super::error::CampaignError::WorkerLost
pub(crate) fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    payload_string(payload)
}

/// Runs `f` behind the panic-isolation boundary: `Ok(value)` on normal
/// return, `Err(payload)` when `f` panicked. The panic is quarantined —
/// nothing is printed and the unwinding stops here.
pub fn catch_payload<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    let _quiet = QuietGuard::new();
    panic::catch_unwind(AssertUnwindSafe(f)).map_err(payload_string)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_return_passes_through() {
        assert_eq!(catch_payload(|| 41 + 1), Ok(42));
    }

    #[test]
    fn panic_is_caught_with_payload() {
        let r = catch_payload(|| -> u32 { panic!("boom {}", 7) });
        assert_eq!(r, Err("boom 7".to_string()));
    }

    #[test]
    fn division_by_zero_is_caught() {
        let r = catch_payload(|| {
            let d = std::hint::black_box(0u64);
            1u64 / d
        });
        let msg = r.unwrap_err();
        assert!(msg.contains("divide by zero"), "{msg}");
    }

    #[test]
    fn guard_nesting_is_balanced() {
        let before = QUIET.load(Ordering::SeqCst);
        let _ = catch_payload(|| {
            let _ = catch_payload(|| panic!("inner"));
            panic!("outer")
        });
        assert_eq!(QUIET.load(Ordering::SeqCst), before);
    }
}
