//! End-to-end service tests: submit → stream → `kill -9` → restart →
//! resume, with the resumed aggregate bit-identical to a direct
//! engine run of the same spec at a different worker count; plus an
//! SSE incident-stream snapshot for the canonical one-fault job.
//!
//! The server runs as a real child process (the `nocalertd` binary),
//! so the kill is a genuine SIGKILL mid-campaign — exactly the failure
//! the JSONL checkpoint substrate is built to survive.

use golden::JobDriver;
use noc_types::{JobKind, JobSpec, NocConfig};
use nocalert_service::http;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn small_noc() -> NocConfig {
    let mut noc = NocConfig::paper_baseline();
    noc.mesh = noc_types::Mesh::new(3, 3);
    noc.vcs_per_port = 2;
    noc.message_classes = 1;
    noc.packet_lengths = vec![5];
    noc.injection_rate = 0.05;
    noc
}

fn recovery_spec(threads: u32) -> JobSpec {
    JobSpec {
        kind: JobKind::Recovery,
        noc: small_noc(),
        warmup: 200,
        window: 1_200,
        limit: Some(5),
        threads,
    }
}

struct Server {
    child: Child,
    addr: String,
}

impl Server {
    /// Launches `nocalertd serve` on an ephemeral port and waits for
    /// the bound address to land in the addr-file.
    fn start(data_dir: &Path, tag: &str) -> Server {
        let addr_file = data_dir.join(format!("addr-{tag}"));
        let _ = std::fs::remove_file(&addr_file);
        let child = Command::new(env!("CARGO_BIN_EXE_nocalertd"))
            .args([
                "serve",
                "--data-dir",
                &data_dir.display().to_string(),
                "--addr",
                "127.0.0.1:0",
                "--addr-file",
                &addr_file.display().to_string(),
                "--workers",
                "1",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn nocalertd");
        let deadline = Instant::now() + Duration::from_secs(30);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&addr_file) {
                if !text.trim().is_empty() {
                    break text.trim().to_string();
                }
            }
            assert!(
                Instant::now() < deadline,
                "nocalertd never published its address"
            );
            std::thread::sleep(Duration::from_millis(50));
        };
        Server { child, addr }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.kill();
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nocalertd-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create data dir");
    dir
}

fn submit(addr: &str, spec: &JobSpec) -> String {
    let body = serde_json::to_string(spec).expect("serialize spec");
    let (status, response) =
        http::request(addr, "POST", "/jobs", Some(&body)).expect("submit request");
    assert_eq!(status, 201, "submit failed: {response}");
    let doc = serde::Value::parse_json(&response).expect("parse submit response");
    doc.get("id")
        .and_then(serde::Value::as_str)
        .expect("id in submit response")
        .to_string()
}

fn job_state(addr: &str, id: &str) -> String {
    let (status, body) =
        http::request(addr, "GET", &format!("/jobs/{id}"), None).expect("status request");
    assert_eq!(status, 200, "status failed: {body}");
    let doc = serde::Value::parse_json(&body).expect("parse status");
    doc.get("state")
        .and_then(serde::Value::as_str)
        .unwrap_or("")
        .to_string()
}

fn wait_completed(addr: &str, id: &str, budget: Duration) {
    let deadline = Instant::now() + budget;
    loop {
        let state = job_state(addr, id);
        if state == "Completed" {
            return;
        }
        assert!(
            state == "Queued" || state == "Running",
            "job {id} ended in unexpected state {state}"
        );
        assert!(
            Instant::now() < deadline,
            "job {id} did not complete in time (last state {state})"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

fn result_json(addr: &str, id: &str) -> serde::Value {
    let (status, body) =
        http::request(addr, "GET", &format!("/jobs/{id}/result"), None).expect("result request");
    assert_eq!(status, 200, "result failed: {body}");
    serde::Value::parse_json(&body).expect("parse result")
}

/// The tentpole acceptance pin: a job submitted over HTTP, killed
/// mid-run with SIGKILL, restarted, and resumed must aggregate
/// bit-identically to a direct in-process engine run of the same spec
/// at a different worker count.
#[test]
fn submit_kill_restart_resume_matches_direct_run() {
    let data_dir = temp_dir("resume");
    let mut server = Server::start(&data_dir, "first");
    let id = submit(&server.addr, &recovery_spec(1));

    // Tail the SSE feed until the first progress frame so the kill
    // lands after at least one checkpointed chunk (and, in the worst
    // case of a fast job, after completion — resume then restores
    // everything from shards, which is the same contract).
    let addr = server.addr.clone();
    let path = format!("/jobs/{id}/events");
    let mut saw_progress = false;
    let _ = http::stream_events(&addr, &path, &mut |data| {
        if data.contains("Progress") {
            saw_progress = true;
            return false;
        }
        true
    });
    assert!(saw_progress, "no progress frame before kill");
    server.kill();

    // Restart over the same data dir: the job is re-enqueued with
    // resume enabled and runs to completion.
    let server2 = Server::start(&data_dir, "second");
    wait_completed(&server2.addr, &id, Duration::from_secs(600));
    let result = result_json(&server2.addr, &id);
    let digest = result
        .get("digest")
        .and_then(serde::Value::as_str)
        .expect("digest")
        .to_string();

    // Direct engine run, no service, no checkpoints, different worker
    // count: the digest must match bit for bit.
    let direct = JobDriver::default()
        .run(&recovery_spec(3), &mut |_| {})
        .expect("direct run");
    assert_eq!(
        digest, direct.digest,
        "service aggregate diverged from direct run"
    );

    // Incidents served over HTTP match the direct run's clustering.
    let (status, body) =
        http::request(&server2.addr, "GET", &format!("/jobs/{id}/incidents"), None)
            .expect("incidents request");
    assert_eq!(status, 200);
    let served = serde::Value::parse_json(&body).expect("parse incidents");
    let direct_incidents = serde_json::to_value(&direct.incidents).expect("serialize incidents");
    assert_eq!(served, direct_incidents, "incident streams diverged");
}

/// SSE snapshot for the canonical one-fault transient job: the feed
/// must deliver state, progress, and exactly one clustered incident
/// whose fields tell the fault's story.
#[test]
fn sse_incident_stream_for_one_fault_job() {
    let data_dir = temp_dir("sse");
    let server = Server::start(&data_dir, "only");
    let spec = JobSpec {
        kind: JobKind::Transient,
        noc: small_noc(),
        warmup: 200,
        window: 1_200,
        limit: Some(1),
        threads: 1,
    };
    let id = submit(&server.addr, &spec);

    let mut frames: Vec<serde::Value> = Vec::new();
    http::stream_events(&server.addr, &format!("/jobs/{id}/events"), &mut |data| {
        frames.push(serde::Value::parse_json(data).expect("parse frame"));
        true
    })
    .expect("stream events");

    let states: Vec<&str> = frames
        .iter()
        .filter_map(|f| f.get("State").and_then(serde::Value::as_str))
        .collect();
    assert!(states.contains(&"Running"), "states seen: {states:?}");
    assert_eq!(states.last(), Some(&"Completed"), "states seen: {states:?}");
    assert!(
        frames.iter().any(|f| f.get("Progress").is_some()),
        "no progress frame"
    );

    let incidents: Vec<&serde::Value> = frames.iter().filter_map(|f| f.get("Incident")).collect();
    assert_eq!(incidents.len(), 1, "expected exactly one incident");
    let inc = incidents[0];
    assert_eq!(inc.get("id").and_then(serde::Value::as_u64), Some(0));
    let subject = inc
        .get("subject")
        .and_then(serde::Value::as_str)
        .expect("subject");
    assert!(
        subject.contains("Transient"),
        "subject should name the fault class: {subject}"
    );
    let delivery = inc
        .get("delivery")
        .and_then(serde::Value::as_str)
        .expect("delivery");
    assert!(!delivery.is_empty());
    // Checker ids, when any fired, use Table-1 numbering and arrive
    // deduped ascending.
    if let Some(serde::Value::Array(checkers)) = inc.get("checkers") {
        let ids: Vec<u64> = checkers.iter().filter_map(serde::Value::as_u64).collect();
        assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "checkers not ascending: {ids:?}"
        );
        assert!(
            ids.iter().all(|&c| (1..=32).contains(&c)),
            "bad checker id: {ids:?}"
        );
    }

    // The durable result repeats the same incident list (served from
    // result.json once the job is terminal).
    wait_completed(&server.addr, &id, Duration::from_secs(60));
    let result = result_json(&server.addr, &id);
    let stored = result.get("incidents").expect("incidents in result");
    let streamed = serde::Value::Array(incidents.into_iter().cloned().collect());
    assert_eq!(
        stored, &streamed,
        "stored incidents diverged from streamed ones"
    );
}
