//! The fault plane: in-line single-bit fault injection at module boundaries.
//!
//! Every signal a router module consumes or produces is routed through
//! [`FaultPlane::xf`]. When a fault is armed on that exact wire
//! ([`SiteRef`]) and temporally active ([`FaultKind`]), the value comes
//! back with the addressed bit flipped; otherwise it passes through
//! untouched. Both the router's functional logic *and* the observation
//! record consume the transformed value — faults therefore propagate
//! through real state, and checkers see exactly what the hardware wires
//! would carry (Figure 5 of the paper).

use noc_types::site::{FaultKind, SignalKind, SiteRef};
use noc_types::Cycle;
use serde::{Deserialize, Serialize};

/// A fault armed on one site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArmedFault {
    /// The wire bit to corrupt.
    pub site: SiteRef,
    /// Temporal behaviour.
    pub kind: FaultKind,
    /// First cycle at which the fault is (potentially) active.
    pub start: Cycle,
}

/// The injection surface threaded through every router.
///
/// The detection campaigns arm at most one fault at a time, matching the
/// paper's single-fault model; the aging campaign accumulates a growing
/// population of permanents via [`FaultPlane::arm_additional`]. `hits`
/// counts how many times any armed bit actually flipped a live wire (used
/// by coverage tests and the campaign driver to discard vacuous
/// injections). The hot path (no fault, or no fault on this router) stays
/// a couple of compares.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlane {
    faults: Vec<ArmedFault>,
    /// Sorted, deduplicated router ids carrying at least one fault or
    /// probe — the quiescent-router fast path in the network probes this.
    routers: Vec<u16>,
    /// Bit `r` set iff router id `r < 64` appears in `routers`. Router
    /// ids ≥ 64 (meshes larger than 8×8) fall back to the sorted vec.
    /// This keeps the per-wire [`FaultPlane::xf`] hot path — *every*
    /// signal of *every* stepped router goes through it — to a shift and
    /// a mask even while faults are armed elsewhere in the mesh.
    router_mask: u64,
    hits: u64,
    /// Pass-through probe faults: evaluated exactly like `faults` but the
    /// wire value is never modified; would-be flips are tallied per probe
    /// in `probe_hits`. The batched campaign engine arms one probe per
    /// rollout lane to discover which lanes are vacuous along the golden
    /// trajectory. Transient faults on register signals are not supported
    /// as probes (they corrupt stored state in place, which cannot be
    /// modelled pass-through).
    probes: Vec<ArmedFault>,
    /// Per-probe would-be hit counts, indexed like `probes`.
    probe_hits: Vec<u64>,
}

impl FaultPlane {
    /// A plane with no fault armed.
    pub fn new() -> FaultPlane {
        FaultPlane::default()
    }

    /// Arms `fault`, replacing any previous ones and resetting the hit
    /// count (the single-fault campaign entry point).
    pub fn arm(&mut self, fault: ArmedFault) {
        self.faults.clear();
        self.hits = 0;
        self.rebuild_index();
        self.arm_additional(fault);
    }

    /// Arms `fault` on top of whatever is already armed, preserving the
    /// hit count — the accumulating-permanent-fault entry point of the
    /// aging campaign.
    pub fn arm_additional(&mut self, fault: ArmedFault) {
        self.faults.push(fault);
        self.index_router(fault.site.router);
    }

    /// Disarms all real faults (probes are untouched).
    pub fn disarm(&mut self) {
        self.faults.clear();
        self.rebuild_index();
    }

    /// Replaces the probe set, zeroing the per-probe hit tallies. Probes
    /// never alter wire values; they only count would-be flips.
    pub fn arm_probes(&mut self, probes: &[ArmedFault]) {
        self.probes.clear();
        self.probes.extend_from_slice(probes);
        self.probe_hits.clear();
        self.probe_hits.resize(probes.len(), 0);
        self.rebuild_index();
    }

    /// Removes every probe (real faults are untouched).
    pub fn clear_probes(&mut self) {
        self.probes.clear();
        self.probe_hits.clear();
        self.rebuild_index();
    }

    /// Per-probe would-be hit counts, indexed like the slice passed to
    /// [`FaultPlane::arm_probes`].
    pub fn probe_hits(&self) -> &[u64] {
        &self.probe_hits
    }

    /// Number of armed probes.
    pub fn probe_count(&self) -> usize {
        self.probes.len()
    }

    fn index_router(&mut self, router: u16) {
        if let Err(i) = self.routers.binary_search(&router) {
            self.routers.insert(i, router);
        }
        if router < 64 {
            self.router_mask |= 1u64 << router;
        }
    }

    fn rebuild_index(&mut self) {
        self.routers.clear();
        self.router_mask = 0;
        let mut ids: Vec<u16> = self
            .faults
            .iter()
            .chain(self.probes.iter())
            .map(|f| f.site.router)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        for id in ids {
            if id < 64 {
                self.router_mask |= 1u64 << id;
            }
            self.routers.push(id);
        }
    }

    /// The first armed fault, if any (the single-fault campaigns arm
    /// exactly one, so this is *the* fault for them).
    pub fn armed(&self) -> Option<&ArmedFault> {
        self.faults.first()
    }

    /// Every armed fault, in arming order.
    pub fn armed_all(&self) -> &[ArmedFault] {
        &self.faults
    }

    /// Number of armed faults.
    pub fn fault_count(&self) -> usize {
        self.faults.len()
    }

    /// Whether any armed fault or probe targets `router` — the network's
    /// quiescent-router fast path.
    #[inline]
    pub fn router_armed(&self, router: u16) -> bool {
        if router < 64 {
            self.router_mask & (1u64 << router) != 0
        } else {
            self.routers.binary_search(&router).is_ok()
        }
    }

    /// How many times an armed bit has been flipped on a live wire.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// True when no armed fault or probe can influence any wire (or
    /// tally) at any cycle ≥ `cycle` — every one is a transient whose
    /// single active instant already passed. Sustained kinds (permanent,
    /// stuck-at, intermittent) are never inert. An inert plane's
    /// [`FaultPlane::xf`] is the identity and counts no hits, so skipping
    /// its evaluation is sound.
    pub fn inert_from(&self, cycle: Cycle) -> bool {
        self.faults
            .iter()
            .chain(self.probes.iter())
            .all(|f| f.kind == FaultKind::Transient && f.start < cycle)
    }

    /// If the armed fault at `index` is a **transient on a state
    /// register**, and `cycle` is its injection instant, returns the site
    /// so the owner can flip the stored bit in place (a single-event
    /// upset persists until the register is rewritten). Such faults are
    /// *not* applied by [`FaultPlane::xf`]. Index past the fault list
    /// returns `None`, so callers may iterate `0..fault_count()`.
    pub fn register_upset_due_at(&self, index: usize, cycle: Cycle) -> Option<SiteRef> {
        match self.faults.get(index) {
            Some(f)
                if f.kind == FaultKind::Transient
                    && f.site.signal.is_register()
                    && cycle == f.start =>
            {
                Some(f.site)
            }
            _ => None,
        }
    }

    /// [`FaultPlane::register_upset_due_at`] for the single-fault case.
    pub fn register_upset_due(&self, cycle: Cycle) -> Option<SiteRef> {
        self.register_upset_due_at(0, cycle)
    }

    /// Records an out-of-band hit (used when a register upset is applied
    /// directly to stored state).
    pub fn note_hit(&mut self) {
        self.hits += 1;
    }

    /// Transforms the wire `value` of `signal` at instance
    /// `(router, port, vc)` during `cycle`.
    ///
    /// The hot path (no fault or probe armed on this router) is a shift
    /// and a mask against `router_mask`, so arming a fault on one router
    /// costs the other 63 nothing.
    #[inline]
    pub fn xf(
        &mut self,
        cycle: Cycle,
        router: u16,
        port: u8,
        vc: u8,
        signal: SignalKind,
        value: u64,
    ) -> u64 {
        if router < 64 && self.router_mask & (1u64 << router) == 0 {
            return value;
        }
        if self.faults.is_empty() && self.probes.is_empty() {
            return value;
        }
        self.xf_slow(cycle, router, port, vc, signal, value)
    }

    fn xf_slow(
        &mut self,
        cycle: Cycle,
        router: u16,
        port: u8,
        vc: u8,
        signal: SignalKind,
        value: u64,
    ) -> u64 {
        let mut value = value;
        let mut hits = 0u64;
        for f in &self.faults {
            if f.kind == FaultKind::Transient && f.site.signal.is_register() {
                // Register SEUs are applied to the stored value once,
                // not to every read of it.
                continue;
            }
            let s = &f.site;
            if s.router == router
                && s.signal == signal
                && s.port == port
                && s.vc == vc
                && cycle >= f.start
                && f.kind.active_at(cycle - f.start)
            {
                // A hit is only counted when the corrupted level actually
                // differs from the fault-free value (a stuck-at matching
                // the wire is invisible this cycle).
                let faulted = f.kind.apply(value, s.bit);
                if faulted != value {
                    hits += 1;
                }
                value = faulted;
            }
        }
        self.hits += hits;
        // Probes see the post-fault wire level (faults and probes are
        // never armed together in practice) and tally would-be flips
        // without touching the value.
        for (i, f) in self.probes.iter().enumerate() {
            if f.kind == FaultKind::Transient && f.site.signal.is_register() {
                continue;
            }
            let s = &f.site;
            if s.router == router
                && s.signal == signal
                && s.port == port
                && s.vc == vc
                && cycle >= f.start
                && f.kind.active_at(cycle - f.start)
                && f.kind.apply(value, s.bit) != value
            {
                self.probe_hits[i] += 1;
            }
        }
        value
    }

    /// Boolean-wire convenience wrapper around [`FaultPlane::xf`].
    #[inline]
    pub fn xf_bool(
        &mut self,
        cycle: Cycle,
        router: u16,
        port: u8,
        vc: u8,
        signal: SignalKind,
        value: bool,
    ) -> bool {
        self.xf(cycle, router, port, vc, signal, value as u64) & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> SiteRef {
        SiteRef {
            router: 3,
            port: 1,
            vc: 2,
            signal: SignalKind::RcOutDir,
            bit: 1,
        }
    }

    #[test]
    fn pass_through_when_disarmed() {
        let mut p = FaultPlane::new();
        assert_eq!(p.xf(0, 3, 1, 2, SignalKind::RcOutDir, 0b101), 0b101);
        assert_eq!(p.hits(), 0);
    }

    #[test]
    fn transient_flips_exactly_once_in_time() {
        let mut p = FaultPlane::new();
        p.arm(ArmedFault {
            site: site(),
            kind: FaultKind::Transient,
            start: 10,
        });
        // Before start: untouched.
        assert_eq!(p.xf(9, 3, 1, 2, SignalKind::RcOutDir, 0), 0);
        // At start: bit 1 flipped.
        assert_eq!(p.xf(10, 3, 1, 2, SignalKind::RcOutDir, 0), 0b10);
        // After: untouched.
        assert_eq!(p.xf(11, 3, 1, 2, SignalKind::RcOutDir, 0), 0);
        assert_eq!(p.hits(), 1);
    }

    #[test]
    fn permanent_keeps_flipping() {
        let mut p = FaultPlane::new();
        p.arm(ArmedFault {
            site: site(),
            kind: FaultKind::Permanent,
            start: 5,
        });
        for c in 5..20 {
            assert_eq!(p.xf(c, 3, 1, 2, SignalKind::RcOutDir, 0b100), 0b110);
        }
        assert_eq!(p.hits(), 15);
    }

    #[test]
    fn only_matching_instance_is_hit() {
        let mut p = FaultPlane::new();
        p.arm(ArmedFault {
            site: site(),
            kind: FaultKind::Permanent,
            start: 0,
        });
        // Wrong router / port / vc / signal — untouched.
        assert_eq!(p.xf(1, 4, 1, 2, SignalKind::RcOutDir, 0), 0);
        assert_eq!(p.xf(1, 3, 0, 2, SignalKind::RcOutDir, 0), 0);
        assert_eq!(p.xf(1, 3, 1, 0, SignalKind::RcOutDir, 0), 0);
        assert_eq!(p.xf(1, 3, 1, 2, SignalKind::RcDestX, 0), 0);
        assert_eq!(p.hits(), 0);
    }

    #[test]
    fn bool_wrapper_flips_bit_zero() {
        let mut p = FaultPlane::new();
        let mut s = site();
        s.bit = 0;
        s.signal = SignalKind::BufRead;
        p.arm(ArmedFault {
            site: s,
            kind: FaultKind::Transient,
            start: 0,
        });
        assert!(p.xf_bool(0, 3, 1, 2, SignalKind::BufRead, false));
        assert!(!p.xf_bool(1, 3, 1, 2, SignalKind::BufRead, false));
    }

    #[test]
    fn stuck_at_one_forces_level_and_counts_visible_hits_only() {
        let mut p = FaultPlane::new();
        p.arm(ArmedFault {
            site: site(),
            kind: FaultKind::StuckAt1,
            start: 0,
        });
        // Bit 1 already high: no observable corruption, no hit.
        assert_eq!(p.xf(0, 3, 1, 2, SignalKind::RcOutDir, 0b010), 0b010);
        assert_eq!(p.hits(), 0);
        // Bit 1 low: forced high, hit recorded.
        assert_eq!(p.xf(1, 3, 1, 2, SignalKind::RcOutDir, 0b100), 0b110);
        assert_eq!(p.hits(), 1);
    }

    #[test]
    fn stuck_at_zero_forces_level_and_counts_visible_hits_only() {
        let mut p = FaultPlane::new();
        p.arm(ArmedFault {
            site: site(),
            kind: FaultKind::StuckAt0,
            start: 0,
        });
        assert_eq!(p.xf(0, 3, 1, 2, SignalKind::RcOutDir, 0b101), 0b101);
        assert_eq!(p.hits(), 0);
        assert_eq!(p.xf(1, 3, 1, 2, SignalKind::RcOutDir, 0b111), 0b101);
        assert_eq!(p.hits(), 1);
    }

    #[test]
    fn additional_faults_accumulate_independently() {
        let mut p = FaultPlane::new();
        p.arm(ArmedFault {
            site: site(),
            kind: FaultKind::StuckAt1,
            start: 0,
        });
        let mut s2 = site();
        s2.router = 7;
        s2.bit = 2;
        p.arm_additional(ArmedFault {
            site: s2,
            kind: FaultKind::StuckAt1,
            start: 0,
        });
        assert_eq!(p.fault_count(), 2);
        assert!(p.router_armed(3));
        assert!(p.router_armed(7));
        assert!(!p.router_armed(5));
        assert_eq!(p.xf(1, 3, 1, 2, SignalKind::RcOutDir, 0), 0b010);
        assert_eq!(p.xf(1, 7, 1, 2, SignalKind::RcOutDir, 0), 0b100);
        assert_eq!(p.hits(), 2);
        // arm() replaces the whole population again.
        p.arm(ArmedFault {
            site: site(),
            kind: FaultKind::Transient,
            start: 0,
        });
        assert_eq!(p.fault_count(), 1);
        assert!(!p.router_armed(7));
    }

    #[test]
    fn probes_tally_without_touching_the_wire() {
        let mut p = FaultPlane::new();
        p.arm_probes(&[
            ArmedFault {
                site: site(),
                kind: FaultKind::StuckAt1,
                start: 0,
            },
            ArmedFault {
                site: SiteRef {
                    router: 7,
                    ..site()
                },
                kind: FaultKind::Permanent,
                start: 0,
            },
        ]);
        assert!(p.router_armed(3) && p.router_armed(7) && !p.router_armed(4));
        assert!(!p.inert_from(1_000));
        // Bit 1 low: the stuck-at-1 probe would flip it — tallied, value
        // untouched, global hit counter untouched.
        assert_eq!(p.xf(1, 3, 1, 2, SignalKind::RcOutDir, 0b100), 0b100);
        // Bit 1 already high: stuck-at-1 invisible, no tally.
        assert_eq!(p.xf(2, 3, 1, 2, SignalKind::RcOutDir, 0b010), 0b010);
        assert_eq!(p.xf(2, 7, 1, 2, SignalKind::RcOutDir, 0), 0);
        assert_eq!(p.probe_hits(), &[1, 1]);
        assert_eq!(p.hits(), 0);
        p.clear_probes();
        assert!(!p.router_armed(3));
        assert_eq!(p.probe_count(), 0);
    }

    #[test]
    fn probes_survive_rearm_and_faults_survive_probe_swap() {
        let mut p = FaultPlane::new();
        p.arm(ArmedFault {
            site: site(),
            kind: FaultKind::Transient,
            start: 10,
        });
        p.arm_probes(&[ArmedFault {
            site: SiteRef {
                router: 9,
                ..site()
            },
            kind: FaultKind::Permanent,
            start: 0,
        }]);
        p.arm(ArmedFault {
            site: SiteRef {
                router: 5,
                ..site()
            },
            kind: FaultKind::Transient,
            start: 10,
        });
        assert!(p.router_armed(5) && p.router_armed(9) && !p.router_armed(3));
        p.clear_probes();
        assert!(p.router_armed(5) && !p.router_armed(9));
        assert_eq!(p.fault_count(), 1);
    }

    #[test]
    fn router_mask_tracks_disarm() {
        let mut p = FaultPlane::new();
        p.arm(ArmedFault {
            site: site(),
            kind: FaultKind::Permanent,
            start: 0,
        });
        assert!(p.router_armed(3));
        p.disarm();
        assert!(!p.router_armed(3));
        // Disarmed plane is pass-through again even for the probed router.
        assert_eq!(p.xf(1, 3, 1, 2, SignalKind::RcOutDir, 0), 0);
    }

    #[test]
    fn rearm_resets_hits() {
        let mut p = FaultPlane::new();
        p.arm(ArmedFault {
            site: site(),
            kind: FaultKind::Transient,
            start: 0,
        });
        p.xf(0, 3, 1, 2, SignalKind::RcOutDir, 0);
        assert_eq!(p.hits(), 1);
        p.arm(ArmedFault {
            site: site(),
            kind: FaultKind::Transient,
            start: 5,
        });
        assert_eq!(p.hits(), 0);
    }
}
