//! The fault plane: in-line single-bit fault injection at module boundaries.
//!
//! Every signal a router module consumes or produces is routed through
//! [`FaultPlane::xf`]. When a fault is armed on that exact wire
//! ([`SiteRef`]) and temporally active ([`FaultKind`]), the value comes
//! back with the addressed bit flipped; otherwise it passes through
//! untouched. Both the router's functional logic *and* the observation
//! record consume the transformed value — faults therefore propagate
//! through real state, and checkers see exactly what the hardware wires
//! would carry (Figure 5 of the paper).

use noc_types::site::{FaultKind, SignalKind, SiteRef};
use noc_types::Cycle;
use serde::{Deserialize, Serialize};

/// A fault armed on one site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArmedFault {
    /// The wire bit to corrupt.
    pub site: SiteRef,
    /// Temporal behaviour.
    pub kind: FaultKind,
    /// First cycle at which the fault is (potentially) active.
    pub start: Cycle,
}

/// The injection surface threaded through every router.
///
/// At most one fault is armed at a time, matching the paper's single-fault
/// model; `hits` counts how many times the armed bit actually flipped a
/// live wire (used by coverage tests and the campaign driver to discard
/// vacuous injections).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlane {
    armed: Option<ArmedFault>,
    hits: u64,
}

impl FaultPlane {
    /// A plane with no fault armed.
    pub fn new() -> FaultPlane {
        FaultPlane::default()
    }

    /// Arms `fault`, replacing any previous one and resetting the hit count.
    pub fn arm(&mut self, fault: ArmedFault) {
        self.armed = Some(fault);
        self.hits = 0;
    }

    /// Disarms the plane.
    pub fn disarm(&mut self) {
        self.armed = None;
    }

    /// The armed fault, if any.
    pub fn armed(&self) -> Option<&ArmedFault> {
        self.armed.as_ref()
    }

    /// How many times the armed bit has been flipped on a live wire.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// If the armed fault is a **transient on a state register**, and
    /// `cycle` is its injection instant, returns the site so the owner can
    /// flip the stored bit in place (a single-event upset persists until
    /// the register is rewritten). Such faults are *not* applied by
    /// [`FaultPlane::xf`].
    pub fn register_upset_due(&self, cycle: Cycle) -> Option<SiteRef> {
        match &self.armed {
            Some(f)
                if f.kind == FaultKind::Transient
                    && f.site.signal.is_register()
                    && cycle == f.start =>
            {
                Some(f.site)
            }
            _ => None,
        }
    }

    /// Records an out-of-band hit (used when a register upset is applied
    /// directly to stored state).
    pub fn note_hit(&mut self) {
        self.hits += 1;
    }

    /// Transforms the wire `value` of `signal` at instance
    /// `(router, port, vc)` during `cycle`.
    ///
    /// The hot path (no fault armed, or armed on another router) is a
    /// couple of compares.
    #[inline]
    pub fn xf(
        &mut self,
        cycle: Cycle,
        router: u16,
        port: u8,
        vc: u8,
        signal: SignalKind,
        value: u64,
    ) -> u64 {
        match &self.armed {
            None => value,
            Some(f) => {
                if f.kind == FaultKind::Transient && f.site.signal.is_register() {
                    // Register SEUs are applied to the stored value once,
                    // not to every read of it.
                    return value;
                }
                let s = &f.site;
                if s.router == router
                    && s.signal == signal
                    && s.port == port
                    && s.vc == vc
                    && cycle >= f.start
                    && f.kind.active_at(cycle - f.start)
                {
                    let bit = 1u64 << s.bit;
                    let faulted = match f.kind {
                        // Stuck-at defects force the wire to a level; a hit
                        // is only counted when the level actually differs
                        // from the fault-free value (otherwise the defect is
                        // invisible this cycle).
                        FaultKind::StuckAt0 => value & !bit,
                        FaultKind::StuckAt1 => value | bit,
                        _ => value ^ bit,
                    };
                    if faulted != value {
                        self.hits += 1;
                    }
                    faulted
                } else {
                    value
                }
            }
        }
    }

    /// Boolean-wire convenience wrapper around [`FaultPlane::xf`].
    #[inline]
    pub fn xf_bool(
        &mut self,
        cycle: Cycle,
        router: u16,
        port: u8,
        vc: u8,
        signal: SignalKind,
        value: bool,
    ) -> bool {
        self.xf(cycle, router, port, vc, signal, value as u64) & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> SiteRef {
        SiteRef {
            router: 3,
            port: 1,
            vc: 2,
            signal: SignalKind::RcOutDir,
            bit: 1,
        }
    }

    #[test]
    fn pass_through_when_disarmed() {
        let mut p = FaultPlane::new();
        assert_eq!(p.xf(0, 3, 1, 2, SignalKind::RcOutDir, 0b101), 0b101);
        assert_eq!(p.hits(), 0);
    }

    #[test]
    fn transient_flips_exactly_once_in_time() {
        let mut p = FaultPlane::new();
        p.arm(ArmedFault {
            site: site(),
            kind: FaultKind::Transient,
            start: 10,
        });
        // Before start: untouched.
        assert_eq!(p.xf(9, 3, 1, 2, SignalKind::RcOutDir, 0), 0);
        // At start: bit 1 flipped.
        assert_eq!(p.xf(10, 3, 1, 2, SignalKind::RcOutDir, 0), 0b10);
        // After: untouched.
        assert_eq!(p.xf(11, 3, 1, 2, SignalKind::RcOutDir, 0), 0);
        assert_eq!(p.hits(), 1);
    }

    #[test]
    fn permanent_keeps_flipping() {
        let mut p = FaultPlane::new();
        p.arm(ArmedFault {
            site: site(),
            kind: FaultKind::Permanent,
            start: 5,
        });
        for c in 5..20 {
            assert_eq!(p.xf(c, 3, 1, 2, SignalKind::RcOutDir, 0b100), 0b110);
        }
        assert_eq!(p.hits(), 15);
    }

    #[test]
    fn only_matching_instance_is_hit() {
        let mut p = FaultPlane::new();
        p.arm(ArmedFault {
            site: site(),
            kind: FaultKind::Permanent,
            start: 0,
        });
        // Wrong router / port / vc / signal — untouched.
        assert_eq!(p.xf(1, 4, 1, 2, SignalKind::RcOutDir, 0), 0);
        assert_eq!(p.xf(1, 3, 0, 2, SignalKind::RcOutDir, 0), 0);
        assert_eq!(p.xf(1, 3, 1, 0, SignalKind::RcOutDir, 0), 0);
        assert_eq!(p.xf(1, 3, 1, 2, SignalKind::RcDestX, 0), 0);
        assert_eq!(p.hits(), 0);
    }

    #[test]
    fn bool_wrapper_flips_bit_zero() {
        let mut p = FaultPlane::new();
        let mut s = site();
        s.bit = 0;
        s.signal = SignalKind::BufRead;
        p.arm(ArmedFault {
            site: s,
            kind: FaultKind::Transient,
            start: 0,
        });
        assert!(p.xf_bool(0, 3, 1, 2, SignalKind::BufRead, false));
        assert!(!p.xf_bool(1, 3, 1, 2, SignalKind::BufRead, false));
    }

    #[test]
    fn stuck_at_one_forces_level_and_counts_visible_hits_only() {
        let mut p = FaultPlane::new();
        p.arm(ArmedFault {
            site: site(),
            kind: FaultKind::StuckAt1,
            start: 0,
        });
        // Bit 1 already high: no observable corruption, no hit.
        assert_eq!(p.xf(0, 3, 1, 2, SignalKind::RcOutDir, 0b010), 0b010);
        assert_eq!(p.hits(), 0);
        // Bit 1 low: forced high, hit recorded.
        assert_eq!(p.xf(1, 3, 1, 2, SignalKind::RcOutDir, 0b100), 0b110);
        assert_eq!(p.hits(), 1);
    }

    #[test]
    fn stuck_at_zero_forces_level_and_counts_visible_hits_only() {
        let mut p = FaultPlane::new();
        p.arm(ArmedFault {
            site: site(),
            kind: FaultKind::StuckAt0,
            start: 0,
        });
        assert_eq!(p.xf(0, 3, 1, 2, SignalKind::RcOutDir, 0b101), 0b101);
        assert_eq!(p.hits(), 0);
        assert_eq!(p.xf(1, 3, 1, 2, SignalKind::RcOutDir, 0b111), 0b101);
        assert_eq!(p.hits(), 1);
    }

    #[test]
    fn rearm_resets_hits() {
        let mut p = FaultPlane::new();
        p.arm(ArmedFault {
            site: site(),
            kind: FaultKind::Transient,
            start: 0,
        });
        p.xf(0, 3, 1, 2, SignalKind::RcOutDir, 0);
        assert_eq!(p.hits(), 1);
        p.arm(ArmedFault {
            site: site(),
            kind: FaultKind::Transient,
            start: 5,
        });
        assert_eq!(p.hits(), 0);
    }
}
