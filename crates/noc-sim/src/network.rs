//! The network: a mesh of routers, the links between them, and the NIs.
//!
//! [`Network::step_observed`] advances one global cycle in two phases:
//!
//! 1. **Router phase** — every router evaluates its pipeline (reverse stage
//!    order, see `router`), consuming the link registers filled last cycle
//!    and staging this cycle's link outputs and credit returns. After each
//!    router, its [`CycleRecord`] is handed to the observer — this is where
//!    NoCAlert checkers, the ForEVeR Allocation Comparator and tracing hook
//!    in.
//! 2. **Transport phase** — NIs drain their ejection buffers (observer sees
//!    [`EjectEvent`]s), staged flits and credits move across the links into
//!    the neighbours' registers, and NIs generate/inject new traffic
//!    (observer sees injections).
//!
//! The whole network is `Clone`: the fault campaign snapshots a warmed-up
//! network once and rolls each injection out from the copy, which is what
//! makes the paper-scale sweep tractable.

use crate::adversary::{Adversary, AttackIntent, AttackStats};
use crate::fault_plane::{ArmedFault, FaultPlane};
use crate::fault_region::FaultRegionMap;
use crate::nic::Nic;
use crate::recovery::{
    ContainmentEvent, ContainmentLevel, RecoveryController, RecoveryPolicy, RecoveryStats,
};
use crate::router::{CreditMsg, Router, RouterScratch, P};
use noc_types::config::{NocConfig, RoutingAlgorithm};
use noc_types::flit::make_packet;
use noc_types::geometry::{Direction, NodeId};
use noc_types::record::{CycleRecord, EjectEvent};
use noc_types::site::{FaultKind, SiteRef};
use noc_types::{AttackSpec, Cycle, Flit, PacketId, SimError};
use std::collections::BTreeSet;

/// Receives everything observable that happens during simulation.
///
/// All methods default to no-ops so observers implement only what they
/// need. Compose observers with tuples: `(&mut checkers, &mut log)`.
pub trait Observer {
    /// One router finished its cycle; `rec` is reused storage — copy what
    /// you need.
    fn on_cycle_record(&mut self, cycle: Cycle, rec: &CycleRecord) {
        let _ = (cycle, rec);
    }
    /// A flit was handed by an NI to its router's local input port.
    fn on_inject(&mut self, cycle: Cycle, flit: &Flit) {
        let _ = (cycle, flit);
    }
    /// A flit was delivered to an NI.
    fn on_eject(&mut self, ev: &EjectEvent) {
        let _ = ev;
    }
    /// The network proposes to skip `n` fully quiescent cycles starting at
    /// `cycle` (no router activity, no injections, no ejections — every
    /// per-cycle record would be empty). This is a **pure query**: return
    /// `true` iff observing those `n` empty cycles would leave this
    /// observer bit-identical to its current state, so the network may
    /// fast-forward past them. Implementations must not mutate state —
    /// the skip only happens when *every* composed observer accepts, and
    /// a refusal elsewhere falls back to cycle-by-cycle stepping. The
    /// default refuses, which is correct for any observer.
    fn on_quiescent_cycles(&self, cycle: Cycle, n: u64) -> bool {
        let _ = (cycle, n);
        false
    }
}

/// The do-nothing observer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn on_quiescent_cycles(&self, _cycle: Cycle, _n: u64) -> bool {
        true
    }
}

impl<T: Observer + ?Sized> Observer for &mut T {
    fn on_cycle_record(&mut self, cycle: Cycle, rec: &CycleRecord) {
        (**self).on_cycle_record(cycle, rec);
    }
    fn on_inject(&mut self, cycle: Cycle, flit: &Flit) {
        (**self).on_inject(cycle, flit);
    }
    fn on_eject(&mut self, ev: &EjectEvent) {
        (**self).on_eject(ev);
    }
    fn on_quiescent_cycles(&self, cycle: Cycle, n: u64) -> bool {
        (**self).on_quiescent_cycles(cycle, n)
    }
}

impl<A: Observer, B: Observer> Observer for (A, B) {
    fn on_cycle_record(&mut self, cycle: Cycle, rec: &CycleRecord) {
        self.0.on_cycle_record(cycle, rec);
        self.1.on_cycle_record(cycle, rec);
    }
    fn on_inject(&mut self, cycle: Cycle, flit: &Flit) {
        self.0.on_inject(cycle, flit);
        self.1.on_inject(cycle, flit);
    }
    fn on_eject(&mut self, ev: &EjectEvent) {
        self.0.on_eject(ev);
        self.1.on_eject(ev);
    }
    fn on_quiescent_cycles(&self, cycle: Cycle, n: u64) -> bool {
        self.0.on_quiescent_cycles(cycle, n) && self.1.on_quiescent_cycles(cycle, n)
    }
}

impl<A: Observer, B: Observer, C: Observer> Observer for (A, B, C) {
    fn on_cycle_record(&mut self, cycle: Cycle, rec: &CycleRecord) {
        self.0.on_cycle_record(cycle, rec);
        self.1.on_cycle_record(cycle, rec);
        self.2.on_cycle_record(cycle, rec);
    }
    fn on_inject(&mut self, cycle: Cycle, flit: &Flit) {
        self.0.on_inject(cycle, flit);
        self.1.on_inject(cycle, flit);
        self.2.on_inject(cycle, flit);
    }
    fn on_eject(&mut self, ev: &EjectEvent) {
        self.0.on_eject(ev);
        self.1.on_eject(ev);
        self.2.on_eject(ev);
    }
    fn on_quiescent_cycles(&self, cycle: Cycle, n: u64) -> bool {
        self.0.on_quiescent_cycles(cycle, n)
            && self.1.on_quiescent_cycles(cycle, n)
            && self.2.on_quiescent_cycles(cycle, n)
    }
}

/// Aggregate counters maintained by the network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Flits handed to routers by NIs.
    pub injected_flits: u64,
    /// Flits delivered to NIs.
    pub ejected_flits: u64,
    /// Flits moved across a link or into an ejection buffer — unlike
    /// `in_flight`, this counter changes on every hop, so it distinguishes
    /// a genuinely wedged network from one whose population is merely
    /// constant (the watchdog's progress signal).
    pub forwarded_flits: u64,
    /// Sum of per-flit latencies (eject cycle − inject-generation cycle).
    pub latency_sum: u64,
}

impl NetStats {
    /// Mean flit latency in cycles, or 0 when nothing ejected.
    pub fn mean_latency(&self) -> f64 {
        if self.ejected_flits == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.ejected_flits as f64
        }
    }
}

/// Per-VC progress sample of the worm-age monitor: the head-flit uid last
/// seen in the VC's buffer and how many consecutive cycles it has sat
/// there unmoved. The default (`uid: 0`) never matches a live flit — uid 0
/// is reserved for the fabricated null flit — so the first observation of
/// any worm starts a fresh count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct WormWatch {
    uid: u64,
    age: Cycle,
}

/// Containment machinery attached to a network when recovery is enabled:
/// one controller per router, the queued alert targets, and the action
/// trace/stats the campaign reports.
#[derive(Debug, Clone)]
struct RecoveryState {
    policy: RecoveryPolicy,
    controllers: Vec<RecoveryController>,
    /// Input-side targets `(router, port, vc)` queued for the next cycle.
    pending: Vec<(u16, u8, u8)>,
    /// Worm-age monitor state, one slot per input VC, indexed
    /// `(router * P + port) * vcs + vc`.
    ages: Vec<WormWatch>,
    trace: Vec<ContainmentEvent>,
    stats: RecoveryStats,
}

/// The simulated network.
#[derive(Debug)]
pub struct Network {
    cfg: NocConfig,
    cycle: Cycle,
    routers: Vec<Router>,
    nics: Vec<Nic>,
    plane: FaultPlane,
    scratch: RouterScratch,
    record: CycleRecord,
    next_packet: u64,
    next_uid: u64,
    injection_enabled: bool,
    stats: NetStats,
    recovery: Option<RecoveryState>,
    /// The fault-region map, present iff `RoutingAlgorithm::FaultRegion`
    /// is configured. Containment escalation feeds dead links into it;
    /// `sync_region` pushes its routing tables down into the routers and
    /// its reachability gates into the NIs.
    region: Option<FaultRegionMap>,
    /// Set when containment damaged the region map this cycle; cleared by
    /// the resync at the end of `apply_recovery`.
    region_dirty: bool,
    /// Reused per-cycle transport scratch (ejection events/credits and
    /// credit forwarding) so the steady-state step loop never allocates.
    eject_events: Vec<EjectEvent>,
    eject_credits: Vec<CreditMsg>,
    credit_scratch: Vec<CreditMsg>,
    /// The adversarial plane: at most one compromised router whose output
    /// links are manipulated during phase 2b, *after* the checkers
    /// observed the cycle. `None` in every fault-only campaign.
    attacker: Option<Adversary>,
}

// Manual impl so `clone_from` (the arena reset path) rewinds a used
// network to the warm snapshot while reusing every router/NIC allocation.
// Every field is restored, so the result is indistinguishable from a fresh
// `clone()` no matter what state the previous run left behind.
impl Clone for Network {
    fn clone(&self) -> Network {
        Network {
            cfg: self.cfg.clone(),
            cycle: self.cycle,
            routers: self.routers.clone(),
            nics: self.nics.clone(),
            plane: self.plane.clone(),
            scratch: self.scratch.clone(),
            record: self.record.clone(),
            next_packet: self.next_packet,
            next_uid: self.next_uid,
            injection_enabled: self.injection_enabled,
            stats: self.stats,
            recovery: self.recovery.clone(),
            region: self.region.clone(),
            region_dirty: self.region_dirty,
            eject_events: self.eject_events.clone(),
            eject_credits: self.eject_credits.clone(),
            credit_scratch: self.credit_scratch.clone(),
            attacker: self.attacker.clone(),
        }
    }

    fn clone_from(&mut self, src: &Network) {
        self.cfg.clone_from(&src.cfg);
        self.cycle = src.cycle;
        self.routers.clone_from(&src.routers);
        self.nics.clone_from(&src.nics);
        self.plane = src.plane.clone();
        self.scratch.clone_from(&src.scratch);
        self.record.clone_from(&src.record);
        self.next_packet = src.next_packet;
        self.next_uid = src.next_uid;
        self.injection_enabled = src.injection_enabled;
        self.stats = src.stats;
        self.recovery.clone_from(&src.recovery);
        self.region.clone_from(&src.region);
        self.region_dirty = src.region_dirty;
        self.eject_events.clone_from(&src.eject_events);
        self.eject_credits.clone_from(&src.eject_credits);
        self.credit_scratch.clone_from(&src.credit_scratch);
        self.attacker.clone_from(&src.attacker);
    }
}

impl Network {
    /// Builds a network from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.validate()` fails — constructing a simulator from an
    /// inconsistent configuration is a programming error.
    pub fn new(cfg: NocConfig) -> Network {
        match Network::try_new(cfg) {
            Ok(net) => net,
            Err(e) => panic!("invalid NocConfig: {e}"),
        }
    }

    /// Builds a network, returning a structured [`SimError`] instead of
    /// panicking when the configuration is inconsistent.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] when `cfg.validate()` fails.
    pub fn try_new(cfg: NocConfig) -> Result<Network, noc_types::SimError> {
        cfg.validate()?;
        let n = cfg.mesh.len() as u16;
        Ok(Network {
            routers: (0..n).map(|i| Router::new(&cfg, i)).collect(),
            nics: (0..n).map(|i| Nic::new(&cfg, NodeId(i))).collect(),
            plane: FaultPlane::new(),
            scratch: RouterScratch::default(),
            record: CycleRecord::default(),
            next_packet: 0,
            // uid 0 is reserved for the fabricated null flit.
            next_uid: 1,
            cycle: 0,
            injection_enabled: true,
            stats: NetStats::default(),
            recovery: None,
            region: (cfg.routing == RoutingAlgorithm::FaultRegion)
                .then(|| FaultRegionMap::new(cfg.mesh)),
            region_dirty: false,
            eject_events: Vec::new(),
            eject_credits: Vec::new(),
            credit_scratch: Vec::new(),
            attacker: None,
            cfg,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Current cycle (number of completed steps).
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// A signature that changes whenever any flit moves anywhere —
    /// injection, a link hop, or an ejection. Two equal signatures some
    /// cycles apart mean the network made no forward progress in between
    /// (the deadlock watchdog's criterion); note a livelocked network
    /// keeps forwarding and therefore keeps changing its signature.
    pub fn progress_signature(&self) -> (u64, u64, u64) {
        (
            self.stats.injected_flits,
            self.stats.forwarded_flits,
            self.stats.ejected_flits,
        )
    }

    /// Enables/disables *generation* of new packets. Packets already queued
    /// keep draining, which is how campaigns stop traffic and drain.
    pub fn set_injection_enabled(&mut self, enabled: bool) {
        self.injection_enabled = enabled;
    }

    /// Arms a single-bit fault (replacing any armed one).
    pub fn arm_fault(&mut self, site: SiteRef, kind: FaultKind, start: Cycle) {
        self.plane.arm(ArmedFault { site, kind, start });
    }

    /// Arms a single-bit fault *on top of* the existing population —
    /// the aging campaign's accumulating-permanent entry point.
    pub fn arm_extra_fault(&mut self, site: SiteRef, kind: FaultKind, start: Cycle) {
        self.plane.arm_additional(ArmedFault { site, kind, start });
    }

    /// Number of faults currently armed on the plane.
    pub fn armed_fault_count(&self) -> usize {
        self.plane.fault_count()
    }

    /// The fault-region map, when `RoutingAlgorithm::FaultRegion` is
    /// configured (read-only; the network owns all mutation).
    pub fn fault_region_map(&self) -> Option<&FaultRegionMap> {
        self.region.as_ref()
    }

    /// Reports `router` faulty to the fault-region map (all traffic is
    /// steered around it, its NI stops generating) and resynchronizes
    /// routing state. No-op unless `RoutingAlgorithm::FaultRegion` is
    /// configured.
    pub fn quarantine_router(&mut self, router: u16) {
        let newly = self
            .region
            .as_mut()
            .is_some_and(|m| m.mark_router_faulty(NodeId(router)));
        if newly {
            self.sync_region();
        }
    }

    /// Arms the adversarial plane: `router` becomes compromised and
    /// manipulates its output links per `spec` (replacing any armed
    /// attacker). The spec is validated against the configuration, and a
    /// router the containment plane has already taken out of service —
    /// absorbed into a fault region or escalated to malicious — is
    /// rejected: a dead router forwards nothing and cannot attack, so a
    /// campaign cell targeting one would silently measure nothing.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AttackSpecInvalid`] for nonexistent or
    /// quarantined routers and degenerate behavioural parameters.
    pub fn arm_attack(&mut self, spec: &AttackSpec) -> Result<(), SimError> {
        spec.validate(&self.cfg)?;
        if self.router_quarantined(spec.router) {
            return Err(SimError::AttackSpecInvalid {
                router: spec.router,
                reason: "compromised router is already quarantined",
            });
        }
        self.attacker = Some(Adversary::new(*spec, self.cfg.vcs_per_port));
        Ok(())
    }

    /// Removes the armed attacker (its accumulated stats are discarded).
    pub fn disarm_attack(&mut self) {
        self.attacker = None;
    }

    /// The armed attacker's spec, if any.
    pub fn attack_spec(&self) -> Option<AttackSpec> {
        self.attacker.as_ref().map(Adversary::spec)
    }

    /// Interference counters of the armed attacker (zeros when none).
    pub fn attack_stats(&self) -> AttackStats {
        self.attacker
            .as_ref()
            .map(Adversary::stats)
            .unwrap_or_default()
    }

    /// Drains the attacker's queued out-of-band actions (forged controls,
    /// replays, fabricated alerts). The attack harness executes them
    /// through public APIs so fabricated traffic physically originates at
    /// the attacker's node. Empty when no attacker is armed.
    pub fn drain_attack_intents(&mut self) -> Vec<AttackIntent> {
        self.attacker
            .as_mut()
            .map(Adversary::take_intents)
            .unwrap_or_default()
    }

    /// Tells the armed attacker that `pid` was just fabricated on its
    /// behalf (a forged control or replay injected at its node), so its
    /// egress filter lets the worm leave untouched instead of re-applying
    /// the drop/corrupt/capture rules to its own forgery. No-op when no
    /// attacker is armed.
    pub fn mark_attack_injection(&mut self, pid: PacketId) {
        if let Some(adv) = self.attacker.as_mut() {
            adv.mark_own(pid);
        }
    }

    /// True when `router` is administratively out of service: absorbed
    /// into a fault region, or escalated to malicious by suspicion
    /// scoring.
    pub fn router_quarantined(&self, router: u16) -> bool {
        self.region
            .as_ref()
            .is_some_and(|m| m.absorbed(NodeId(router)))
            || self.router_malicious(router)
    }

    /// True once `router` has been escalated from faulty to malicious.
    pub fn router_malicious(&self, router: u16) -> bool {
        self.recovery.as_ref().is_some_and(|rs| {
            rs.controllers
                .get(router as usize)
                .is_some_and(RecoveryController::is_malicious)
        })
    }

    /// Scores one piece of protocol-level forgery evidence (a spoofed
    /// control packet the transport attributed to `router` by its
    /// physical wire source) against that router's suspicion counter.
    /// Crossing the policy's malice threshold escalates the router to
    /// malicious and quarantines it whole — returns `true` exactly at
    /// that crossing. No-op (false) when recovery is disabled.
    pub fn note_suspicion(&mut self, router: u16) -> bool {
        let crossed = {
            let Some(rs) = self.recovery.as_mut() else {
                return false;
            };
            if router as usize >= rs.controllers.len() {
                return false;
            }
            let policy = rs.policy;
            rs.stats.suspicions_noted += 1;
            let crossed = rs.controllers[router as usize].note_suspicion(&policy);
            if crossed {
                rs.stats.routers_marked_malicious += 1;
            }
            crossed
        };
        if crossed {
            self.quarantine_router(router);
        }
        crossed
    }

    /// Administratively severs the mesh link at `router` toward `dir`:
    /// fences the facing output ports on both sides and records the dead
    /// link in the fault-region map (when active), resynchronizing the
    /// routing tables. Returns `false` when there is no such link. Used by
    /// survivability tests and the aging campaign's targeted-cut epochs.
    pub fn sever_link(&mut self, router: u16, dir: Direction) -> bool {
        if router as usize >= self.routers.len() {
            return false;
        }
        let Some(nb) = self.cfg.mesh.neighbor(NodeId(router), dir) else {
            return false;
        };
        self.routers[router as usize].set_avoid(dir.index() as u8, true);
        self.routers[nb.index()].set_avoid(dir.opposite().index() as u8, true);
        let newly = self
            .region
            .as_mut()
            .is_some_and(|m| m.kill_link(NodeId(router), dir));
        if newly {
            self.sync_region();
        }
        true
    }

    /// Disarms the fault plane.
    pub fn disarm_fault(&mut self) {
        self.plane.disarm();
    }

    /// Arms a set of pass-through probe faults (replacing any probes).
    /// Probes never alter wire values; they tally would-be flips per
    /// probe, which the batched campaign engine uses to discover vacuous
    /// rollout lanes along the golden trajectory in a single pass.
    pub fn arm_probes(&mut self, probes: &[ArmedFault]) {
        self.plane.arm_probes(probes);
    }

    /// Removes every probe fault.
    pub fn clear_probes(&mut self) {
        self.plane.clear_probes();
    }

    /// Per-probe would-be hit counts, indexed like the slice passed to
    /// [`Network::arm_probes`].
    pub fn probe_hits(&self) -> &[u64] {
        self.plane.probe_hits()
    }

    /// How many times the armed fault actually flipped a live wire.
    pub fn fault_hits(&self) -> u64 {
        self.plane.hits()
    }

    /// A router (by node index), for inspection.
    pub fn router(&self, id: u16) -> &Router {
        &self.routers[id as usize]
    }

    /// An NI (by node index), for inspection.
    pub fn nic(&self, id: u16) -> &Nic {
        &self.nics[id as usize]
    }

    /// Flits currently inside routers, on links, or in ejection buffers.
    pub fn in_flight(&self) -> usize {
        self.routers
            .iter()
            .map(|r| r.buffered_flits())
            .sum::<usize>()
            + self.nics.iter().map(|n| n.eject_backlog()).sum::<usize>()
    }

    /// Flits not yet handed to the network (NI source queues).
    pub fn source_backlog(&self) -> usize {
        self.nics.iter().map(|n| n.source_backlog()).sum()
    }

    /// True when no flit exists anywhere: all traffic delivered (or lost…).
    pub fn is_drained(&self) -> bool {
        self.source_backlog() == 0
            && self.routers.iter().all(Router::is_empty)
            && self.nics.iter().all(|n| n.eject_backlog() == 0)
    }

    /// Structural equality of the stepped machine state: two networks for
    /// which this holds produce bit-identical futures under identical
    /// stepping and (inert or equal) fault planes. Compared: cycle,
    /// routers, NICs (minus the RNG, which is a pure function of the cycle
    /// count — see [`Nic::state_eq`]), packet/uid counters, injection
    /// gate, stats and the fault-region map. The fault plane and reused
    /// scratch buffers are excluded; networks with recovery enabled are
    /// never equal (recovery state is not comparable, and callers that
    /// rely on this equality fall back to plain stepping there).
    pub fn state_eq(&self, other: &Network) -> bool {
        self.cycle == other.cycle
            && self.recovery.is_none()
            && other.recovery.is_none()
            && self.attacker.is_none()
            && other.attacker.is_none()
            && self.next_packet == other.next_packet
            && self.next_uid == other.next_uid
            && self.injection_enabled == other.injection_enabled
            && self.stats == other.stats
            && self.region_dirty == other.region_dirty
            && self.region == other.region
            && self.nics.len() == other.nics.len()
            && self
                .nics
                .iter()
                .zip(other.nics.iter())
                .all(|(a, b)| a.state_eq(b))
            && self.routers == other.routers
    }

    /// Attempts to skip `n` cycles in O(1) because nothing can happen in
    /// them: every router and NI is quiescent, injection is disabled, the
    /// fault plane is inert from here on, recovery is off, and every
    /// observer confirms (via [`Observer::on_quiescent_cycles`]) that `n`
    /// empty cycles leave it unchanged. On success the cycle counter jumps
    /// by `n` and `true` is returned; otherwise nothing changes.
    ///
    /// The NIC RNG streams are *not* advanced across the skip, so this is
    /// only sound when generation never resumes afterwards — the
    /// end-of-run quiescent codas it exists for.
    pub fn try_fast_forward_quiescent<O: Observer>(&mut self, n: u64, obs: &mut O) -> bool {
        if self.recovery.is_some()
            || self.attacker.is_some()
            || self.region_dirty
            || self.injection_enabled
            || !self.plane.inert_from(self.cycle)
        {
            return false;
        }
        let settled = self
            .routers
            .iter()
            .all(|r| r.is_quiescent() && r.out_credits.is_empty())
            && self.nics.iter().all(|nic| nic.is_quiescent(&self.cfg));
        if !settled || !obs.on_quiescent_cycles(self.cycle, n) {
            return false;
        }
        self.cycle += n;
        true
    }

    /// Enables alert-driven containment with the given escalation policy
    /// (one [`RecoveryController`] per router). Idempotent: re-enabling
    /// resets all escalation state.
    pub fn enable_recovery(&mut self, policy: RecoveryPolicy) {
        let n = self.routers.len();
        let vcs = self.cfg.vcs_per_port as usize;
        self.recovery = Some(RecoveryState {
            policy,
            controllers: (0..n).map(|_| RecoveryController::new()).collect(),
            pending: Vec::new(),
            ages: vec![WormWatch::default(); n * P * vcs],
            trace: Vec::new(),
            stats: RecoveryStats::default(),
        });
    }

    /// Queues one alert for containment at the start of the next cycle
    /// (one cycle of reaction latency, matching a hardware alert network).
    ///
    /// `port_is_output` tells whether `port` addresses an *output* port of
    /// `router` (see `ModuleClass::port_is_output`); output-side alerts are
    /// translated to the downstream router's input VC, since that is where
    /// the suspect worm's state lives. Local-output alerts (the ejection
    /// path) are not contained here — the end-to-end transport covers them.
    /// No-op when recovery is disabled.
    pub fn notify_alert(&mut self, router: u16, port: u8, vc: u8, port_is_output: bool) {
        if self.recovery.is_none() || router as usize >= self.routers.len() {
            return;
        }
        let vc = if vc < self.cfg.vcs_per_port { vc } else { 0 };
        let target = if port_is_output {
            let Some(&d) = Direction::ALL.get(port as usize) else {
                return;
            };
            if d == Direction::Local {
                return;
            }
            match self.cfg.mesh.neighbor(NodeId(router), d) {
                Some(nb) => (nb.0, d.opposite().index() as u8, vc),
                None => return,
            }
        } else {
            if port as usize >= P {
                return;
            }
            (router, port, vc)
        };
        if let Some(rs) = self.recovery.as_mut() {
            rs.pending.push(target);
        }
    }

    /// Containment actions applied so far, in application order.
    pub fn recovery_trace(&self) -> &[ContainmentEvent] {
        self.recovery
            .as_ref()
            .map(|r| r.trace.as_slice())
            .unwrap_or(&[])
    }

    /// Aggregate containment counters (zeros when recovery is disabled),
    /// merged with the fault-region growth counters and the reroute count
    /// when the region map is active.
    pub fn recovery_stats(&self) -> RecoveryStats {
        let mut s = self.recovery.as_ref().map(|r| r.stats).unwrap_or_default();
        if let Some(map) = &self.region {
            let g = map.growth();
            s.regions_formed = g.regions_formed;
            s.routers_absorbed = g.routers_absorbed;
            s.reroutes_taken = self.routers.iter().map(Router::region_reroutes).sum();
        }
        s
    }

    /// Fabricates a packet at `node`'s NI source queue, destined for
    /// `dest`, drawing fresh packet/flit identities from the network-wide
    /// counters. Used by the end-to-end transport for acknowledgements and
    /// retransmissions — a retransmit is a *new* packet on the wire (fresh
    /// `PacketId`), so per-packet invariances never see the same identity
    /// twice. Returns the assigned id; out-of-range nodes return `None`.
    pub fn enqueue_packet(
        &mut self,
        node: u16,
        dest: u16,
        class: u8,
        len: u16,
    ) -> Option<PacketId> {
        if node as usize >= self.nics.len() || dest as usize >= self.nics.len() || len == 0 {
            return None;
        }
        let class = class % self.cfg.message_classes;
        let pkt = PacketId(self.next_packet);
        self.next_packet += 1;
        let flits = make_packet(
            pkt,
            self.next_uid,
            NodeId(node),
            NodeId(dest),
            class,
            len,
            self.cycle,
        );
        self.next_uid += len as u64;
        self.nics[node as usize].enqueue(flits);
        Some(pkt)
    }

    /// Tears down the worm occupying input VC `(router, port, vc)` end to
    /// end: input buffer and link registers here, output-port bookkeeping
    /// and staged flits upstream, recursively following allocation owners
    /// back to the source NI. Returns flits destroyed.
    fn chain_reset(&mut self, router: u16, port: u8, vc: u8) -> usize {
        let depth = self.cfg.buffer_depth;
        let mut dropped = 0usize;
        let mut stack = vec![(router, port, vc)];
        let mut visited: BTreeSet<(u16, u8, u8)> = BTreeSet::new();
        while let Some((r, p, v)) = stack.pop() {
            if r as usize >= self.routers.len() || p as usize >= P || !visited.insert((r, p, v)) {
                continue;
            }
            // Downstream half: if the VC holds a downstream allocation,
            // release it and queue the worm's continuation for teardown.
            // Without this the already-forwarded fragment is orphaned with
            // its allocations held forever — and once its buffered flits
            // drain, an ACTIVE-but-empty VC blocks the output VC it owns
            // while generating no alerts at all.
            let vcref = self.routers[r as usize].input_vc(p, v);
            if vcref.state == crate::vc::state::ACTIVE {
                let o = (vcref.out_port & 0b111) as u8;
                let w = vcref.out_vc as u8;
                if self.routers[r as usize].output_owner(o, w) == Some((p, v)) {
                    dropped += self.routers[r as usize].clear_out_flit_to(o, w);
                    self.routers[r as usize].reset_output_vc(o, w, depth);
                    let dd = Direction::ALL[o as usize];
                    if dd != Direction::Local {
                        if let Some(down) = self.cfg.mesh.neighbor(NodeId(r), dd) {
                            stack.push((down.0, dd.opposite().index() as u8, w));
                        }
                    }
                }
            }
            dropped += self.routers[r as usize].hard_reset_input_vc(p, v);
            let d = Direction::ALL[p as usize];
            if d == Direction::Local {
                dropped += self.nics[r as usize].abort_worm(&self.cfg, v);
            } else if let Some(up) = self.cfg.mesh.neighbor(NodeId(r), d) {
                let u = up.index();
                let up_out = d.opposite().index() as u8;
                dropped += self.routers[u].clear_out_flit_to(up_out, v);
                let owner = self.routers[u].output_owner(up_out, v);
                self.routers[u].reset_output_vc(up_out, v, depth);
                if let Some((q, w)) = owner {
                    stack.push((up.0, q, w));
                }
            }
        }
        dropped
    }

    /// Quarantines input VC `(router, port, vc)` on both ends of its link
    /// and fences the upstream output port once all of its VCs are gone.
    /// Returns whether a port was newly fenced.
    fn quarantine(&mut self, router: u16, port: u8, vc: u8) -> bool {
        // Input side first: the local read path must stop sampling the VC's
        // wires, or a still-armed fault there (e.g. an intermittent
        // `BufEmpty` flip on the drained buffer) keeps replaying stale
        // flits as zombie worms faster than containment can clear them.
        self.routers[router as usize].disable_input_vc(port, vc);
        let d = Direction::ALL[port as usize];
        if d == Direction::Local {
            self.nics[router as usize].disable_vc(vc);
            false
        } else if let Some(up) = self.cfg.mesh.neighbor(NodeId(router), d) {
            let u = up.index();
            let up_out = d.opposite().index() as u8;
            self.routers[u].disable_output_vc(up_out, vc);
            // Fence the direction as soon as *any* message class has lost
            // every VC it may use through it — with per-class VC pools, a
            // starved class is as undeliverable as a dead port.
            let (lo, hi) = self.cfg.vc_range_of_class(self.cfg.class_of_vc(vc));
            let already = self.routers[u].avoid_mask() & (1 << up_out) != 0;
            if !already && self.routers[u].output_class_starved(up_out, lo, hi) {
                self.routers[u].set_avoid(up_out, true);
                // Under fault-region routing the fenced port is also a dead
                // link of the region map; the resync at the end of this
                // containment pass recomputes regions and tables.
                if let Some(map) = self.region.as_mut() {
                    if map.kill_link(up, Direction::ALL[up_out as usize]) {
                        self.region_dirty = true;
                    }
                }
                true
            } else {
                false
            }
        } else {
            false
        }
    }

    /// Applies the containment actions queued by [`Network::notify_alert`].
    /// Runs at the start of each cycle, before the router phase. Multiple
    /// alerts against the same VC within one cycle collapse into a single
    /// escalation step, so thresholds count alert-*cycles*, not checker
    /// fan-out.
    fn apply_recovery(&mut self, cy: Cycle) {
        let Some(mut rs) = self.recovery.take() else {
            return;
        };
        if !rs.pending.is_empty() {
            // Sorted + deduplicated in place: same visit order and same
            // collapse-per-cycle semantics as the former `BTreeSet`, with
            // the queue's capacity kept for the next cycle.
            rs.pending.sort_unstable();
            rs.pending.dedup();
            for i in 0..rs.pending.len() {
                let (r, p, v) = rs.pending[i];
                rs.stats.alerts_consumed += 1;
                let Some(level) = rs.controllers[r as usize].note_alert(&rs.policy, p, v) else {
                    continue;
                };
                let dropped = match level {
                    ContainmentLevel::Squash => {
                        rs.stats.squashes += 1;
                        self.routers[r as usize].squash_input_vc(p, v)
                    }
                    ContainmentLevel::Reset => {
                        rs.stats.resets += 1;
                        self.chain_reset(r, p, v)
                    }
                    ContainmentLevel::Disable => {
                        rs.stats.disables += 1;
                        let dropped = self.chain_reset(r, p, v);
                        if self.quarantine(r, p, v) {
                            rs.stats.ports_fenced += 1;
                        }
                        dropped
                    }
                };
                rs.stats.flits_dropped += dropped as u64;
                rs.trace.push(ContainmentEvent {
                    cycle: cy,
                    router: r,
                    port: p,
                    vc: v,
                    level,
                    flits_dropped: dropped as u32,
                });
            }
            rs.pending.clear();
        }
        self.recovery = Some(rs);
        if self.region_dirty {
            self.region_dirty = false;
            self.sync_region();
        }
    }

    /// Rebuilds the fault-region map and pushes the result everywhere it
    /// is consumed: next-hop rows and arrival-phase masks into every
    /// router, generation/destination gates into every NI. Disengaged maps
    /// clear all of it, restoring baseline behaviour bit-identically.
    fn sync_region(&mut self) {
        if let Some(map) = self.region.as_mut() {
            map.rebuild();
        }
        let Some(map) = self.region.as_ref() else {
            return;
        };
        let n = self.cfg.mesh.len();
        if map.engaged() {
            for i in 0..n {
                let node = NodeId(i as u16);
                let (up, down) = map.router_rows(node);
                self.routers[i].install_region_rows(up, down, map.down_in(node));
                self.nics[i].set_region_gate(
                    !map.absorbed(node),
                    (0..n).map(|d| !map.reachable(node, NodeId(d as u16))),
                );
            }
        } else {
            for i in 0..n {
                self.routers[i].install_region_rows(&[], &[], [false; P]);
                self.nics[i].set_region_gate(true, std::iter::empty());
            }
        }
    }

    /// The per-VC worm-age progress monitor (DESIGN.md §11): samples every
    /// input VC's head-flit uid once per cycle; a worm whose head has not
    /// moved for `stall_age` consecutive cycles is queued for containment
    /// exactly like a checker alert, re-arming after each escalation so a
    /// still-stalled worm climbs squash → reset → quarantine. This closes
    /// the alert-silent stall escape: a duty-cycled intermittent on
    /// `BufEmpty` can wedge a worm in a state that raises no further
    /// invariance violations, which no alert-driven path can see. No-op
    /// (and zero cost) when recovery is disabled.
    fn scan_worm_progress(&mut self) {
        let Some(rs) = self.recovery.as_mut() else {
            return;
        };
        let vcs = self.cfg.vcs_per_port as usize;
        let stall_age = rs.policy.stall_age;
        for (ri, router) in self.routers.iter().enumerate() {
            for p in 0..P {
                for v in 0..vcs {
                    let w = &mut rs.ages[(ri * P + p) * vcs + v];
                    let token = match router.input_head_uid(p as u8, v as u8) {
                        // A headless in-flight VC (non-idle, buffer fully
                        // drained) makes no observable head progress either:
                        // age it under a sentinel uid no real flit carries,
                        // so an orphaned worm fragment that forwarded all
                        // its buffered flits still escalates instead of
                        // holding its downstream allocation forever.
                        None if router.input_vc(p as u8, v as u8).state
                            != crate::vc::state::IDLE
                            && !router.input_vc_disabled(p as u8, v as u8) =>
                        {
                            Some(u64::MAX)
                        }
                        other => other,
                    };
                    match token {
                        Some(uid) if uid == w.uid => {
                            w.age += 1;
                            if w.age >= stall_age {
                                rs.pending.push((ri as u16, p as u8, v as u8));
                                w.age = 0;
                            }
                        }
                        Some(uid) => {
                            w.uid = uid;
                            w.age = 0;
                        }
                        None => *w = WormWatch::default(),
                    }
                }
            }
        }
    }

    /// Advances one cycle without observation.
    pub fn step(&mut self) {
        self.step_observed(&mut NullObserver);
    }

    /// Advances `n` cycles without observation.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Advances one cycle, reporting records, injections and ejections.
    pub fn step_observed<O: Observer>(&mut self, obs: &mut O) {
        let cy = self.cycle;

        // ---- Phase -1: containment actions queued last cycle, then the
        // worm-age monitor queues stall escalations for the next one ----
        self.apply_recovery(cy);
        self.scan_worm_progress();
        let cfg = &self.cfg;

        // ---- Phase 0: single-event upsets on state registers ----
        for i in 0..self.plane.fault_count() {
            let Some(site) = self.plane.register_upset_due_at(i, cy) else {
                continue;
            };
            if self
                .routers
                .get_mut(site.router as usize)
                .is_some_and(|r| r.apply_register_upset(&site))
            {
                self.plane.note_hit();
            }
        }

        // ---- Phase 1: routers ----
        // Quiescent fast path: a router with every VC idle and empty, no
        // latched switch reads/grants and nothing on its links provably
        // performs no state change and emits an empty record (arbiters do
        // not rotate on zero requests, result buses only latch on grants,
        // the state table only writes on events). Skipping its step is
        // bit-identical — unless an armed fault targets this router, in
        // which case `FaultPlane::xf` could flip its wires (and must count
        // hits), so the full step always runs there.
        for r in &mut self.routers {
            self.record.reset(r.id());
            if !self.plane.router_armed(r.id()) && r.is_quiescent() {
                obs.on_cycle_record(cy, &self.record);
                continue;
            }
            r.step(
                cfg,
                cy,
                &mut self.plane,
                &mut self.scratch,
                &mut self.record,
            );
            obs.on_cycle_record(cy, &self.record);
        }

        // ---- Phase 2: transport ----
        // 2a. NIs drain ejection buffers (flits that arrived ≤ last cycle)
        // into the network's reused scratch buffers.
        for i in 0..self.nics.len() {
            self.eject_events.clear();
            self.eject_credits.clear();
            self.nics[i].eject_step(cfg, cy, &mut self.eject_events, &mut self.eject_credits);
            for ev in &self.eject_events {
                self.stats.ejected_flits += 1;
                self.stats.latency_sum += cy.saturating_sub(ev.flit.injected_at);
                obs.on_eject(ev);
            }
            self.routers[i]
                .incoming_credits
                .extend_from_slice(&self.eject_credits);
        }

        // 2b. Move staged flits across links / into ejection buffers.
        // This is the adversarial interposition point (DESIGN.md §14): a
        // compromised router manipulates its staged outputs *here*, after
        // every checker already observed the cycle's wire values.
        if let Some(adv) = self.attacker.as_mut() {
            adv.on_cycle(cy);
        }
        for i in 0..self.routers.len() {
            for d in Direction::ALL {
                let o = d.index();
                let Some(lf) = self.routers[i].out_flits[o].take() else {
                    continue;
                };
                let lf = match self.attacker.as_mut() {
                    Some(adv) if adv.armed_at(i as u16, cy) => {
                        let next = if d == Direction::Local {
                            None
                        } else {
                            cfg.mesh.neighbor(NodeId(i as u16), d)
                        };
                        match adv.on_link_flit(d, next, lf) {
                            Some(lf) => lf,
                            // Swallowed: no wire event and no forwarded
                            // count — to the rest of the mesh this link
                            // simply carried nothing this cycle.
                            None => continue,
                        }
                    }
                    _ => lf,
                };
                if d == Direction::Local {
                    self.nics[i].eject_push(lf.vc, lf.flit);
                    self.stats.forwarded_flits += 1;
                } else if let Some(nb) = cfg.mesh.neighbor(NodeId(i as u16), d) {
                    let in_port = d.opposite().index();
                    self.routers[nb.index()].incoming[in_port] = Some(lf);
                    self.stats.forwarded_flits += 1;
                }
                // A dead output port with a staged flit (fault-induced)
                // drops it on the floor: there is no wire.
            }
        }

        // 2c. Move staged credits upstream. The staged queue is swapped
        // with a reused scratch vector so both keep their capacity.
        for i in 0..self.routers.len() {
            std::mem::swap(&mut self.credit_scratch, &mut self.routers[i].out_credits);
            for c in self.credit_scratch.drain(..) {
                let d = Direction::ALL[c.port as usize];
                if d == Direction::Local {
                    self.nics[i].credit_return(cfg, c.vc, c.tail);
                } else if let Some(nb) = cfg.mesh.neighbor(NodeId(i as u16), d) {
                    // The upstream output port facing us.
                    let up_port = d.opposite().index() as u8;
                    self.routers[nb.index()].incoming_credits.push(CreditMsg {
                        port: up_port,
                        vc: c.vc,
                        tail: c.tail,
                    });
                }
            }
        }

        // 2d. NIs generate and inject.
        let enabled = self.injection_enabled;
        for (i, nic) in self.nics.iter_mut().enumerate() {
            nic.generate(cfg, cy, &mut self.next_packet, &mut self.next_uid, enabled);
            if self.routers[i].incoming[Direction::Local.index()].is_none() {
                if let Some(lf) = nic.inject(cfg) {
                    self.stats.injected_flits += 1;
                    obs.on_inject(cy, &lf.flit);
                    self.routers[i].incoming[Direction::Local.index()] = Some(lf);
                }
            }
        }

        self.cycle += 1;
    }

    /// Runs until drained or `deadline` cycles elapse; returns whether the
    /// network drained.
    pub fn drain<O: Observer>(&mut self, obs: &mut O, deadline: Cycle) -> bool {
        self.set_injection_enabled(false);
        let limit = self.cycle + deadline;
        while self.cycle < limit {
            if self.is_drained() {
                return true;
            }
            self.step_observed(obs);
        }
        self.is_drained()
    }
}

/// Convenience re-export so `LinkFlit` is reachable for tests.
pub use crate::router::LinkFlit as NetworkLinkFlit;

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::record::EjectEvent;
    use std::collections::HashMap;

    /// Collects ejections and injections for black-box checks.
    #[derive(Default)]
    struct Log {
        injected: Vec<Flit>,
        ejected: Vec<EjectEvent>,
    }

    impl Observer for Log {
        fn on_inject(&mut self, _cycle: Cycle, flit: &Flit) {
            self.injected.push(*flit);
        }
        fn on_eject(&mut self, ev: &EjectEvent) {
            self.ejected.push(ev.clone());
        }
    }

    fn run_and_drain(cfg: NocConfig, warm: u64) -> Log {
        let mut net = Network::new(cfg);
        let mut log = Log::default();
        for _ in 0..warm {
            net.step_observed(&mut log);
        }
        let drained = net.drain(&mut log, 20_000);
        assert!(drained, "fault-free network must drain");
        log
    }

    #[test]
    fn every_injected_flit_is_delivered_exactly_once_to_its_destination() {
        let log = run_and_drain(NocConfig::small_test(), 2_000);
        assert!(!log.injected.is_empty(), "traffic must flow");
        let mut seen: HashMap<u64, u32> = HashMap::new();
        for ev in &log.ejected {
            assert_eq!(ev.flit.dest, ev.node, "flit at wrong destination");
            assert!(!ev.flit.corrupted);
            *seen.entry(ev.flit.uid).or_default() += 1;
        }
        for f in &log.injected {
            assert_eq!(
                seen.get(&f.uid).copied().unwrap_or(0),
                1,
                "flit {f} delivered exactly once"
            );
        }
        assert_eq!(log.injected.len(), log.ejected.len());
    }

    #[test]
    fn intra_packet_flit_order_is_preserved() {
        let log = run_and_drain(NocConfig::small_test(), 2_000);
        let mut next_seq: HashMap<u64, u16> = HashMap::new();
        for ev in &log.ejected {
            let expect = next_seq.entry(ev.flit.packet.0).or_insert(0);
            assert_eq!(
                ev.flit.seq, *expect,
                "packet {} out of order",
                ev.flit.packet
            );
            *expect += 1;
        }
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let a = run_and_drain(NocConfig::small_test(), 1_000);
        let b = run_and_drain(NocConfig::small_test(), 1_000);
        let ea: Vec<_> = a.ejected.iter().map(|e| (e.cycle, e.flit.uid)).collect();
        let eb: Vec<_> = b.ejected.iter().map(|e| (e.cycle, e.flit.uid)).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn paper_baseline_8x8_delivers() {
        let mut cfg = NocConfig::paper_baseline();
        cfg.injection_rate = 0.05;
        let log = run_and_drain(cfg, 1_500);
        assert!(log.injected.len() > 100);
        assert_eq!(log.injected.len(), log.ejected.len());
    }

    #[test]
    fn snapshot_rollout_equivalence() {
        let mut net = Network::new(NocConfig::small_test());
        net.run(800);
        let snap = net.clone();
        let mut log_a = Log::default();
        let mut log_b = Log::default();
        let mut a = snap.clone();
        let mut b = snap;
        for _ in 0..500 {
            a.step_observed(&mut log_a);
            b.step_observed(&mut log_b);
        }
        let ea: Vec<_> = log_a
            .ejected
            .iter()
            .map(|e| (e.cycle, e.flit.uid))
            .collect();
        let eb: Vec<_> = log_b
            .ejected
            .iter()
            .map(|e| (e.cycle, e.flit.uid))
            .collect();
        assert_eq!(ea, eb);
        assert_eq!(net.cycle(), 800);
        let _ = net;
    }

    #[test]
    fn latency_is_sane_at_low_load() {
        let mut cfg = NocConfig::small_test();
        cfg.injection_rate = 0.02;
        let mut net = Network::new(cfg);
        net.run(5_000);
        let drained = net.drain(&mut NullObserver, 10_000);
        assert!(drained);
        let stats = net.stats();
        assert!(stats.ejected_flits > 0);
        // 5-stage pipeline, ≤ 6 hops in 4×4: mean latency must be tens of
        // cycles, not hundreds (no livelock/pathology at low load).
        let mean = stats.mean_latency();
        assert!((5.0..100.0).contains(&mean), "mean latency {mean}");
    }

    #[test]
    fn non_atomic_buffers_also_deliver() {
        let mut cfg = NocConfig::small_test();
        cfg.buffer_policy = noc_types::BufferPolicy::NonAtomic;
        let log = run_and_drain(cfg, 2_000);
        assert_eq!(log.injected.len(), log.ejected.len());
    }

    #[test]
    fn west_first_routing_also_delivers() {
        let mut cfg = NocConfig::small_test();
        cfg.routing = noc_types::RoutingAlgorithm::WestFirst;
        let log = run_and_drain(cfg, 2_000);
        assert_eq!(log.injected.len(), log.ejected.len());
        for ev in &log.ejected {
            assert_eq!(ev.flit.dest, ev.node);
        }
    }

    #[test]
    fn fault_region_routing_matches_xy_on_a_healthy_mesh() {
        // A disengaged region map installs no tables, so the FaultRegion
        // algorithm must be bit-identical to the XY baseline.
        let mut cfg = NocConfig::small_test();
        cfg.routing = noc_types::RoutingAlgorithm::FaultRegion;
        let a = run_and_drain(cfg, 2_000);
        let b = run_and_drain(NocConfig::small_test(), 2_000);
        let ea: Vec<_> = a.ejected.iter().map(|e| (e.cycle, e.flit.uid)).collect();
        let eb: Vec<_> = b.ejected.iter().map(|e| (e.cycle, e.flit.uid)).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn quarantined_router_is_routed_around() {
        let mut cfg = NocConfig::small_test();
        cfg.routing = noc_types::RoutingAlgorithm::FaultRegion;
        let mut net = Network::new(cfg);
        net.quarantine_router(5);
        let mut log = Log::default();
        for _ in 0..2_000 {
            net.step_observed(&mut log);
        }
        assert!(net.drain(&mut log, 20_000), "region-routed network drains");
        assert!(!log.injected.is_empty(), "traffic must flow");
        assert_eq!(log.injected.len(), log.ejected.len());
        for ev in &log.ejected {
            assert_eq!(ev.flit.dest, ev.node);
            assert_ne!(ev.node.0, 5, "nothing delivered to the absorbed router");
        }
        let stats = net.recovery_stats();
        assert_eq!(stats.regions_formed, 1);
        assert_eq!(stats.routers_absorbed, 1);
        assert!(stats.reroutes_taken > 0, "detours must be counted");
    }

    #[test]
    fn higher_load_still_conserves_flits() {
        let mut cfg = NocConfig::small_test();
        cfg.injection_rate = 0.25;
        let log = run_and_drain(cfg, 3_000);
        assert_eq!(log.injected.len(), log.ejected.len());
    }
}
