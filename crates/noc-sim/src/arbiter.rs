//! Round-robin arbiters — the VA1/VA2/SA1/SA2 building block.
//!
//! A matrix/rotating round-robin arbiter receives a request bit-vector and
//! produces a one-hot grant bit-vector, rotating priority away from the last
//! winner so every persistent requester is served within `n` arbitrations
//! (the fairness property the unit tests and property tests pin down).
//!
//! The arbiter returns its *internal* (always correct) grant; the router
//! passes that value through the fault plane before using it, mirroring a
//! fault on the module's output wire. The internal priority pointer always
//! follows the internal grant, like the state register of the physical
//! arbiter would.

use serde::{Deserialize, Serialize};

/// A rotating-priority round-robin arbiter over up to 64 requesters.
///
/// # Example
///
/// ```
/// use noc_sim::arbiter::RoundRobin;
///
/// let mut arb = RoundRobin::new(4);
/// assert_eq!(arb.arbitrate(0b1010), 0b0010); // lowest from pointer 0
/// assert_eq!(arb.arbitrate(0b1010), 0b1000); // pointer rotated past bit 1
/// assert_eq!(arb.arbitrate(0b1010), 0b0010); // wraps around
/// assert_eq!(arb.arbitrate(0), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundRobin {
    width: u8,
    /// Index with the highest priority for the next arbitration.
    next: u8,
}

impl RoundRobin {
    /// Creates an arbiter over `width` requesters.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn new(width: u8) -> RoundRobin {
        assert!(width > 0 && width <= 64, "arbiter width must be 1..=64");
        RoundRobin { width, next: 0 }
    }

    /// Number of requesters.
    #[inline]
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Grants one of the set bits of `req`, rotating priority.
    ///
    /// Returns a one-hot grant vector, or `0` when `req` is `0`. Bits of
    /// `req` at or above `width` are ignored.
    pub fn arbitrate(&mut self, req: u64) -> u64 {
        let req = req & self.mask();
        if req == 0 {
            return 0;
        }
        let rotated = req.rotate_right(self.next as u32);
        // Lowest set bit of the rotated vector, rotated back.
        let pick_rot = rotated & rotated.wrapping_neg();
        let grant = pick_rot.rotate_left(self.next as u32) & self.mask();
        let winner = grant.trailing_zeros() as u8;
        self.next = (winner + 1) % self.width;
        grant
    }

    /// Peeks at the winner for `req` without advancing the pointer.
    pub fn peek(&self, req: u64) -> u64 {
        let mut copy = self.clone();
        copy.arbitrate(req)
    }

    #[inline]
    fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }
}

/// Index of the single set bit of a one-hot vector, or `None` when the
/// vector is zero or has multiple set bits.
#[inline]
pub fn one_hot_index(v: u64) -> Option<u8> {
    if v != 0 && v & (v - 1) == 0 {
        Some(v.trailing_zeros() as u8)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_are_one_hot_subset_of_requests() {
        let mut arb = RoundRobin::new(5);
        for req in 0u64..32 {
            let g = arb.arbitrate(req);
            if req == 0 {
                assert_eq!(g, 0);
            } else {
                assert_eq!(g & req, g, "grant must be a subset of requests");
                assert_eq!(g.count_ones(), 1, "grant must be one-hot");
            }
        }
    }

    #[test]
    fn round_robin_is_fair_under_full_contention() {
        let mut arb = RoundRobin::new(4);
        let mut wins = [0u32; 4];
        for _ in 0..400 {
            let g = arb.arbitrate(0b1111);
            wins[one_hot_index(g).unwrap() as usize] += 1;
        }
        assert_eq!(wins, [100; 4]);
    }

    #[test]
    fn pointer_skips_idle_requesters() {
        let mut arb = RoundRobin::new(4);
        assert_eq!(arb.arbitrate(0b0100), 0b0100);
        assert_eq!(arb.arbitrate(0b0100), 0b0100);
        // A newly arrived lower-index request is served next.
        assert_eq!(arb.arbitrate(0b0101), 0b0001);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut arb = RoundRobin::new(3);
        let p1 = arb.peek(0b111);
        let p2 = arb.peek(0b111);
        assert_eq!(p1, p2);
        assert_eq!(arb.arbitrate(0b111), p1);
    }

    #[test]
    fn one_hot_index_classifies() {
        assert_eq!(one_hot_index(0), None);
        assert_eq!(one_hot_index(0b100), Some(2));
        assert_eq!(one_hot_index(0b101), None);
    }

    #[test]
    #[should_panic(expected = "arbiter width")]
    fn zero_width_panics() {
        RoundRobin::new(0);
    }

    // Property-style sweeps over seeded random inputs (the environment is
    // offline, so these use the in-tree deterministic RNG instead of
    // proptest's strategy machinery).

    #[test]
    fn prop_grant_always_one_hot_subset() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0xA2B1);
        for width in 1u8..=16 {
            let mut arb = RoundRobin::new(width);
            let mask = (1u64 << width) - 1;
            for _ in 0..200 {
                let r: u64 = rng.gen();
                let g = arb.arbitrate(r);
                let r = r & mask;
                if r == 0 {
                    assert_eq!(g, 0, "width {width}");
                } else {
                    assert_eq!(g & r, g, "grant outside requests, width {width}");
                    assert_eq!(g.count_ones(), 1, "grant not one-hot, width {width}");
                }
            }
        }
    }

    #[test]
    fn prop_starvation_freedom() {
        // A persistent requester wins within `width` arbitrations even
        // with all other requesters contending. Exhaustive over the widths
        // and requester positions the routers use.
        for width in 2u8..=8 {
            for bit in 0..width {
                let mut arb = RoundRobin::new(width);
                let all = (1u64 << width) - 1;
                let won = (0..width).any(|_| arb.arbitrate(all) == 1 << bit);
                assert!(won, "requester {bit} starved at width {width}");
            }
        }
    }
}
