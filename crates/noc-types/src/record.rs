//! Per-cycle observation records — the wires the checkers watch.
//!
//! The NoCAlert checkers are combinational circuits hanging off existing
//! wires (Section 4.2). In this reproduction, the simulator materializes
//! those wires once per router per cycle as a [`CycleRecord`]; the checkers
//! (crate `nocalert`) and the ForEVeR Allocation Comparator (crate
//! `nocalert-forever`) read the record and never touch simulator internals.
//!
//! **All values in a record are post-fault**: when the fault plane flips a
//! bit at a module boundary, both the downstream router logic *and* the
//! record see the flipped value — exactly like hardware checkers soldered
//! to the same wire.
//!
//! Records reuse their `Vec` allocations across cycles ([`CycleRecord::reset`]).

use crate::flit::Flit;
use crate::geometry::NodeId;
use crate::Cycle;
use serde::{Deserialize, Serialize};

/// Sentinel for [`RcEvent::region_next`]: no fault-region tables are
/// installed on the router, so RC used the baseline (or fence-avoiding)
/// routing function. Distinct from every 3-bit direction code and from the
/// in-table no-route sentinel (7).
pub const REGION_NONE: u8 = 0xff;

/// One Routing-Computation execution (at most one per input port per cycle
/// under correct operation — invariance 31 checks exactly that).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RcEvent {
    /// Input port whose RC unit fired.
    pub port: u8,
    /// VC whose header was routed.
    pub vc: u8,
    /// Destination X wire as seen by the RC unit (post-fault).
    pub dest_x: u64,
    /// Destination Y wire as seen by the RC unit (post-fault).
    pub dest_y: u64,
    /// Head-valid wire: the flit at the buffer head claims to be a header.
    pub head_valid: bool,
    /// The VC buffer was empty when RC completed (illegal: invariance 21).
    pub buf_empty: bool,
    /// Raw 3-bit output-direction wire (post-fault; may encode 5–7).
    pub out_dir: u64,
    /// Fenced-direction register mask (bit d set = output direction d is
    /// fenced by containment). Non-zero means RC routed around damage with
    /// the fence-avoiding routing function; the turn/progress checkers
    /// recompute their bound from it instead of disarming.
    pub avoid_mask: u8,
    /// The fault-region table entry RC used this cycle (raw 3-bit code;
    /// the in-table no-route sentinel 7 decodes to a local eject), or
    /// [`REGION_NONE`] when no region tables are installed. Like
    /// `avoid_mask` this mirrors a register the checkers can see — it lets
    /// them re-derive the active routing function's answer and stay armed
    /// on up*/down* detour paths.
    pub region_next: u8,
}

/// One local (intra-port) arbitration: VA1 or SA1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalArbEvent {
    /// Input port owning the arbiter.
    pub port: u8,
    /// Request vector over the port's VCs (bit v = VC v requests).
    pub req: u64,
    /// Grant vector (one-hot or zero under correct operation).
    pub grant: u64,
    /// For SA1: bit v set iff VC v holds a credit for its output VC
    /// (invariance 7 cross-checks grants against this). For VA1 this mirrors
    /// `req`.
    pub credit_ok: u64,
}

/// One global VC-allocation arbitration (VA2) at an output port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Va2Event {
    /// Output port owning the arbiter.
    pub out_port: u8,
    /// Request vector over input ports.
    pub req: u64,
    /// Grant vector over input ports.
    pub grant: u64,
    /// Downstream VC index assigned to the winner (raw wire, post-fault).
    pub out_vc: u64,
    /// Free/allocatable mask over this output port's downstream VCs at
    /// decision time (bit v = VC v was free).
    pub free_mask: u64,
    /// The winning input VC `(port, vc)` as resolved by the router,
    /// `None` when the grant vector selected no live requester.
    pub winner: Option<(u8, u8)>,
    /// The RC-computed output port stored in the winner's VC state
    /// (for invariance 10: VA must agree with RC).
    pub winner_rc_port: Option<u64>,
    /// Message class of the winner's packet (for class-range checking of
    /// the assigned VC, part of invariance 19).
    pub winner_class: Option<u8>,
    /// Whether the winner had made a VA1-stage request this cycle
    /// (invariance 12).
    pub winner_won_va1: bool,
}

/// One global switch arbitration (SA2) at an output port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sa2Event {
    /// Output port owning the arbiter.
    pub out_port: u8,
    /// Request vector over input ports (SA1 winners targeting this port).
    pub req: u64,
    /// Grant vector over input ports.
    pub grant: u64,
    /// The winning `(input port, vc)` as resolved by the router.
    pub winner: Option<(u8, u8)>,
    /// Output port stored in the winner's VC state (invariance 11: the SA
    /// result must agree with RC).
    pub winner_rc_port: Option<u64>,
    /// Whether the winner had won its SA1 stage this cycle (invariance 13).
    pub winner_won_sa1: bool,
    /// Whether the winner held a credit for its output VC (invariance 7).
    pub winner_credit_ok: bool,
}

/// Crossbar traversal summary for one router cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct XbarEvent {
    /// Connection matrix: bit `o * 8 + p` set = input row `p` drives output
    /// column `o` (post-fault; may be non-one-hot in rows or columns).
    pub matrix: u64,
    /// Bit p set = input row p presented a flit this cycle.
    pub in_valid: u64,
    /// Bit o set = output column o emitted a flit this cycle.
    pub out_valid: u64,
    /// Number of flits entering the crossbar.
    pub in_count: u8,
    /// Number of flits leaving the crossbar.
    pub out_count: u8,
}

impl XbarEvent {
    /// Row vector (over outputs) for input `p`.
    #[inline]
    pub fn row(&self, p: u8, ports: u8) -> u64 {
        let mut v = 0;
        for o in 0..ports {
            if self.matrix >> (o * 8 + p) & 1 == 1 {
                v |= 1 << o;
            }
        }
        v
    }

    /// Column vector (over inputs) for output `o`.
    #[inline]
    pub fn col(&self, o: u8) -> u64 {
        (self.matrix >> (o * 8)) & 0xff
    }
}

/// Snapshot of one VC's state table after this cycle's events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VcEvent {
    /// Input port.
    pub port: u8,
    /// VC index.
    pub vc: u8,
    /// Raw 2-bit pipeline state code *before* this cycle's transitions
    /// (0 = Idle, 1 = Routing, 2 = VaPending, 3 = Active; post-fault).
    pub state_before: u64,
    /// Raw state code after this cycle (post-fault).
    pub state_after: u64,
    /// "RC completed" event wire this cycle.
    pub ev_rc_done: bool,
    /// "VA completed" event wire this cycle.
    pub ev_va_done: bool,
    /// "Won SA" event wire this cycle.
    pub ev_sa_won: bool,
    /// Head-of-buffer flit kind bits (2; post-fault) — only meaningful when
    /// the buffer is non-empty.
    pub head_kind: u64,
    /// Buffer-empty flag (post-fault).
    pub empty: bool,
    /// Stored output-port register wire (3 bits, post-fault) — meaningful
    /// once RC has completed (state ≥ VaPending). Continuously monitored by
    /// invariance 2.
    pub out_port: u64,
    /// Stored output-VC register wire (post-fault) — meaningful once VA has
    /// completed (state == Active). Continuously monitored by invariance 19.
    pub out_vc: u64,
}

/// One buffer write (flit arriving from the upstream link / local NI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteEvent {
    /// Input port written.
    pub port: u8,
    /// VC written (raw downstream-VC field of the incoming flit).
    pub vc: u8,
    /// Kind bits of the written flit.
    pub kind: u64,
    /// The flit claims to be a header.
    pub is_head: bool,
    /// The flit claims to be a tail.
    pub is_tail: bool,
    /// The VC was free (Idle, no owner packet) before the write.
    pub vc_was_free: bool,
    /// The buffer was already full before the write (invariance 25).
    pub buf_was_full: bool,
    /// The previously *written* flit in this VC was a tail (drives
    /// invariance 27 in non-atomic mode).
    pub prev_written_was_tail: bool,
    /// Flits of the current packet that have arrived in this VC including
    /// this one.
    pub arrived_count: u16,
    /// Expected packet length for the flit's message class (invariance 28).
    pub expected_len: u16,
}

/// One buffer read (flit leaving toward the crossbar).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadEvent {
    /// Input port read.
    pub port: u8,
    /// VC read.
    pub vc: u8,
    /// The buffer was empty — the read replayed stale garbage
    /// (invariance 24).
    pub was_empty: bool,
}

/// One flit ejected into a destination network interface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EjectEvent {
    /// Node whose NI received the flit.
    pub node: NodeId,
    /// Ejection cycle.
    pub cycle: Cycle,
    /// The flit as delivered.
    pub flit: Flit,
}

/// Everything one router's control logic did in one cycle.
///
/// Produced by the simulator, consumed by checker implementations via the
/// `Observer` trait in `noc-sim`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CycleRecord {
    /// Router (node) index this record describes.
    pub router: u16,
    /// RC executions.
    pub rc: Vec<RcEvent>,
    /// VA1 local arbitrations (only ports with requests or grants).
    pub va1: Vec<LocalArbEvent>,
    /// SA1 local arbitrations.
    pub sa1: Vec<LocalArbEvent>,
    /// VA2 global arbitrations.
    pub va2: Vec<Va2Event>,
    /// SA2 global arbitrations.
    pub sa2: Vec<Sa2Event>,
    /// Crossbar traversal summary.
    pub xbar: XbarEvent,
    /// VC state snapshots (only VCs that saw an event or are non-idle).
    pub vc: Vec<VcEvent>,
    /// Buffer writes.
    pub writes: Vec<WriteEvent>,
    /// Buffer reads.
    pub reads: Vec<ReadEvent>,
}

impl CycleRecord {
    /// Clears all event lists, retaining capacity, and re-targets the
    /// record at `router`.
    pub fn reset(&mut self, router: u16) {
        self.router = router;
        self.rc.clear();
        self.va1.clear();
        self.sa1.clear();
        self.va2.clear();
        self.sa2.clear();
        self.vc.clear();
        self.writes.clear();
        self.reads.clear();
        self.xbar = XbarEvent::default();
    }

    /// True when nothing at all happened in the router this cycle.
    pub fn is_quiet(&self) -> bool {
        self.rc.is_empty()
            && self.va1.is_empty()
            && self.sa1.is_empty()
            && self.va2.is_empty()
            && self.sa2.is_empty()
            && self.vc.is_empty()
            && self.writes.is_empty()
            && self.reads.is_empty()
            && self.xbar.in_valid == 0
            && self.xbar.out_valid == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::identity_op, clippy::erasing_op)]
    fn xbar_row_col_extraction() {
        let mut x = XbarEvent::default();
        // input 2 drives outputs 0 and 3; input 1 drives output 0 too.
        x.matrix |= 1 << (0 * 8 + 2);
        x.matrix |= 1 << (3 * 8 + 2);
        x.matrix |= 1 << (0 * 8 + 1);
        assert_eq!(x.col(0), 0b110);
        assert_eq!(x.col(3), 0b100);
        assert_eq!(x.col(1), 0);
        assert_eq!(x.row(2, 5), 0b01001);
        assert_eq!(x.row(1, 5), 0b00001);
        assert_eq!(x.row(0, 5), 0);
    }

    #[test]
    fn record_reset_retains_capacity_and_clears() {
        let mut r = CycleRecord::default();
        r.rc.push(RcEvent {
            port: 0,
            vc: 0,
            dest_x: 1,
            dest_y: 2,
            head_valid: true,
            buf_empty: false,
            out_dir: 1,
            avoid_mask: 0,
            region_next: REGION_NONE,
        });
        r.reads.push(ReadEvent {
            port: 1,
            vc: 2,
            was_empty: false,
        });
        assert!(!r.is_quiet());
        let cap = r.rc.capacity();
        r.reset(42);
        assert!(r.is_quiet());
        assert_eq!(r.router, 42);
        assert!(r.rc.capacity() >= cap);
    }
}
