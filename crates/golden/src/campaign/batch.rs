//! The batched bit-plane rollout engine (DESIGN.md §12).
//!
//! The scalar campaign steps one cloned network per fault site through
//! `active_window + drain + coda` cycles — even though a single-event
//! transient perturbs the machine for exactly one cycle and the vast
//! majority of rollouts re-converge to the fault-free (golden) trajectory
//! within a handful of cycles. This module exploits that structure while
//! producing **bit-identical** [`RunResult`]s:
//!
//! * **Golden trajectory cache** ([`GoldenTrajectory`]) — one extra
//!   golden rollout per campaign records the full injection/ejection
//!   event streams, the drain end, and a geometric ladder of network
//!   checkpoints at `injection + {1, 2, 4, …}` cycles (plus the active
//!   end). Built lazily, shared read-only across worker threads.
//!
//! * **Prefix sharing** — a transient armed for a *later* cycle leaves
//!   the network bit-identical to golden until it fires, so the lane
//!   starts from the last golden checkpoint at or before its injection
//!   instant; the skipped prefix is replayed into the lane's observers
//!   from the cached golden event streams.
//!
//! * **Resync ladder + observer replay** — after the fault fires, the
//!   lane steps (observers attached, so every divergent cycle is really
//!   observed) and compares against golden checkpoints with
//!   [`Network::state_eq`]. Once the *network* state matches — detector
//!   state may differ; detections are history, not dynamics — the rest of
//!   the run is a pure function of the golden trajectory: the remaining
//!   cycles are completed without stepping by replaying the cached golden
//!   eject/inject streams (plus one empty cycle record per cycle, which
//!   drives the ForEVeR epoch clock) through the lane's own observers.
//!   This is exact, not approximate: with an inert fault plane and the
//!   NIC RNG a pure function of the cycle count, equal network states
//!   produce equal futures, and golden's records provably raise nothing
//!   (the trajectory build verifies this and disables the engine
//!   otherwise).
//!
//! * **Probe batching** — sustained faults (permanent / stuck-at /
//!   intermittent) never go inert, so resync does not apply. Instead, up
//!   to 64 of them are armed as *pass-through probes* on one network
//!   stepped once along the golden schedule; each lane's would-be flip
//!   count falls out of the single pass. Lanes with zero hits are vacuous
//!   — their result is synthesized from the golden trajectory — and only
//!   lanes that would actually flip a wire pay for a scalar rollout.
//!
//! Rollouts the engine cannot prove equivalent fall back to the scalar
//! path unchanged: recovery-enabled networks (containment mutates state
//! the equality certificate does not cover), specs starting before the
//! snapshot, malformed specs, and lanes that never re-converge within the
//! active window.

use super::{Campaign, CampaignArena, RunResult};
use crate::oracle::{classify, Verdict};
use fault::{FaultSpec, Hang, HangKind, Watchdog};
use noc_sim::{ArmedFault, Network, NullObserver, Observer};
use noc_types::record::CycleRecord;
use noc_types::site::FaultKind;
use noc_types::Cycle;

/// Probe batches pair one stepped network with up to this many
/// pass-through lanes — one bit-lane per probe, matching the `u64`
/// router masks the fault plane scans.
pub(crate) const PROBE_LANES: usize = 64;

/// Cached golden artifacts backing the batched engine. One per
/// [`Campaign`], built lazily on first batched use.
#[derive(Debug, Clone)]
pub(crate) struct GoldenTrajectory {
    /// Network checkpoints at `injection + {1, 2, 4, …}` and the active
    /// end, in cycle order. Geometric spacing bounds the overshoot past
    /// the true re-convergence instant by 2×.
    ladder: Vec<Network>,
    /// Warm-up plus full golden rollout event streams (cycle-ordered).
    log: crate::oracle::RunLog,
    /// The golden rollout drained (it must; `Campaign::try_new` verified
    /// a golden rollout already).
    drained: bool,
    /// `Network::cycle()` when the golden drain completed.
    end_cycle: Cycle,
    /// Longest progress-free stretch observed during the golden drain —
    /// a watchdog whose stall window exceeds this can never trip on a
    /// golden-equal trajectory.
    max_stall: Cycle,
    /// The (empty) verdict of a clean golden run, reused for synthesized
    /// vacuous-lane results.
    clean_verdict: Verdict,
    /// The engine may be used at all: recovery disabled, golden drained,
    /// and both detectors provably silent along the entire golden
    /// trajectory including the coda (replay feeds converged lanes empty
    /// records in place of golden's, which is only exact under this
    /// invariant).
    usable: bool,
}

impl Campaign {
    /// The lazily built golden trajectory cache.
    pub(crate) fn trajectory(&self) -> &GoldenTrajectory {
        self.traj.get_or_init(|| self.build_trajectory())
    }

    fn build_trajectory(&self) -> GoldenTrajectory {
        let mut net = self.snapshot.clone();
        let mut bank = self.bank0.clone();
        let mut fv = self.forever0.clone();
        let mut log = self.log0.clone();
        let mut ladder = Vec::new();
        let mut next = 1u64;
        for k in 1..=self.cc.active_window {
            net.step_observed(&mut (&mut bank, &mut fv, &mut log));
            if k == next || k == self.cc.active_window {
                ladder.push(net.clone());
                next = next.saturating_mul(2);
            }
        }
        // Drain exactly like `Network::drain` / the watched drain loop,
        // additionally tracking the longest progress-free stretch.
        net.set_injection_enabled(false);
        let limit = net.cycle() + self.cc.drain_deadline;
        let mut sig = net.progress_signature();
        let mut stalled: Cycle = 0;
        let mut max_stall: Cycle = 0;
        let mut drained = false;
        while net.cycle() < limit {
            if net.is_drained() {
                drained = true;
                break;
            }
            net.step_observed(&mut (&mut bank, &mut fv, &mut log));
            let now = net.progress_signature();
            if now == sig {
                stalled += 1;
                max_stall = max_stall.max(stalled);
            } else {
                sig = now;
                stalled = 0;
            }
        }
        drained = drained || net.is_drained();
        let end_cycle = net.cycle();
        // Coda, for the detector-silence certificate only (the ladder and
        // event streams are complete by now — a drained network emits no
        // further events).
        for _ in 0..(2 * self.cc.forever_epoch + 1) {
            net.step_observed(&mut (&mut bank, &mut fv, &mut log));
        }
        let clean_verdict = classify(&self.golden, &log, drained);
        // `state_eq(self)` is false exactly when recovery is enabled —
        // the same condition under which lane convergence could never be
        // certified.
        let usable = drained
            && !bank.any_asserted()
            && !fv.any_detected()
            && !clean_verdict.malicious()
            && self.snapshot.state_eq(&self.snapshot);
        GoldenTrajectory {
            ladder,
            log,
            drained,
            end_cycle,
            max_stall,
            clean_verdict,
            usable,
        }
    }

    /// Feeds the cached golden cycles `[from, to)` through `obs` exactly
    /// as stepping would: one (empty) cycle record — quiescent and
    /// fault-free busy routers alike raise nothing, and the record drives
    /// the ForEVeR epoch clock — then that cycle's ejections, then its
    /// injections.
    fn replay_golden<O: Observer>(
        &self,
        traj: &GoldenTrajectory,
        from: Cycle,
        to: Cycle,
        obs: &mut O,
    ) {
        let empty = CycleRecord::default();
        let mut i = traj.log.injected.partition_point(|&(c, _)| c < from);
        let mut e = traj.log.ejected.partition_point(|ev| ev.cycle < from);
        for cy in from..to {
            obs.on_cycle_record(cy, &empty);
            while e < traj.log.ejected.len() && traj.log.ejected[e].cycle == cy {
                obs.on_eject(&traj.log.ejected[e]);
                e += 1;
            }
            while i < traj.log.injected.len() && traj.log.injected[i].0 == cy {
                obs.on_inject(cy, &traj.log.injected[i].1);
                i += 1;
            }
        }
    }

    /// The batched fast path for one transient rollout, equivalent to
    /// [`Campaign::run_spec_watched_in`] bit for bit. Returns `None` when
    /// the spec or watchdog is outside the engine's proof obligations —
    /// the caller falls back to the scalar path.
    pub(crate) fn run_transient_batched_in(
        &self,
        arena: &mut CampaignArena,
        spec: FaultSpec,
        dog: Watchdog,
    ) -> Option<(RunResult, Option<Hang>)> {
        if spec.kind != FaultKind::Transient {
            return None;
        }
        let inj = self.injection_cycle();
        let active_end = inj + self.cc.active_window;
        if spec.start < inj || spec.start >= active_end {
            return None;
        }
        let traj = self.trajectory();
        // Watchdog compatibility on a golden-equal trajectory: the budget
        // must outlast the golden schedule and the stall window must
        // exceed the longest stretch the golden drain itself sat still.
        // (Lanes that never re-converge run the watched loop below and
        // honor any policy.)
        if !traj.usable
            || dog.cycle_budget < traj.end_cycle - inj
            || dog.stall_window <= traj.max_stall
        {
            return None;
        }
        self.rewind(arena);
        let CampaignArena {
            net,
            bank,
            forever: fv,
            log,
        } = arena;
        // Prefix sharing: until the transient fires, the lane is
        // bit-identical to golden — jump to the last checkpoint at or
        // before the injection instant and replay the skipped prefix into
        // the lane's observers.
        if let Some(ck) = traj
            .ladder
            .iter()
            .take_while(|ck| ck.cycle() <= spec.start)
            .last()
        {
            self.replay_golden(
                traj,
                inj,
                ck.cycle(),
                &mut (&mut *bank, &mut *fv, &mut *log),
            );
            net.clone_from(ck);
        }
        net.arm_fault(spec.site, spec.kind, spec.start);
        // Resync ladder: step (observed) to each remaining checkpoint and
        // compare network state.
        let mut converged: Option<Cycle> = None;
        for ck in &traj.ladder {
            if ck.cycle() <= net.cycle() {
                continue;
            }
            while net.cycle() < ck.cycle() {
                net.step_observed(&mut (&mut *bank, &mut *fv, &mut *log));
            }
            if net.state_eq(ck) {
                converged = Some(ck.cycle());
                break;
            }
        }
        if let Some(from) = converged {
            // Observer-only completion: replay the golden suffix through
            // the active window and drain, then the tick-only coda.
            let fault_hits = net.fault_hits();
            let coda_end = traj.end_cycle + 2 * self.cc.forever_epoch + 1;
            self.replay_golden(traj, from, coda_end, &mut (&mut *bank, &mut *fv, &mut *log));
            let verdict = classify(&self.golden, log, traj.drained);
            return Some((self.assemble(spec, fault_hits, verdict, bank, fv), None));
        }
        // Never re-converged within the active window: finish the rollout
        // scalar, in place, replicating the watched drain loop and coda.
        let budget_end = inj.saturating_add(dog.cycle_budget);
        let drain_end = net.cycle() + self.cc.drain_deadline;
        net.set_injection_enabled(false);
        let mut sig = net.progress_signature();
        let mut stalled: Cycle = 0;
        let mut drained = false;
        let mut hang = None;
        loop {
            if net.is_drained() {
                drained = true;
                break;
            }
            if net.cycle() >= drain_end {
                break;
            }
            if net.cycle() >= budget_end {
                hang = Some(Hang {
                    kind: HangKind::CycleBudget,
                    at_cycle: net.cycle(),
                    stalled_for: stalled,
                });
                break;
            }
            if stalled >= dog.stall_window {
                hang = Some(Hang {
                    kind: HangKind::NoProgress,
                    at_cycle: net.cycle(),
                    stalled_for: stalled,
                });
                break;
            }
            net.step_observed(&mut (&mut *bank, &mut *fv, &mut *log));
            let now = net.progress_signature();
            if now == sig {
                stalled += 1;
            } else {
                sig = now;
                stalled = 0;
            }
        }
        if hang.is_none() {
            self.coda(net, &mut (&mut *bank, &mut *fv, &mut *log));
        }
        let verdict = classify(&self.golden, log, drained);
        Some((
            self.assemble(spec, net.fault_hits(), verdict, bank, fv),
            hang,
        ))
    }

    /// Runs one probe batch of sustained-fault lanes: a single pass along
    /// the golden schedule with all lanes armed as pass-through probes,
    /// then synthesized results for vacuous lanes and scalar rollouts for
    /// the rest. Pushes `(input_index, result)` pairs onto `out`.
    fn run_probe_group(
        &self,
        arena: &mut CampaignArena,
        group: &[(usize, FaultSpec)],
        out: &mut Vec<(usize, RunResult)>,
    ) {
        let traj = self.trajectory();
        let probes: Vec<ArmedFault> = group
            .iter()
            .map(|&(_, s)| ArmedFault {
                site: s.site,
                kind: s.kind,
                start: s.start,
            })
            .collect();
        arena.net.clone_from(&self.snapshot);
        arena.net.arm_probes(&probes);
        // The probes are pass-through, so this pass follows the golden
        // trajectory exactly — over the same horizon a scalar vacuous
        // rollout would cover (active window, drain, coda).
        for _ in 0..self.cc.active_window {
            arena.net.step_observed(&mut NullObserver);
        }
        let _ = arena.net.drain(&mut NullObserver, self.cc.drain_deadline);
        for _ in 0..(2 * self.cc.forever_epoch + 1) {
            arena.net.step_observed(&mut NullObserver);
        }
        let hits = arena.net.probe_hits().to_vec();
        arena.net.clear_probes();
        for (lane, &(i, spec)) in group.iter().enumerate() {
            if hits[lane] == 0 {
                // Zero would-be flips along the entire golden schedule:
                // the scalar rollout would be the golden run, hit for
                // hit and event for event. Its detectors stay silent
                // (certified by the trajectory build), so the warm
                // detector states answer every `assemble` query
                // identically to fully-run ones.
                out.push((
                    i,
                    self.assemble(
                        spec,
                        0,
                        traj.clean_verdict.clone(),
                        &self.bank0,
                        &self.forever0,
                    ),
                ));
            } else {
                out.push((i, self.run_spec_in(arena, spec)));
            }
        }
    }

    /// Runs arbitrary fault specs through the batched engine: eligible
    /// transients take the resync-ladder fast path, sustained kinds are
    /// screened for vacuity in probe batches of up to [`PROBE_LANES`],
    /// and everything else (malformed specs, starts outside the active
    /// window, recovery-enabled configurations) falls back to the scalar
    /// path. Results are in input order and bit-identical to
    /// [`Campaign::run_spec_in`] per spec, for any `threads` value
    /// (`0`/`1` ⇒ sequential).
    ///
    /// This is the fail-fast analogue of [`Campaign::run_many_resilient`]:
    /// a panicking rollout propagates.
    pub fn run_specs_batched(&self, specs: &[FaultSpec], threads: usize) -> Vec<RunResult> {
        // Build the shared trajectory before any worker needs it.
        let _ = self.trajectory();
        let dog = Watchdog {
            cycle_budget: u64::MAX,
            stall_window: u64::MAX,
        };
        let run_share = |share: &mut dyn Iterator<Item = (usize, FaultSpec)>| {
            let mut arena = self.arena();
            let mut out: Vec<(usize, RunResult)> = Vec::new();
            let mut probe_group: Vec<(usize, FaultSpec)> = Vec::new();
            for (i, spec) in share {
                if spec.kind == FaultKind::Transient {
                    let r = match self.run_transient_batched_in(&mut arena, spec, dog) {
                        Some((r, _)) => r,
                        None => self.run_spec_in(&mut arena, spec),
                    };
                    out.push((i, r));
                } else if self.trajectory().usable
                    && spec.start >= self.injection_cycle()
                    && spec.validate().is_ok()
                {
                    probe_group.push((i, spec));
                    if probe_group.len() == PROBE_LANES {
                        self.run_probe_group(&mut arena, &probe_group, &mut out);
                        probe_group.clear();
                    }
                } else {
                    out.push((i, self.run_spec_in(&mut arena, spec)));
                }
            }
            if !probe_group.is_empty() {
                self.run_probe_group(&mut arena, &probe_group, &mut out);
            }
            out
        };
        let mut tagged: Vec<(usize, RunResult)> = Vec::with_capacity(specs.len());
        if threads <= 1 || specs.len() < 2 {
            tagged = run_share(&mut specs.iter().copied().enumerate());
        } else {
            let workers = threads.min(specs.len());
            let run_share = &run_share;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        scope.spawn(move || {
                            // Round-robin sharding: worker `w` takes specs
                            // w, w+workers, w+2·workers, … Results carry
                            // their input index, so reassembly is in input
                            // order and bit-identical for any worker count.
                            run_share(
                                &mut specs.iter().copied().enumerate().skip(w).step_by(workers),
                            )
                        })
                    })
                    .collect();
                for h in handles {
                    match h.join() {
                        Ok(part) => tagged.extend(part),
                        // This is the fail-fast path: a rollout panic
                        // propagates, exactly like `run_many`'s.
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
            });
        }
        // Probe grouping and round-robin sharding both permute completion
        // order; the input index restores it.
        tagged.sort_unstable_by_key(|&(i, _)| i);
        tagged.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignConfig;
    use noc_types::NocConfig;

    fn small_campaign() -> Campaign {
        let mut noc = NocConfig::small_test();
        noc.injection_rate = 0.08;
        Campaign::new(CampaignConfig {
            noc,
            warmup: 300,
            active_window: 400,
            drain_deadline: 10_000,
            forever_epoch: 300,
        })
    }

    const INFINITE: Watchdog = Watchdog {
        cycle_budget: u64::MAX,
        stall_window: u64::MAX,
    };

    /// The differential sweep pinning the engine: every fault class at
    /// rotating injection offsets over stride-sampled sites, batched vs
    /// scalar, byte-identical `RunResult`s.
    #[test]
    fn differential_sweep_matches_scalar_across_fault_classes() {
        let c = small_campaign();
        let inj = c.injection_cycle();
        let sites = fault::sample::stride(&fault::enumerate_sites(&c.cc.noc), 8);
        let kinds = [
            FaultKind::Transient,
            FaultKind::Permanent,
            FaultKind::StuckAt0,
            FaultKind::StuckAt1,
            FaultKind::Intermittent { period: 7, duty: 3 },
        ];
        let starts = [inj, inj + 199, inj + c.cc.active_window - 1];
        let mut specs = Vec::new();
        for (i, &site) in sites.iter().enumerate() {
            // Rotate starts against kinds so every class appears at every
            // offset across the sweep without a full cross product.
            for (j, &kind) in kinds.iter().enumerate() {
                specs.push(FaultSpec {
                    site,
                    kind,
                    start: starts[(i + j) % starts.len()],
                });
            }
        }
        let batched = c.run_specs_batched(&specs, 1);
        assert_eq!(batched.len(), specs.len());
        let mut arena = c.arena();
        for (spec, got) in specs.iter().zip(&batched) {
            assert_eq!(*got, c.run_spec_in(&mut arena, *spec), "{spec:?}");
        }
    }

    /// Beyond the `RunResult`: a batched transient leaves the *entire*
    /// detector state — assertion-event streams, counts, ForEVeR
    /// bookkeeping, run log — identical to the scalar rollout's.
    #[test]
    fn batched_transient_replay_leaves_identical_detector_state() {
        let c = small_campaign();
        let inj = c.injection_cycle();
        let sites = fault::sample::stride(&fault::enumerate_sites(&c.cc.noc), 5);
        let mut scalar = c.arena();
        let mut batched = c.arena();
        for (i, &site) in sites.iter().enumerate() {
            let start = inj + (i as Cycle * 37) % c.cc.active_window;
            let spec = FaultSpec::transient(site, start);
            let (want, want_hang) = c.run_spec_watched_in(&mut scalar, spec, INFINITE);
            let Some((got, got_hang)) = c.run_transient_batched_in(&mut batched, spec, INFINITE)
            else {
                panic!("engine must accept an in-window transient under an infinite watchdog");
            };
            assert_eq!(got, want, "{spec:?}");
            assert_eq!(got_hang, want_hang);
            assert!(batched.bank.state_eq(&scalar.bank), "{spec:?}");
            assert_eq!(batched.bank.assertions(), scalar.bank.assertions());
            assert!(batched.forever.state_eq(&scalar.forever), "{spec:?}");
            assert_eq!(batched.log, scalar.log, "{spec:?}");
        }
    }

    /// Probe demux: more sustained lanes than one 64-lane batch,
    /// interleaved with transients, must come back in input order and
    /// per-spec bit-identical to the scalar path — for any thread count.
    #[test]
    fn probe_demux_restores_input_order_across_lane_boundaries() {
        let c = small_campaign();
        let inj = c.injection_cycle();
        let sites = fault::enumerate_sites(&c.cc.noc);
        let mut specs = Vec::new();
        for i in 0..70usize {
            let site = sites[(i * 97) % sites.len()];
            specs.push(FaultSpec {
                site,
                kind: FaultKind::StuckAt1,
                start: inj + (i as Cycle % 50),
            });
            if i % 7 == 0 {
                specs.push(FaultSpec::transient(site, inj + i as Cycle));
            }
        }
        let seq = c.run_specs_batched(&specs, 1);
        let par = c.run_specs_batched(&specs, 3);
        assert_eq!(seq, par, "probe batching must be thread-invariant");
        assert_eq!(seq.len(), specs.len());
        let mut arena = c.arena();
        for (spec, got) in specs.iter().zip(&seq) {
            assert_eq!(*got, c.run_spec_in(&mut arena, *spec), "{spec:?}");
        }
    }

    /// The engine declines — rather than approximates — everything its
    /// equivalence proof does not cover.
    #[test]
    fn engine_declines_outside_its_proof() {
        let c = small_campaign();
        let inj = c.injection_cycle();
        let mut arena = c.arena();
        let site = fault::enumerate_sites(&c.cc.noc)[0];
        // Injection at/past the golden horizon: the fault could first
        // fire after the cached trajectory ends.
        let late = FaultSpec::transient(site, inj + c.cc.active_window);
        assert!(c
            .run_transient_batched_in(&mut arena, late, INFINITE)
            .is_none());
        // Injection before the snapshot.
        let early = FaultSpec::transient(site, inj - 1);
        assert!(c
            .run_transient_batched_in(&mut arena, early, INFINITE)
            .is_none());
        // Sustained kinds belong to the probe path, not the resync ladder.
        let perm = FaultSpec::permanent(site, inj);
        assert!(c
            .run_transient_batched_in(&mut arena, perm, INFINITE)
            .is_none());
        // A cycle budget shorter than the golden schedule could trip
        // mid-run, which replay cannot reproduce.
        let tight = Watchdog {
            cycle_budget: 50,
            stall_window: u64::MAX,
        };
        let spec = FaultSpec::transient(site, inj);
        assert!(c
            .run_transient_batched_in(&mut arena, spec, tight)
            .is_none());
        // A stall window at or below the golden drain's own longest lull
        // could trip on a converged lane.
        let twitchy = Watchdog {
            cycle_budget: u64::MAX,
            stall_window: c.trajectory().max_stall,
        };
        assert!(c
            .run_transient_batched_in(&mut arena, spec, twitchy)
            .is_none());
    }

    /// The trajectory cache itself: ladder cycles are the documented
    /// geometric schedule and the certificate holds on a clean campaign.
    #[test]
    fn trajectory_ladder_follows_the_geometric_schedule() {
        let c = small_campaign();
        let traj = c.trajectory();
        assert!(traj.usable);
        assert!(traj.drained);
        let inj = c.injection_cycle();
        let mut expect = Vec::new();
        let mut k = 1u64;
        while k < c.cc.active_window {
            expect.push(inj + k);
            k *= 2;
        }
        expect.push(inj + c.cc.active_window);
        let got: Vec<Cycle> = traj.ladder.iter().map(|n| n.cycle()).collect();
        assert_eq!(got, expect);
        assert!(traj.end_cycle >= inj + c.cc.active_window);
    }
}
