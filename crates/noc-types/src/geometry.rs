//! Mesh geometry: coordinates, node identifiers and router port directions.
//!
//! The paper evaluates an 8×8 2D mesh of 64 nodes, each node hosting one
//! five-port router (four cardinal ports plus a local port toward the
//! processing element). Everything here generalizes to arbitrary `w×h`
//! meshes so tests can use small 2×2 and 4×4 networks.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the five ports of a canonical 2D-mesh router.
///
/// The numeric encoding (`North = 0` … `Local = 4`) is load-bearing: the
/// Routing Computation unit emits the direction as a **3-bit field**, so a
/// single-bit fault can turn a legal direction into the illegal encodings
/// 5, 6 or 7 — exactly the "invalid RC output direction" scenario of
/// invariance 2 in Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Direction {
    /// Toward the router at `(x, y+1)`.
    North = 0,
    /// Toward the router at `(x+1, y)`.
    East = 1,
    /// Toward the router at `(x, y-1)`.
    South = 2,
    /// Toward the router at `(x-1, y)`.
    West = 3,
    /// Toward the local processing element (injection/ejection).
    Local = 4,
}

impl Direction {
    /// All five directions in encoding order.
    pub const ALL: [Direction; 5] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
        Direction::Local,
    ];

    /// Number of ports of a full (interior) router.
    pub const COUNT: usize = 5;

    /// Decodes a 3-bit wire value into a direction.
    ///
    /// Returns `None` for the illegal encodings `5..=7` — the caller (router
    /// logic as well as checkers) must decide what a hardware decoder would
    /// do with such a value.
    #[inline]
    pub fn from_bits(bits: u64) -> Option<Direction> {
        match bits {
            0 => Some(Direction::North),
            1 => Some(Direction::East),
            2 => Some(Direction::South),
            3 => Some(Direction::West),
            4 => Some(Direction::Local),
            _ => None,
        }
    }

    /// The 3-bit wire encoding of this direction.
    #[inline]
    pub fn bits(self) -> u64 {
        self as u64
    }

    /// Index usable for per-port arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The direction a flit *arrives from* when it was sent *toward* `self`.
    ///
    /// Sending North means arriving at the neighbour's South port, and so on.
    /// `Local.opposite()` is `Local`: a flit injected by the local PE arrives
    /// on the local input port.
    #[inline]
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
            Direction::Local => Direction::Local,
        }
    }

    /// True for the four mesh-facing directions (everything except `Local`).
    #[inline]
    pub fn is_cardinal(self) -> bool {
        !matches!(self, Direction::Local)
    }

    /// True if the direction moves along the X dimension (East/West).
    #[inline]
    pub fn is_x(self) -> bool {
        matches!(self, Direction::East | Direction::West)
    }

    /// True if the direction moves along the Y dimension (North/South).
    #[inline]
    pub fn is_y(self) -> bool {
        matches!(self, Direction::North | Direction::South)
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::East => "E",
            Direction::South => "S",
            Direction::West => "W",
            Direction::Local => "L",
        };
        f.write_str(s)
    }
}

/// A position in the mesh, `x` growing eastward and `y` growing northward.
///
/// The origin `(0, 0)` is the south-west (bottom-left) corner, matching the
/// Cartesian convention of Figure 2(a) in the paper.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Coord {
    /// Column (0-based, west to east).
    pub x: u8,
    /// Row (0-based, south to north).
    pub y: u8,
}

impl Coord {
    /// Creates a coordinate.
    #[inline]
    pub fn new(x: u8, y: u8) -> Coord {
        Coord { x, y }
    }

    /// Manhattan distance to another coordinate — the minimal hop count.
    #[inline]
    pub fn manhattan(self, other: Coord) -> u32 {
        (self.x.abs_diff(other.x) as u32) + (self.y.abs_diff(other.y) as u32)
    }

    /// The neighbouring coordinate in `dir`, if it stays within a `w×h` mesh.
    pub fn step(self, dir: Direction, w: u8, h: u8) -> Option<Coord> {
        match dir {
            Direction::North if self.y + 1 < h => Some(Coord::new(self.x, self.y + 1)),
            Direction::East if self.x + 1 < w => Some(Coord::new(self.x + 1, self.y)),
            Direction::South if self.y > 0 => Some(Coord::new(self.x, self.y - 1)),
            Direction::West if self.x > 0 => Some(Coord::new(self.x - 1, self.y)),
            _ => None,
        }
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// Dense node identifier: `id = y * width + x`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The raw index, usable into per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A `width × height` 2D mesh: the topology substrate of the evaluation.
///
/// # Example
///
/// ```
/// use noc_types::geometry::{Coord, Direction, Mesh};
///
/// let mesh = Mesh::new(4, 4);
/// assert_eq!(mesh.len(), 16);
/// // The south-west corner has no South or West neighbour.
/// let corner = mesh.node(Coord::new(0, 0));
/// assert!(mesh.neighbor(corner, Direction::South).is_none());
/// assert!(mesh.neighbor(corner, Direction::East).is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mesh {
    width: u8,
    height: u8,
}

impl Mesh {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the mesh exceeds `u16` nodes.
    pub fn new(width: u8, height: u8) -> Mesh {
        assert!(width > 0 && height > 0, "mesh dimensions must be non-zero");
        assert!(
            (width as u32) * (height as u32) <= u16::MAX as u32,
            "mesh too large for NodeId"
        );
        Mesh { width, height }
    }

    /// Mesh width (columns).
    #[inline]
    pub fn width(self) -> u8 {
        self.width
    }

    /// Mesh height (rows).
    #[inline]
    pub fn height(self) -> u8 {
        self.height
    }

    /// Total number of nodes.
    #[inline]
    pub fn len(self) -> usize {
        self.width as usize * self.height as usize
    }

    /// True only for a degenerate mesh — kept for `len`/`is_empty` symmetry.
    #[inline]
    pub fn is_empty(self) -> bool {
        false
    }

    /// The node at a coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate lies outside the mesh.
    #[inline]
    pub fn node(self, c: Coord) -> NodeId {
        assert!(c.x < self.width && c.y < self.height, "coord out of mesh");
        NodeId(c.y as u16 * self.width as u16 + c.x as u16)
    }

    /// The coordinate of a node.
    #[inline]
    pub fn coord(self, n: NodeId) -> Coord {
        Coord::new(
            (n.0 % self.width as u16) as u8,
            (n.0 / self.width as u16) as u8,
        )
    }

    /// The neighbour of `n` in direction `dir`, or `None` at a mesh edge
    /// (and always `None` for `Local`).
    pub fn neighbor(self, n: NodeId, dir: Direction) -> Option<NodeId> {
        if !dir.is_cardinal() {
            return None;
        }
        self.coord(n)
            .step(dir, self.width, self.height)
            .map(|c| self.node(c))
    }

    /// Whether the router at `n` has a live link in direction `dir`.
    ///
    /// `Local` is always live; cardinal directions are live unless they point
    /// off the mesh edge. Edge and corner routers therefore have 4 and 3 live
    /// ports — which is why the paper counts 11,808 fault sites in an 8×8
    /// mesh rather than `64 ×` the interior-router count.
    #[inline]
    pub fn port_live(self, n: NodeId, dir: Direction) -> bool {
        !dir.is_cardinal() || self.neighbor(n, dir).is_some()
    }

    /// Iterates over all node ids.
    pub fn nodes(self) -> impl Iterator<Item = NodeId> {
        (0..self.len() as u16).map(NodeId)
    }

    /// Manhattan distance between two nodes.
    #[inline]
    pub fn distance(self, a: NodeId, b: NodeId) -> u32 {
        self.coord(a).manhattan(self.coord(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_roundtrip() {
        for d in Direction::ALL {
            assert_eq!(Direction::from_bits(d.bits()), Some(d));
        }
        for illegal in 5..8 {
            assert_eq!(Direction::from_bits(illegal), None);
        }
    }

    #[test]
    fn direction_opposites() {
        assert_eq!(Direction::North.opposite(), Direction::South);
        assert_eq!(Direction::East.opposite(), Direction::West);
        assert_eq!(Direction::Local.opposite(), Direction::Local);
        for d in Direction::ALL {
            if d.is_cardinal() {
                assert_eq!(d.opposite().opposite(), d);
                assert_ne!(d.opposite(), d);
            }
        }
    }

    #[test]
    fn direction_axes() {
        assert!(Direction::East.is_x() && Direction::West.is_x());
        assert!(Direction::North.is_y() && Direction::South.is_y());
        assert!(!Direction::Local.is_x() && !Direction::Local.is_y());
    }

    #[test]
    fn mesh_node_coord_roundtrip() {
        let mesh = Mesh::new(8, 8);
        for n in mesh.nodes() {
            assert_eq!(mesh.node(mesh.coord(n)), n);
        }
    }

    #[test]
    fn mesh_neighbors() {
        let mesh = Mesh::new(4, 4);
        let c = mesh.node(Coord::new(1, 1));
        assert_eq!(
            mesh.neighbor(c, Direction::North),
            Some(mesh.node(Coord::new(1, 2)))
        );
        assert_eq!(
            mesh.neighbor(c, Direction::East),
            Some(mesh.node(Coord::new(2, 1)))
        );
        assert_eq!(
            mesh.neighbor(c, Direction::South),
            Some(mesh.node(Coord::new(1, 0)))
        );
        assert_eq!(
            mesh.neighbor(c, Direction::West),
            Some(mesh.node(Coord::new(0, 1)))
        );
        assert_eq!(mesh.neighbor(c, Direction::Local), None);
    }

    #[test]
    fn mesh_edges_have_dead_ports() {
        let mesh = Mesh::new(8, 8);
        let sw = mesh.node(Coord::new(0, 0));
        assert!(!mesh.port_live(sw, Direction::South));
        assert!(!mesh.port_live(sw, Direction::West));
        assert!(mesh.port_live(sw, Direction::North));
        assert!(mesh.port_live(sw, Direction::East));
        assert!(mesh.port_live(sw, Direction::Local));

        let ne = mesh.node(Coord::new(7, 7));
        assert!(!mesh.port_live(ne, Direction::North));
        assert!(!mesh.port_live(ne, Direction::East));
    }

    #[test]
    fn live_port_census_8x8() {
        // 4 corners with 3 ports, 24 edges with 4, 36 interior with 5,
        // plus the local port everywhere.
        let mesh = Mesh::new(8, 8);
        let mut cardinal_live = 0;
        for n in mesh.nodes() {
            for d in Direction::ALL {
                if d.is_cardinal() && mesh.port_live(n, d) {
                    cardinal_live += 1;
                }
            }
        }
        // Each internal mesh link contributes 2 live cardinal ports:
        // 2 * (7*8 + 8*7) = 224.
        assert_eq!(cardinal_live, 224);
    }

    #[test]
    fn manhattan_distance() {
        let mesh = Mesh::new(8, 8);
        let a = mesh.node(Coord::new(0, 0));
        let b = mesh.node(Coord::new(7, 7));
        assert_eq!(mesh.distance(a, b), 14);
        assert_eq!(mesh.distance(a, a), 0);
    }

    #[test]
    #[should_panic(expected = "coord out of mesh")]
    fn node_out_of_mesh_panics() {
        Mesh::new(2, 2).node(Coord::new(2, 0));
    }
}
