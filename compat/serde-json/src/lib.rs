//! Offline stand-in for `serde_json`: the three entry points this
//! workspace uses (`to_string`, `to_string_pretty`, `from_str`) plus
//! `to_value`/`from_value`, all built on the `serde` shim's [`Value`]
//! document tree. Checkpoint shards and result dumps are written and
//! re-read exclusively through this module, so write/parse round-trip
//! fidelity is covered by its tests and by the campaign resilience
//! integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde::Value;

use std::fmt;

/// A serialization or deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// Always succeeds for this shim (the `Result` mirrors the upstream
/// signature so call sites read identically).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().write_json(&mut out);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().write_json_pretty(&mut out);
    Ok(out)
}

/// Parses a value from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let doc = Value::parse_json(s)?;
    Ok(T::from_value(&doc)?)
}

/// Converts a serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds a value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(v: &Value) -> Result<T, Error> {
    Ok(T::from_value(v)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Point {
        x: u32,
        y: u32,
        label: Option<String>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Shape {
        Dot,
        Circle(u32),
        Rect { w: u32, h: u32 },
        Pair(u8, u8),
    }

    #[test]
    fn derived_struct_roundtrip() {
        let p = Point {
            x: 3,
            y: 4,
            label: Some("origin-ish".into()),
        };
        let s = to_string(&p).unwrap();
        assert_eq!(from_str::<Point>(&s).unwrap(), p);
        // Option field tolerates omission.
        let q: Point = from_str(r#"{"x":1,"y":2}"#).unwrap();
        assert_eq!(q.label, None);
    }

    #[test]
    fn derived_enum_roundtrip() {
        for shape in [
            Shape::Dot,
            Shape::Circle(9),
            Shape::Rect { w: 2, h: 5 },
            Shape::Pair(1, 2),
        ] {
            let s = to_string(&shape).unwrap();
            assert_eq!(from_str::<Shape>(&s).unwrap(), shape, "json: {s}");
        }
        assert_eq!(to_string(&Shape::Dot).unwrap(), "\"Dot\"");
        assert_eq!(to_string(&Shape::Circle(9)).unwrap(), "{\"Circle\":9}");
    }

    #[test]
    fn pretty_output_reparses() {
        let p = Point {
            x: 10,
            y: 20,
            label: None,
        };
        let s = to_string_pretty(&p).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Point>(&s).unwrap(), p);
    }

    #[test]
    fn unknown_variant_is_an_error() {
        assert!(from_str::<Shape>("\"Pentagon\"").is_err());
        assert!(from_str::<Shape>("{\"Pentagon\":1}").is_err());
    }

    #[test]
    fn vec_of_structs_roundtrip() {
        let v = vec![
            Point {
                x: 1,
                y: 2,
                label: None,
            },
            Point {
                x: 3,
                y: 4,
                label: Some("b".into()),
            },
        ];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Point>>(&s).unwrap(), v);
    }
}
