//! The campaign-service job and incident schema (DESIGN.md §15).
//!
//! `nocalertd` accepts campaign work over HTTP as a [`JobSpec`], tracks
//! it through the [`JobState`] lifecycle, and streams [`JobEvent`]s
//! (state changes, progress, clustered [`Incident`]s) back to clients.
//! Everything here is plain serializable data with no simulator
//! dependencies: it is the wire contract between the service, its
//! clients, and the durable `job.json`/`result.json` records, so the
//! types live in `noc-types` where both sides can reach them.
//!
//! An [`Incident`] is the service's deduplicated view of one fault
//! site's (or attack cell's) story: the checker firings, the containment
//! actions they triggered, and the delivery outcome, clustered into a
//! single timeline instead of a raw alert firehose. Incidents are
//! emitted in canonical (input-site) order once a job completes, so the
//! event stream for a given spec is bit-identical across runs, worker
//! counts, and kill/resume cycles — the same determinism contract the
//! underlying campaigns honour.

use crate::config::{ConfigError, NocConfig};
use crate::error::SimError;
use crate::Cycle;
use serde::{Deserialize, Serialize};

/// Which campaign family a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobKind {
    /// Transient-fault detection sweep over enumerated sites
    /// (the paper's Section 5.3 campaign).
    Transient,
    /// Closed-loop containment/ARQ recovery sweep over covered sites ×
    /// fault classes.
    Recovery,
    /// Compromised-router attack matrix (DESIGN.md §14).
    Attack,
    /// Accumulating permanent faults over epochs (DESIGN.md §13).
    Aging,
}

/// One campaign job, as submitted to the service.
///
/// The spec pins everything that determines the campaign's results: the
/// network configuration (whose `seed` drives all traffic), the window
/// geometry, and the work-list cap. `threads` only shapes execution —
/// results are bit-identical for any value, which is what makes the
/// service's aggregates comparable to a direct `bench` run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Campaign family.
    pub kind: JobKind,
    /// Network configuration (including traffic seed).
    pub noc: NocConfig,
    /// Fault-free warm-up cycles before the measurement window.
    pub warmup: Cycle,
    /// Active window length: injection window for sweeps, epoch length
    /// for aging.
    pub window: Cycle,
    /// Cap on the work-list (fault sites, attack cells, or aging
    /// epochs). `None` runs the full standard list.
    pub limit: Option<u32>,
    /// Worker threads the service shards the campaign across.
    pub threads: u32,
}

impl JobSpec {
    /// Validates the spec: the network configuration must be
    /// self-consistent, the window non-degenerate, and at least one
    /// worker requested.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] naming the offending field.
    pub fn validate(&self) -> Result<(), SimError> {
        self.noc.validate()?;
        if self.window == 0 {
            return Err(SimError::Config(ConfigError::new(
                "job window must be at least 1 cycle",
            )));
        }
        if self.threads == 0 {
            return Err(SimError::Config(ConfigError::new(
                "job threads must be at least 1",
            )));
        }
        if self.limit == Some(0) {
            return Err(SimError::Config(ConfigError::new(
                "a zero-site job is vacuous; omit the limit to run the full list",
            )));
        }
        Ok(())
    }
}

/// Lifecycle of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Accepted, waiting for a worker slot.
    Queued,
    /// A worker is executing the campaign.
    Running,
    /// Finished; `result.json` holds the [`JobResult`].
    Completed,
    /// The campaign returned a structured error (recorded verbatim).
    Failed,
    /// Cancelled by a client; partial shards remain for resume.
    Cancelled,
}

impl JobState {
    /// True for states no worker will advance further.
    pub fn terminal(&self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Failed | JobState::Cancelled
        )
    }
}

/// One containment action inside an incident timeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContainmentStep {
    /// Cycle the action was applied.
    pub cycle: Cycle,
    /// Router whose input VC was targeted.
    pub router: u16,
    /// Input port of the targeted VC.
    pub port: u8,
    /// The targeted VC.
    pub vc: u8,
    /// Escalation level applied (`"Squash"` / `"Reset"` / `"Disable"`).
    pub action: String,
    /// Flits destroyed by the action.
    pub flits_dropped: u32,
}

/// One clustered incident: a fault site's (or attack cell's) full story
/// from first checker firing to delivery outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Incident {
    /// Position in the job's canonical (input-order) incident list.
    pub id: u32,
    /// Human-readable subject: the fault site or attack cell.
    pub subject: String,
    /// Cycle of the first evidence (checker firing or suspicion), when
    /// any fired.
    pub first_cycle: Option<Cycle>,
    /// Final cycle of the rollout.
    pub last_cycle: Cycle,
    /// Distinct checker ids that fired, ascending (deduped from the raw
    /// alert stream).
    pub checkers: Vec<u8>,
    /// Total checker-bank assertions behind those firings.
    pub alerts: u64,
    /// Containment actions, in application order.
    pub containment: Vec<ContainmentStep>,
    /// Delivery/outcome verdict rendering (e.g. `"ExactlyOnce"`,
    /// `"detected latency=3"`, an attack class).
    pub delivery: String,
}

/// Aggregated result of a completed job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// FNV-1a digest (hex) over the canonical serialization of every
    /// per-site report, in input order — the bit-identity comparator
    /// between service runs and direct `bench` runs.
    pub digest: String,
    /// One-line human summary of the campaign aggregate.
    pub summary: String,
    /// Clustered incidents in canonical order.
    pub incidents: Vec<Incident>,
    /// Sites/cells restored from checkpoint shards instead of re-run.
    pub resumed: u32,
    /// True when cancellation stopped the sweep before every site ran.
    pub interrupted: bool,
}

/// One event on a job's progress/alert feed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobEvent {
    /// The job entered a new lifecycle state.
    State(JobState),
    /// Sites/cells completed so far out of the job's work-list.
    Progress {
        /// Completed units.
        done: u32,
        /// Total units in the work-list.
        total: u32,
    },
    /// A clustered incident (emitted in canonical order at completion).
    Incident(Incident),
}

/// A job's queryable status, as served by `GET /jobs/<id>`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStatus {
    /// Service-assigned job id.
    pub id: String,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// Error detail when `state` is [`JobState::Failed`].
    pub error: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            kind: JobKind::Recovery,
            noc: NocConfig::small_test(),
            warmup: 200,
            window: 1_000,
            limit: Some(4),
            threads: 2,
        }
    }

    #[test]
    fn spec_round_trips_through_json() {
        let s = spec();
        let text = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<JobSpec>(&text).unwrap(), s);
    }

    #[test]
    fn validate_rejects_degenerate_specs() {
        assert!(spec().validate().is_ok());
        let mut bad = spec();
        bad.window = 0;
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.threads = 0;
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.limit = Some(0);
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.noc.vcs_per_port = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn events_and_results_round_trip() {
        let incident = Incident {
            id: 0,
            subject: "router 5 port 2 vc 1".into(),
            first_cycle: Some(310),
            last_cycle: 2_000,
            checkers: vec![3, 17],
            alerts: 9,
            containment: vec![ContainmentStep {
                cycle: 315,
                router: 5,
                port: 2,
                vc: 1,
                action: "Squash".into(),
                flits_dropped: 2,
            }],
            delivery: "ExactlyOnce".into(),
        };
        for ev in [
            JobEvent::State(JobState::Running),
            JobEvent::Progress { done: 3, total: 8 },
            JobEvent::Incident(incident.clone()),
        ] {
            let text = serde_json::to_string(&ev).unwrap();
            assert_eq!(serde_json::from_str::<JobEvent>(&text).unwrap(), ev);
        }
        let result = JobResult {
            digest: "deadbeef".into(),
            summary: "4 sites, all detected".into(),
            incidents: vec![incident],
            resumed: 0,
            interrupted: false,
        };
        let text = serde_json::to_string(&result).unwrap();
        assert_eq!(serde_json::from_str::<JobResult>(&text).unwrap(), result);
    }

    #[test]
    fn terminal_states() {
        assert!(!JobState::Queued.terminal());
        assert!(!JobState::Running.terminal());
        assert!(JobState::Completed.terminal());
        assert!(JobState::Failed.terminal());
        assert!(JobState::Cancelled.terminal());
    }
}
