//! Campaign checkpointing: incremental JSONL shards + resume.
//!
//! Layout of a checkpoint directory:
//!
//! * `meta.json` — `{ "version": 1, "config": <CampaignConfig> }`,
//!   written once at creation. Resume refuses a directory whose config
//!   differs from the running campaign's (mixing would corrupt
//!   aggregates).
//! * `shard-w<worker>.jsonl` — one line per completed fault site, each a
//!   serialized [`SiteReport`], appended and flushed as soon as the site
//!   finishes. Workers write disjoint files, so no locking is needed.
//!
//! The durability semantics (kill-safety, torn-tail repair, mid-shard
//! refusal) live in the shared [`super::jsonl`] substrate; this module
//! is the [`SiteReport`]-typed view over it. Which shard a report lands
//! in depends on worker count, but aggregation reassembles reports in
//! input-site order, so shard layout never affects results.

use super::error::CampaignError;
use super::jsonl::{self, Appender};
use super::outcome::SiteReport;
use super::CampaignConfig;
use std::path::{Path, PathBuf};

/// An open checkpoint directory.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    dir: PathBuf,
}

impl Checkpoint {
    /// Opens (creating if needed) a checkpoint directory for a campaign.
    ///
    /// A fresh directory gets a `meta.json` recording `cc`. An existing
    /// one must carry a matching config.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Checkpoint`] on I/O or parse failures,
    /// [`CampaignError::CheckpointMismatch`] when the directory belongs
    /// to a different campaign configuration.
    pub fn open(dir: impl Into<PathBuf>, cc: &CampaignConfig) -> Result<Checkpoint, CampaignError> {
        let dir = dir.into();
        jsonl::ensure_meta(&dir, 1, cc)?;
        Ok(Checkpoint { dir })
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Loads every complete report from every shard, in shard name +
    /// line order. A torn trailing line (no final newline — a mid-write
    /// kill) is skipped and counted by the second element; duplicate
    /// specs are the caller's concern (keep the last).
    ///
    /// # Errors
    ///
    /// [`CampaignError::ShardCorrupt`] when a line *inside* the
    /// complete, newline-terminated prefix fails to parse: that is file
    /// damage, not a kill signature, and silently dropping it would also
    /// drop every row after it from the resumed campaign.
    pub fn load_reports(&self) -> Result<(Vec<SiteReport>, usize), CampaignError> {
        jsonl::load_shards(&self.dir)
    }

    /// Opens this worker's shard for appending. A torn trailing line
    /// from a previous killed run is truncated away first: the in-flight
    /// site re-runs anyway, and newline-terminating the fragment instead
    /// would leave a complete-but-unparseable line that a later load
    /// rightly refuses as mid-shard corruption.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Checkpoint`] on I/O failures.
    pub fn shard_writer(&self, worker: usize) -> Result<ShardWriter, CampaignError> {
        Ok(ShardWriter {
            inner: Appender::open_shard(&self.dir, worker)?,
        })
    }
}

/// Append handle for one worker's shard.
#[derive(Debug)]
pub struct ShardWriter {
    inner: Appender,
}

impl ShardWriter {
    /// Appends one report as a single JSONL line and flushes it to the OS
    /// immediately — the checkpoint's kill-safety granularity.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Checkpoint`] on serialization or I/O failures.
    pub fn append(&mut self, report: &SiteReport) -> Result<(), CampaignError> {
        self.inner.append(report)
    }
}

#[cfg(test)]
mod tests {
    use super::super::outcome::{Determinism, RunOutcome};
    use super::*;
    use fault::FaultSpec;
    use noc_types::site::{SignalKind, SiteRef};
    use noc_types::NocConfig;
    use std::fs::{self, OpenOptions};
    use std::io::Write;

    fn cc() -> CampaignConfig {
        CampaignConfig {
            noc: NocConfig::small_test(),
            warmup: 10,
            active_window: 20,
            drain_deadline: 100,
            forever_epoch: 50,
        }
    }

    fn report(router: u16) -> SiteReport {
        let site = SiteRef {
            router,
            port: 0,
            vc: 0,
            signal: SignalKind::Sa1Req,
            bit: 0,
        };
        SiteReport {
            spec: FaultSpec::transient(site, 10),
            outcome: RunOutcome::Crashed {
                site,
                kind: noc_types::FaultKind::Transient,
                injected_at: 10,
                payload: "x".into(),
            },
            determinism: Some(Determinism::Confirmed),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("nocalert-ck-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn roundtrip_and_shard_ordering_independence() {
        let dir = tmpdir("rt");
        let ck = Checkpoint::open(&dir, &cc()).unwrap();
        let mut w0 = ck.shard_writer(0).unwrap();
        let mut w1 = ck.shard_writer(1).unwrap();
        w1.append(&report(3)).unwrap();
        w0.append(&report(1)).unwrap();
        w0.append(&report(2)).unwrap();
        let (reports, corrupt) = ck.load_reports().unwrap();
        assert_eq!(corrupt, 0);
        let mut routers: Vec<u16> = reports.iter().map(|r| r.spec.site.router).collect();
        routers.sort_unstable();
        assert_eq!(routers, vec![1, 2, 3]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn config_mismatch_is_rejected() {
        let dir = tmpdir("mismatch");
        Checkpoint::open(&dir, &cc()).unwrap();
        let mut other = cc();
        other.warmup = 999;
        let err = Checkpoint::open(&dir, &other).unwrap_err();
        assert!(matches!(err, CampaignError::CheckpointMismatch { .. }));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_trailing_line_is_skipped_and_repaired() {
        let dir = tmpdir("torn");
        let ck = Checkpoint::open(&dir, &cc()).unwrap();
        let mut w = ck.shard_writer(0).unwrap();
        w.append(&report(1)).unwrap();
        drop(w);
        // Simulate a kill mid-write: a truncated JSON fragment, no newline.
        let shard = dir.join("shard-w0.jsonl");
        let mut f = OpenOptions::new().append(true).open(&shard).unwrap();
        f.write_all(b"{\"spec\":{\"si").unwrap();
        drop(f);
        let (reports, corrupt) = ck.load_reports().unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(corrupt, 1);
        // Re-opening the shard writer truncates the torn tail; the next
        // append parses cleanly and the fragment is gone for good.
        let mut w = ck.shard_writer(0).unwrap();
        w.append(&report(2)).unwrap();
        let (reports, corrupt) = ck.load_reports().unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(corrupt, 0, "the repaired shard is pristine");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_shard_corruption_is_refused_not_shrunk() {
        let dir = tmpdir("poison");
        let ck = Checkpoint::open(&dir, &cc()).unwrap();
        let mut w = ck.shard_writer(0).unwrap();
        w.append(&report(1)).unwrap();
        drop(w);
        // Poison a complete (newline-terminated) line mid-shard, then
        // append a perfectly good report after it. Resuming must refuse
        // with the shard and line pinpointed — not load report 1, drop
        // the poison, and quietly forget report 2 ever ran.
        let shard = dir.join("shard-w0.jsonl");
        let mut f = OpenOptions::new().append(true).open(&shard).unwrap();
        f.write_all(b"{\"spec\": 12 garbage}\n").unwrap();
        drop(f);
        let mut w = ck.shard_writer(0).unwrap();
        w.append(&report(2)).unwrap();
        drop(w);
        let err = ck.load_reports().unwrap_err();
        match err {
            CampaignError::ShardCorrupt { path, line, .. } => {
                assert_eq!(path, shard);
                assert_eq!(line, 2, "poison sits on the second line");
            }
            other => panic!("expected ShardCorrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
