//! Degraded-topology liveness: the sim-level half of the fault-region
//! guarantees (the static half is `noc-lint`'s exhaustive prover).
//!
//! * With any single link severed on the canonical small mesh, every
//!   (src, dest) pair still delivers exactly once through the live
//!   network — not just on the routing tables, but through the full
//!   pipeline, flow control and ARQ transport.
//! * A deliberately partitioning cut is classified as
//!   [`RecoveryOutcome::Partitioned`], never as a hang: splitting the
//!   mesh is a topology fact, not a routing failure.

use noc_sim::{ArqConfig, Network, Transport};
use noc_types::site::SignalKind;
use noc_types::{Coord, Direction, FaultKind, NocConfig, RoutingAlgorithm, SiteRef};
use nocalert::AlertBank;
use nocalert_golden::{
    verify_delivery, DeliveryVerdict, RecoveryHarness, RecoveryOptions, RecoveryOutcome,
};

/// 4×4 fault-region mesh with manual-injection-only traffic.
fn region_cfg() -> NocConfig {
    let mut cfg = NocConfig::small_test();
    cfg.routing = RoutingAlgorithm::FaultRegion;
    cfg.vcs_per_port = 1;
    cfg.message_classes = 1;
    cfg.packet_lengths = vec![5];
    cfg.injection_rate = 0.0;
    cfg
}

/// Steps the closed net+transport loop until both are quiet or `budget`
/// cycles pass; returns true when quiescent.
fn settle(net: &mut Network, t: &mut Transport, budget: u64) -> bool {
    for _ in 0..budget {
        if t.quiescent() && net.is_drained() {
            return true;
        }
        net.step_observed(t);
        t.post_step(net);
    }
    t.quiescent() && net.is_drained()
}

#[test]
fn all_pairs_deliver_exactly_once_under_each_single_severed_link() {
    let cfg = region_cfg();
    let mesh = cfg.mesh;
    // Every interior link once (East and North cover both directions of
    // every edge, since severing is bidirectional).
    let mut links = Vec::new();
    for n in mesh.nodes() {
        for dir in [Direction::East, Direction::North] {
            if mesh.neighbor(n, dir).is_some() {
                links.push((n.0, dir));
            }
        }
    }
    assert_eq!(links.len(), 24, "4x4 has 24 mesh links");

    for (router, dir) in links {
        let mut net = Network::new(cfg.clone());
        let mut t = Transport::new(&cfg, ArqConfig::default_policy());
        assert!(net.sever_link(router, dir), "link ({router}, {dir:?})");
        let map = net.fault_region_map().expect("FaultRegion map engaged");
        assert!(!map.partitioned(), "one link never partitions a mesh");

        let nodes = mesh.len() as u16;
        for src in 0..nodes {
            for dest in 0..nodes {
                if src != dest {
                    net.enqueue_packet(src, dest, 0, 5).expect("valid pair");
                }
            }
        }
        assert!(
            settle(&mut net, &mut t, 120_000),
            "severed ({router}, {dir:?}): network failed to drain"
        );
        assert_eq!(
            verify_delivery(&t),
            DeliveryVerdict::ExactlyOnce,
            "severed ({router}, {dir:?}): {:?}",
            t.stats()
        );
        assert_eq!(t.stats().offered, u64::from(nodes) * (u64::from(nodes) - 1));
    }
}

/// Steps net + bank + transport until quiet (the bank is observational,
/// so quiescence is still the transport's business).
fn settle_with_bank(net: &mut Network, bank: &mut AlertBank, t: &mut Transport, budget: u64) {
    for _ in 0..budget {
        if t.quiescent() && net.is_drained() {
            return;
        }
        net.step_observed(&mut (&mut *bank, &mut *t));
        t.post_step(net);
    }
}

#[test]
fn armed_checkers_raise_nothing_on_fault_free_detours() {
    // The region-aware turn/progress checkers must stay silent across
    // *every* single-severed-link detour topology: all-pairs traffic, a
    // fully armed bank, zero assertions. This is the no-false-positive
    // half of keeping inv1/inv3 armed under degraded routing.
    let cfg = region_cfg();
    let mesh = cfg.mesh;
    for (router, dir) in [(5u16, Direction::East), (9u16, Direction::North)] {
        let mut net = Network::new(cfg.clone());
        let mut bank = AlertBank::new(&cfg);
        let mut t = Transport::new(&cfg, ArqConfig::default_policy());
        assert!(net.sever_link(router, dir));
        let nodes = mesh.len() as u16;
        for src in 0..nodes {
            for dest in 0..nodes {
                if src != dest {
                    net.enqueue_packet(src, dest, 0, 5).expect("valid pair");
                }
            }
        }
        settle_with_bank(&mut net, &mut bank, &mut t, 120_000);
        assert_eq!(verify_delivery(&t), DeliveryVerdict::ExactlyOnce);
        assert!(
            bank.assertions().is_empty(),
            "fault-free detours must not assert ({router}, {dir:?}): {:?}",
            bank.asserted_set()
        );
    }
}

#[test]
fn rc_misroute_inside_detour_topology_is_detected() {
    // The coverage half: with region detours installed, a stuck RC
    // output-direction wire — a genuine misroute on the degraded path —
    // must still fire the (armed, region-aware) turn/progress checkers.
    // Before the fix both were disabled wholesale under FaultRegion and
    // this exact scenario was a silent coverage hole.
    let cfg = region_cfg();
    let mesh = cfg.mesh;
    let mut net = Network::new(cfg.clone());
    let mut bank = AlertBank::new(&cfg);
    let mut t = Transport::new(&cfg, ArqConfig::default_policy());
    assert!(net.sever_link(5, Direction::East));
    // Router 5's East link is dead, so its RC consults the detour tables;
    // stick a direction bit on its Local ingress — freshly injected
    // packets are misrouted at the first hop.
    net.arm_fault(
        SiteRef {
            router: 5,
            port: Direction::Local.index() as u8,
            vc: 0,
            signal: SignalKind::RcOutDir,
            bit: 1,
        },
        FaultKind::StuckAt1,
        0,
    );
    let nodes = mesh.len() as u16;
    for src in 0..nodes {
        for dest in 0..nodes {
            if src != dest {
                net.enqueue_packet(src, dest, 0, 5).expect("valid pair");
            }
        }
    }
    settle_with_bank(&mut net, &mut bank, &mut t, 120_000);
    let fired = bank.asserted_set();
    assert!(
        fired.iter().any(|c| c.0 == 1 || c.0 == 3),
        "a misroute inside the detour topology must fire inv1/inv3: {fired:?}"
    );
}

#[test]
fn partitioning_cut_is_reported_partitioned_never_hung() {
    let mut cfg = region_cfg();
    cfg.injection_rate = 0.02;
    let mesh = cfg.mesh;
    let opts = RecoveryOptions {
        warmup: 200,
        active_window: 1_500,
        ..RecoveryOptions::paper_defaults()
    };
    let harness = RecoveryHarness::try_new(cfg, opts).expect("valid options");
    let run = harness.run_prepared(None, |net| {
        // Sever the full column-1 East boundary: a clean 2-way split.
        for y in 0..mesh.height() {
            let up = mesh.node(Coord::new(1, y));
            assert!(net.sever_link(up.0, Direction::East));
        }
        let map = net.fault_region_map().expect("map engaged");
        assert!(map.partitioned(), "full column cut must partition");
    });
    assert_eq!(
        run.outcome,
        RecoveryOutcome::Partitioned { components: 2 },
        "partition must outrank any hang classification"
    );
    // NIC gating keeps cross-partition traffic off the wire from cycle
    // zero, so the surviving components still deliver exactly once.
    assert_eq!(
        run.verdict,
        DeliveryVerdict::ExactlyOnce,
        "{:?}",
        run.transport
    );
    assert!(run.transport.offered > 0, "intra-component traffic flowed");
}
