//! Pass 1 — checker-coverage / blind-spot analysis.
//!
//! The paper's headline result (0% false negatives for single-bit faults,
//! Table 1) is demonstrated *dynamically* by fault-injection campaigns.
//! This pass proves the static counterpart: it builds the signal graph of
//! one configuration (every live wire bit of every module instance, via
//! `noc_sim::signals`) and intersects it with the machine-readable
//! `observes`/`constrains` sets declared in `nocalert::TABLE1`. A **blind
//! spot** is a live fault site whose signal no policy-enabled checker
//! constrains — a single-bit fault there could escape the checker array
//! without any simulation telling us.
//!
//! The pass also enforces metadata hygiene (every checker must declare a
//! non-empty, module-consistent observation set), which makes the
//! no-redundant-checker property checkable: deleting any one checker's
//! declared sets fails the pass, mirroring the dynamic ablation experiment
//! (E12) that removes one checker and measures the faults that escape.

use crate::diag::{Diagnostic, Pass, Severity};
use noc_sim::signals::enumerate_all_sites;
use noc_types::config::NocConfig;
use noc_types::site::{SignalKind, SiteRef};
use nocalert::{CheckerId, TABLE1};
use serde::Serialize;

/// Editable copy of the per-checker declared signal sets.
///
/// The default is exactly the Table-1 registry; tests (and ablation
/// studies) mutate a copy to prove the analysis notices degraded
/// metadata.
#[derive(Debug, Clone)]
pub struct CheckerModel {
    observes: Vec<Vec<SignalKind>>,
    constrains: Vec<Vec<SignalKind>>,
}

impl CheckerModel {
    /// The declared sets of the in-tree Table-1 registry.
    pub fn from_table1() -> CheckerModel {
        CheckerModel {
            observes: TABLE1.iter().map(|e| e.observes.to_vec()).collect(),
            constrains: TABLE1.iter().map(|e| e.constrains.to_vec()).collect(),
        }
    }

    /// Deletes one checker's declared sets (the ablation the acceptance
    /// criteria require the pass to catch).
    pub fn delete(&mut self, id: CheckerId) {
        self.observes[id.index()].clear();
        self.constrains[id.index()].clear();
    }

    /// The checkers that constrain `sig` and are enabled under `cfg`'s
    /// buffer policy.
    pub fn constrainers(&self, cfg: &NocConfig, sig: SignalKind) -> Vec<CheckerId> {
        CheckerId::all()
            .filter(|c| TABLE1[c.index()].applicability.applies(cfg.buffer_policy))
            .filter(|c| self.constrains[c.index()].contains(&sig))
            .collect()
    }
}

impl Default for CheckerModel {
    fn default() -> CheckerModel {
        CheckerModel::from_table1()
    }
}

/// Summary statistics of one coverage run (part of the JSON report).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CoverageStats {
    /// Live fault sites in the configuration's signal graph.
    pub total_sites: usize,
    /// Sites constrained by at least one enabled checker.
    pub covered_sites: usize,
    /// Sites no enabled checker constrains (must be 0).
    pub uncovered_sites: usize,
    /// Distinct signal kinds with at least one live site.
    pub live_signal_kinds: usize,
    /// Signals guarded by exactly one checker — deleting that checker
    /// opens a blind spot (the static mirror of ablation E12).
    pub sole_constrainer_signals: Vec<String>,
    /// Smallest number of checkers constraining any live site.
    pub min_constrainers_per_site: usize,
}

/// Result of the coverage pass.
#[derive(Debug, Clone)]
pub struct CoverageAnalysis {
    /// Findings (blind spots, metadata violations, redundancy notes).
    pub diagnostics: Vec<Diagnostic>,
    /// Aggregate statistics.
    pub stats: CoverageStats,
    /// The uncovered sites themselves (empty on a healthy registry).
    pub uncovered: Vec<SiteRef>,
}

impl CoverageAnalysis {
    /// True when no error-level diagnostic was produced.
    pub fn clean(&self) -> bool {
        self.diagnostics
            .iter()
            .all(|d| d.severity < Severity::Error)
    }
}

/// Whether a single site is constrained by at least one enabled checker —
/// the per-site query the dynamic⊆static cross-check test uses.
pub fn site_covered(cfg: &NocConfig, model: &CheckerModel, site: SiteRef) -> bool {
    !model.constrainers(cfg, site.signal).is_empty()
}

fn err(code: &'static str, msg: String) -> Diagnostic {
    Diagnostic::new(Pass::Coverage, code, Severity::Error, msg)
}

/// Runs the full coverage pass for one configuration.
pub fn analyze(cfg: &NocConfig, model: &CheckerModel) -> CoverageAnalysis {
    let mut diagnostics = Vec::new();

    // --- Metadata hygiene -------------------------------------------------
    for e in &TABLE1 {
        let i = e.id.index();
        let (obs, con) = (&model.observes[i], &model.constrains[i]);
        if obs.is_empty() {
            diagnostics.push(
                err(
                    "NL101",
                    format!(
                        "checker {} (\"{}\") declares no observed signals — its \
                         coverage contribution is unverifiable",
                        e.id, e.name
                    ),
                )
                .with_checker(e.id.0),
            );
            continue;
        }
        for s in con {
            if !obs.contains(s) {
                diagnostics.push(
                    err(
                        "NL102",
                        format!("checker {} constrains {s:?} without observing it", e.id),
                    )
                    .with_checker(e.id.0),
                );
            }
        }
        if let Some(m) = e.module {
            if !obs.iter().any(|s| s.module() == m) {
                diagnostics.push(
                    err(
                        "NL103",
                        format!(
                            "checker {} is owned by module {m} but observes none of \
                             its signals",
                            e.id
                        ),
                    )
                    .with_checker(e.id.0),
                );
            }
        }
    }

    // --- Blind-spot sweep over the live signal graph ----------------------
    let sites = enumerate_all_sites(cfg);
    let mut uncovered = Vec::new();
    let mut live_kinds: Vec<SignalKind> = Vec::new();
    let mut min_constrainers = usize::MAX;
    for &site in &sites {
        if !live_kinds.contains(&site.signal) {
            live_kinds.push(site.signal);
        }
        let n = model.constrainers(cfg, site.signal).len();
        min_constrainers = min_constrainers.min(n);
        if n == 0 {
            uncovered.push(site);
        }
    }

    // Report blind spots grouped by signal kind (one diagnostic per kind,
    // with an example site), so a single metadata hole does not explode
    // into thousands of identical findings.
    for &kind in &live_kinds {
        let holes: Vec<&SiteRef> = uncovered.iter().filter(|s| s.signal == kind).collect();
        if let Some(first) = holes.first() {
            diagnostics.push(
                err(
                    "NL110",
                    format!(
                        "blind spot: {} live {kind:?} bits are constrained by no \
                         enabled checker (single-bit faults there are statically \
                         unobservable)",
                        holes.len()
                    ),
                )
                .with_site(first),
            );
        }
    }

    // --- Redundancy analysis (static mirror of ablation E12) --------------
    let mut sole = Vec::new();
    for &kind in &live_kinds {
        let cs = model.constrainers(cfg, kind);
        if cs.len() == 1 {
            sole.push(format!("{kind:?}"));
            diagnostics.push(
                Diagnostic::new(
                    Pass::Coverage,
                    "NL120",
                    Severity::Info,
                    format!(
                        "{kind:?} is guarded only by {} (\"{}\") — deleting that \
                         checker opens a blind spot",
                        cs[0],
                        TABLE1[cs[0].index()].name
                    ),
                )
                .with_checker(cs[0].0),
            );
        }
    }

    let stats = CoverageStats {
        total_sites: sites.len(),
        covered_sites: sites.len() - uncovered.len(),
        uncovered_sites: uncovered.len(),
        live_signal_kinds: live_kinds.len(),
        sole_constrainer_signals: sole,
        min_constrainers_per_site: if min_constrainers == usize::MAX {
            0
        } else {
            min_constrainers
        },
    };
    CoverageAnalysis {
        diagnostics,
        stats,
        uncovered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_registry_has_zero_blind_spots_small() {
        let cfg = NocConfig::small_test();
        let a = analyze(&cfg, &CheckerModel::from_table1());
        assert!(a.clean(), "diagnostics: {:#?}", a.diagnostics);
        assert_eq!(a.stats.uncovered_sites, 0);
        assert_eq!(a.stats.covered_sites, a.stats.total_sites);
        assert!(a.stats.min_constrainers_per_site >= 1);
    }

    #[test]
    fn deleting_a_checker_is_detected() {
        let cfg = NocConfig::small_test();
        let mut m = CheckerModel::from_table1();
        m.delete(CheckerId(17));
        let a = analyze(&cfg, &m);
        assert!(!a.clean());
        // Invariance 17 is the sole guard of the SA-won event wire and the
        // state register — deleting it must surface actual blind spots,
        // not just the metadata-completeness error.
        assert!(
            a.diagnostics.iter().any(|d| d.code == "NL110"),
            "{:#?}",
            a.diagnostics
        );
        assert!(a.stats.uncovered_sites > 0);
    }

    #[test]
    fn site_covered_queries_one_site() {
        let cfg = NocConfig::small_test();
        let model = CheckerModel::from_table1();
        let sites = enumerate_all_sites(&cfg);
        assert!(sites.iter().all(|&s| site_covered(&cfg, &model, s)));
    }

    #[test]
    fn nonatomic_policy_still_fully_covered() {
        let mut cfg = NocConfig::small_test();
        cfg.buffer_policy = noc_types::config::BufferPolicy::NonAtomic;
        let a = analyze(&cfg, &CheckerModel::from_table1());
        assert!(a.clean(), "{:#?}", a.diagnostics);
        assert_eq!(a.stats.uncovered_sites, 0);
    }
}
