//! Fault model and injection framework (Section 5.2 / Figure 5).
//!
//! The paper injects **single-bit, single-event transient faults** at the
//! inputs and outputs of every control module of every router — 205
//! locations per interior 5-port router, 11,808 in the 8×8 mesh at their
//! module granularity (our signal catalogue is finer-grained; see
//! EXPERIMENTS.md for the measured counts). This crate provides:
//!
//! * [`FaultSpec`] — one injection: a site, a temporal kind (transient /
//!   permanent / intermittent) and a start cycle;
//! * [`enumerate_sites`] — the exhaustive campaign universe;
//! * [`sample`] — deterministic sub-sampling (stride / seeded random) so
//!   laptop-scale runs sweep a representative subset and `--full` runs the
//!   whole universe;
//! * [`rollout`] — execute one injection from a warmed-up network
//!   snapshot and report whether the network drained and whether the
//!   armed bit ever flipped a live wire.
//!
//! # Example
//!
//! ```
//! use nocalert_fault::{enumerate_sites, rollout, FaultSpec};
//! use noc_sim::{Network, NullObserver};
//! use noc_types::{FaultKind, NocConfig};
//!
//! let cfg = NocConfig::small_test();
//! let sites = enumerate_sites(&cfg);
//! let mut net = Network::new(cfg);
//! net.run(200); // warm up
//! let spec = FaultSpec::transient(sites[0], net.cycle());
//! let outcome = rollout(&mut net, Some(&spec), 300, 5_000, &mut NullObserver);
//! assert!(outcome.drained || !outcome.drained); // campaign classifies this
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use noc_sim::{Network, Observer};
use noc_types::site::{FaultKind, SiteRef};
use noc_types::{Cycle, NocConfig};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One fault injection: where, how, and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// The wire bit to corrupt.
    pub site: SiteRef,
    /// Temporal behaviour.
    pub kind: FaultKind,
    /// Injection cycle.
    pub start: Cycle,
}

impl FaultSpec {
    /// A single-event transient at `site`, active during `start` only —
    /// the paper's campaign fault.
    pub fn transient(site: SiteRef, start: Cycle) -> FaultSpec {
        FaultSpec {
            site,
            kind: FaultKind::Transient,
            start,
        }
    }

    /// A stuck-bit permanent fault from `start` onward (Observation 3).
    pub fn permanent(site: SiteRef, start: Cycle) -> FaultSpec {
        FaultSpec {
            site,
            kind: FaultKind::Permanent,
            start,
        }
    }
}

/// The exhaustive fault-site universe for a configuration: every bit of
/// every module-boundary wire of every router (dead ports excluded).
pub fn enumerate_sites(cfg: &NocConfig) -> Vec<SiteRef> {
    noc_sim::enumerate_all_sites(cfg)
}

/// Deterministic site sub-sampling strategies for laptop-scale campaigns.
pub mod sample {
    use super::*;

    /// Every `k`-th site, `k = ceil(len / n)` — uniform structural
    /// coverage with at most `n` sites.
    pub fn stride(sites: &[SiteRef], n: usize) -> Vec<SiteRef> {
        if n == 0 || sites.is_empty() {
            return Vec::new();
        }
        if n >= sites.len() {
            return sites.to_vec();
        }
        let k = sites.len().div_ceil(n);
        sites.iter().copied().step_by(k).collect()
    }

    /// `n` sites drawn without replacement with a seeded RNG (stable
    /// across runs and platforms).
    pub fn random(sites: &[SiteRef], n: usize, seed: u64) -> Vec<SiteRef> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut v = sites.to_vec();
        v.shuffle(&mut rng);
        v.truncate(n);
        v.sort_unstable();
        v
    }
}

/// Result of one [`rollout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RolloutOutcome {
    /// The network emptied completely within the drain deadline.
    pub drained: bool,
    /// Times the armed bit flipped a live wire (0 ⇒ the injection was
    /// vacuous: the wire was never evaluated while the fault was active).
    pub fault_hits: u64,
    /// Cycle at which the rollout stopped.
    pub end_cycle: Cycle,
}

/// Executes one injection experiment on `net` (typically a clone of a
/// warmed-up golden snapshot):
///
/// 1. arms `spec` (if any) and runs `active_window` cycles of live traffic,
/// 2. stops packet generation and drains for at most `drain_deadline`
///    cycles,
/// 3. reports drain status and fault-hit count.
///
/// The observer sees every cycle record, injection and ejection — attach
/// the NoCAlert bank / ForEVeR / run logs here.
pub fn rollout<O: Observer>(
    net: &mut Network,
    spec: Option<&FaultSpec>,
    active_window: Cycle,
    drain_deadline: Cycle,
    obs: &mut O,
) -> RolloutOutcome {
    if let Some(s) = spec {
        net.arm_fault(s.site, s.kind, s.start);
    } else {
        net.disarm_fault();
    }
    for _ in 0..active_window {
        net.step_observed(obs);
    }
    let drained = net.drain(obs, drain_deadline);
    RolloutOutcome {
        drained,
        fault_hits: net.fault_hits(),
        end_cycle: net.cycle(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::NullObserver;

    #[test]
    fn universe_is_nonempty_and_unique() {
        let cfg = NocConfig::small_test();
        let sites = enumerate_sites(&cfg);
        assert!(sites.len() > 1_000, "got {}", sites.len());
        let mut dedup = sites.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), sites.len());
    }

    #[test]
    fn stride_sampling_bounds_and_coverage() {
        let cfg = NocConfig::small_test();
        let sites = enumerate_sites(&cfg);
        let s = sample::stride(&sites, 100);
        assert!(s.len() <= 100 && s.len() > 80);
        // First and (near-)last structural regions are represented.
        assert_eq!(s[0], sites[0]);
        assert!(s.last().unwrap().router >= sites.last().unwrap().router / 2);
        assert!(sample::stride(&sites, 0).is_empty());
        assert_eq!(sample::stride(&sites, usize::MAX).len(), sites.len());
    }

    #[test]
    fn random_sampling_is_deterministic() {
        let cfg = NocConfig::small_test();
        let sites = enumerate_sites(&cfg);
        let a = sample::random(&sites, 50, 42);
        let b = sample::random(&sites, 50, 42);
        let c = sample::random(&sites, 50, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn faultless_rollout_drains() {
        let mut net = Network::new(NocConfig::small_test());
        net.run(500);
        let out = rollout(&mut net, None, 200, 10_000, &mut NullObserver);
        assert!(out.drained);
        assert_eq!(out.fault_hits, 0);
    }

    #[test]
    fn armed_rollout_counts_hits_on_hot_wire() {
        let cfg = NocConfig::small_test();
        let mut net = Network::new(cfg.clone());
        net.run(500);
        // Sa1Req of a live port is evaluated every cycle: a permanent
        // fault must hit immediately.
        let site = SiteRef {
            router: 5,
            port: 4,
            vc: 0,
            signal: noc_types::site::SignalKind::Sa1Req,
            bit: 0,
        };
        let spec = FaultSpec::permanent(site, net.cycle());
        let out = rollout(&mut net, Some(&spec), 100, 20_000, &mut NullObserver);
        assert!(out.fault_hits >= 100, "hits {}", out.fault_hits);
    }

    #[test]
    fn transient_rollout_hits_at_most_per_cycle_evaluations() {
        let cfg = NocConfig::small_test();
        let mut net = Network::new(cfg.clone());
        net.run(300);
        let site = SiteRef {
            router: 0,
            port: 4,
            vc: 0,
            signal: noc_types::site::SignalKind::Sa1Req,
            bit: 0,
        };
        let spec = FaultSpec::transient(site, net.cycle());
        let out = rollout(&mut net, Some(&spec), 50, 20_000, &mut NullObserver);
        assert_eq!(out.fault_hits, 1, "Sa1Req evaluated once per cycle");
    }
}
