#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run before pushing; everything must pass with zero warnings.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== noc-lint (static verification) =="
# Fan the heavier passes out across the runner's cores (stdout is
# byte-identical for every --jobs value) and report per-pass wall-clock
# timing on stderr.
JOBS="$(nproc 2>/dev/null || echo 2)"
cargo run -q --release -p nocalert-analysis --bin noc-lint -- --jobs "$JOBS" --timings

echo "== recovery smoke (one fault per class, 100% delivery) =="
cargo run -q --release -p nocalert-bench --bin recovery -- --smoke

echo "== attack smoke (every attacker model loud: detected or mitigated) =="
cargo run -q --release -p nocalert-bench --bin attack -- --smoke

echo "== aging smoke (accumulating faults to an honest partition) =="
cargo run -q --release -p nocalert-bench --bin aging -- --smoke

echo "== perf smoke (>15% cycles/sec + campaign runs/sec regression gate) =="
cargo run -q --release -p nocalert-bench --bin perf -- --smoke

echo "== service smoke (nocalertd end-to-end: submit, stream, SIGKILL, resume) =="
cargo build -q --release -p nocalert-service
NOCALERTD=target/release/nocalertd
SVC_DIR="$(mktemp -d)"
# Guard against SVC_PID=0: `kill -9 0` would take down our own
# process group.
trap 'if [ "${SVC_PID:-0}" != 0 ]; then kill -9 "$SVC_PID" 2>/dev/null || true; fi; rm -rf "$SVC_DIR"' EXIT
"$NOCALERTD" serve --data-dir "$SVC_DIR" --addr 127.0.0.1:0 \
    --addr-file "$SVC_DIR/addr" --workers 1 &
SVC_PID=$!
for _ in $(seq 1 100); do [ -s "$SVC_DIR/addr" ] && break; sleep 0.1; done
SVC_ADDR="$(cat "$SVC_DIR/addr")"
# A 4x4 one-fault transient job, submitted and followed over HTTP.
SPEC='{"kind":"Transient","noc":{"mesh":{"width":4,"height":4},"vcs_per_port":2,"buffer_depth":5,"link_width_bits":128,"message_classes":1,"packet_lengths":[5],"buffer_policy":"Atomic","routing":"XY","speculative":false,"traffic":"UniformRandom","injection_rate":0.05,"hotspot_fraction":0.2,"ejection_rate":1,"seed":201986535},"warmup":200,"window":1200,"limit":1,"threads":1}'
JOB="$("$NOCALERTD" submit --addr "$SVC_ADDR" --spec "$SPEC")"
"$NOCALERTD" wait --addr "$SVC_ADDR" --job "$JOB" --timeout-secs 300
INCIDENTS="$("$NOCALERTD" events --addr "$SVC_ADDR" --job "$JOB" | grep -c Incident)"
[ "$INCIDENTS" -ge 1 ] || { echo "service smoke: empty incident stream" >&2; exit 1; }
# Second job, killed mid-run, must complete after a restart (resume).
JOB2="$("$NOCALERTD" submit --addr "$SVC_ADDR" --spec "${SPEC/\"limit\":1/\"limit\":5}")"
sleep 1
kill -9 "$SVC_PID"; wait "$SVC_PID" 2>/dev/null || true
"$NOCALERTD" serve --data-dir "$SVC_DIR" --addr 127.0.0.1:0 \
    --addr-file "$SVC_DIR/addr2" --workers 1 &
SVC_PID=$!
for _ in $(seq 1 100); do [ -s "$SVC_DIR/addr2" ] && break; sleep 0.1; done
SVC_ADDR="$(cat "$SVC_DIR/addr2")"
"$NOCALERTD" wait --addr "$SVC_ADDR" --job "$JOB2" --timeout-secs 300
kill -9 "$SVC_PID" 2>/dev/null || true; wait "$SVC_PID" 2>/dev/null || true
SVC_PID=0
rm -rf "$SVC_DIR"
trap - EXIT

echo "== cargo test =="
cargo test -q --workspace

echo "CI OK"
