//! Fault-site addressing — the injection surface of the paper's fault model.
//!
//! Figure 5 of the paper: *"Our model has the capability of injecting
//! single-bit faults at the inputs and the outputs of each individual
//! module"*. Here every control-logic module of the router is given a
//! [`ModuleClass`], every input/output wire bundle of a module a
//! [`SignalKind`] with a configuration-dependent bit width, and a
//! [`SiteRef`] names **one bit of one signal of one module instance in one
//! router** — the atomic unit at which the campaign flips bits.
//!
//! The same catalogue drives three things, which keeps them consistent by
//! construction:
//!
//! 1. the simulator's in-line fault hooks (`noc-sim`'s `FaultPlane` is
//!    consulted with a `SiteRef`-compatible key at every module boundary),
//! 2. the exhaustive site enumeration used by the campaign driver, and
//! 3. coverage tests that arm every enumerated site and assert the hook
//!    actually fires.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether a signal is an input or an output of its module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SignalDir {
    /// Module input wire (scenario (a) in Figure 5).
    Input,
    /// Module output wire (scenario (b) in Figure 5).
    Output,
}

/// The control-logic modules of the baseline router (Section 3.1).
///
/// Instances are addressed by `(class, port, vc)`; modules that exist once
/// per port use `vc = 0`, and `port` is an *input* port for `Rc`, `Va1`,
/// `Sa1`, `VcState`, `BufState` and an *output* port for `Va2`, `Sa2`,
/// `XbarCtl`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum ModuleClass {
    /// Routing Computation unit — one per input port.
    Rc = 0,
    /// Local (intra-port) VC-allocation arbiter — one per input port.
    Va1 = 1,
    /// Global (inter-port) VC-allocation arbiter — one per output port.
    Va2 = 2,
    /// Local (intra-port) switch arbiter — one per input port.
    Sa1 = 3,
    /// Global (inter-port) switch arbiter — one per output port.
    Sa2 = 4,
    /// Crossbar control (column select) — one per output port.
    XbarCtl = 5,
    /// VC state table — one per (input port, VC).
    VcState = 6,
    /// VC buffer status logic (pointers/flags) — one per (input port, VC).
    BufState = 7,
}

impl ModuleClass {
    /// All module classes.
    pub const ALL: [ModuleClass; 8] = [
        ModuleClass::Rc,
        ModuleClass::Va1,
        ModuleClass::Va2,
        ModuleClass::Sa1,
        ModuleClass::Sa2,
        ModuleClass::XbarCtl,
        ModuleClass::VcState,
        ModuleClass::BufState,
    ];

    /// True if instances exist per (port, VC) rather than per port.
    #[inline]
    pub fn per_vc(self) -> bool {
        matches!(self, ModuleClass::VcState | ModuleClass::BufState)
    }

    /// True if `port` in the instance address denotes an *output* port.
    #[inline]
    pub fn port_is_output(self) -> bool {
        matches!(
            self,
            ModuleClass::Va2 | ModuleClass::Sa2 | ModuleClass::XbarCtl
        )
    }
}

impl fmt::Display for ModuleClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ModuleClass::Rc => "RC",
            ModuleClass::Va1 => "VA1",
            ModuleClass::Va2 => "VA2",
            ModuleClass::Sa1 => "SA1",
            ModuleClass::Sa2 => "SA2",
            ModuleClass::XbarCtl => "XBAR",
            ModuleClass::VcState => "VCST",
            ModuleClass::BufState => "BUFST",
        };
        f.write_str(s)
    }
}

/// Named wire bundles at module boundaries.
///
/// Each kind belongs to exactly one [`ModuleClass`] and is either an input
/// or an output of it ([`SignalKind::dir`]); its width in bits depends on
/// the configuration (VC count, coordinate width) and is computed by
/// `noc-sim`'s signal catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum SignalKind {
    // --- RC unit ---
    /// Destination X coordinate presented to the RC unit.
    RcDestX = 0,
    /// Destination Y coordinate presented to the RC unit.
    RcDestY = 1,
    /// "Flit at buffer head is a header" valid bit.
    RcHeadValid = 2,
    /// Computed output direction (3-bit encoding of [`crate::Direction`]).
    RcOutDir = 3,
    // --- VA1 local arbiter (per input port, V-bit vectors) ---
    /// Request vector: VCs awaiting VC allocation.
    Va1Req = 4,
    /// Grant vector (one-hot under correct operation).
    Va1Grant = 5,
    // --- VA2 global arbiter (per output port, P-bit vectors) ---
    /// Request vector over input ports.
    Va2Req = 6,
    /// Grant vector over input ports.
    Va2Grant = 7,
    /// The downstream VC index assigned to the winner.
    Va2OutVc = 8,
    // --- SA1 local arbiter (per input port, V-bit vectors) ---
    /// Request vector: active VCs with a flit and a credit.
    Sa1Req = 9,
    /// Grant vector.
    Sa1Grant = 10,
    // --- SA2 global arbiter (per output port, P-bit vectors) ---
    /// Request vector over input ports.
    Sa2Req = 11,
    /// Grant vector over input ports.
    Sa2Grant = 12,
    // --- Crossbar control (per output port) ---
    /// Column control vector over input ports: bit `p` connects input row
    /// `p` to this output column. Single-bit faults here create exactly the
    /// non-one-hot columns/rows of invariances 14/15.
    XbarCol = 13,
    /// Grant vector from SA2 as latched by the crossbar control (its input).
    XbarGrantIn = 14,
    // --- VC state table (per input port, VC) ---
    /// "RC completed this cycle" event wire.
    VcEvRcDone = 15,
    /// "VA completed this cycle" event wire.
    VcEvVaDone = 16,
    /// "Won switch arbitration this cycle" event wire.
    VcEvSaWon = 17,
    /// Stored pipeline-state code (2 bits: Idle/Routing/VaPending/Active).
    VcStateCode = 18,
    /// Stored output port for the current packet (3 bits).
    VcOutPort = 19,
    /// Stored downstream VC for the current packet.
    VcOutVc = 20,
    // --- Buffer status (per input port, VC) ---
    /// Write-enable wire.
    BufWrite = 21,
    /// Read-enable wire.
    BufRead = 22,
    /// Empty flag.
    BufEmpty = 23,
    /// Full flag.
    BufFull = 24,
    /// Kind bits (2) of the flit at the buffer head.
    BufHeadKind = 25,
}

impl SignalKind {
    /// All signal kinds.
    pub const ALL: [SignalKind; 26] = [
        SignalKind::RcDestX,
        SignalKind::RcDestY,
        SignalKind::RcHeadValid,
        SignalKind::RcOutDir,
        SignalKind::Va1Req,
        SignalKind::Va1Grant,
        SignalKind::Va2Req,
        SignalKind::Va2Grant,
        SignalKind::Va2OutVc,
        SignalKind::Sa1Req,
        SignalKind::Sa1Grant,
        SignalKind::Sa2Req,
        SignalKind::Sa2Grant,
        SignalKind::XbarCol,
        SignalKind::XbarGrantIn,
        SignalKind::VcEvRcDone,
        SignalKind::VcEvVaDone,
        SignalKind::VcEvSaWon,
        SignalKind::VcStateCode,
        SignalKind::VcOutPort,
        SignalKind::VcOutVc,
        SignalKind::BufWrite,
        SignalKind::BufRead,
        SignalKind::BufEmpty,
        SignalKind::BufFull,
        SignalKind::BufHeadKind,
    ];

    /// The module class this signal belongs to.
    pub fn module(self) -> ModuleClass {
        use SignalKind::*;
        match self {
            RcDestX | RcDestY | RcHeadValid | RcOutDir => ModuleClass::Rc,
            Va1Req | Va1Grant => ModuleClass::Va1,
            Va2Req | Va2Grant | Va2OutVc => ModuleClass::Va2,
            Sa1Req | Sa1Grant => ModuleClass::Sa1,
            Sa2Req | Sa2Grant => ModuleClass::Sa2,
            XbarCol | XbarGrantIn => ModuleClass::XbarCtl,
            VcEvRcDone | VcEvVaDone | VcEvSaWon | VcStateCode | VcOutPort | VcOutVc => {
                ModuleClass::VcState
            }
            BufWrite | BufRead | BufEmpty | BufFull | BufHeadKind => ModuleClass::BufState,
        }
    }

    /// True for signals backed by a state register (the VC status table).
    ///
    /// A *transient* fault on a register is a single-event upset: the
    /// stored bit flips once and the wrong value **persists** until the
    /// register is functionally rewritten. A transient on a combinational
    /// wire, by contrast, corrupts exactly one cycle's evaluation. The
    /// fault plane and the network treat the two accordingly.
    pub fn is_register(self) -> bool {
        matches!(
            self,
            SignalKind::VcStateCode | SignalKind::VcOutPort | SignalKind::VcOutVc
        )
    }

    /// Whether this signal is an input or an output of its module.
    pub fn dir(self) -> SignalDir {
        use SignalKind::*;
        match self {
            RcDestX | RcDestY | RcHeadValid | Va1Req | Va2Req | Sa1Req | Sa2Req | XbarGrantIn
            | VcEvRcDone | VcEvVaDone | VcEvSaWon | BufWrite | BufRead => SignalDir::Input,
            RcOutDir | Va1Grant | Va2Grant | Va2OutVc | Sa1Grant | Sa2Grant | XbarCol
            | VcStateCode | VcOutPort | VcOutVc | BufEmpty | BufFull | BufHeadKind => {
                SignalDir::Output
            }
        }
    }
}

/// One injectable bit: `(router, module instance, signal, bit)`.
///
/// # Example
///
/// ```
/// use noc_types::site::{ModuleClass, SignalKind, SiteRef};
///
/// let site = SiteRef {
///     router: 12,
///     port: 1,
///     vc: 0,
///     signal: SignalKind::RcOutDir,
///     bit: 2,
/// };
/// assert_eq!(site.signal.module(), ModuleClass::Rc);
/// assert_eq!(site.to_string(), "n12/RC[p1]/RcOutDir.2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteRef {
    /// Router (node) index.
    pub router: u16,
    /// Port of the module instance (input or output port depending on the
    /// module class — see [`ModuleClass::port_is_output`]).
    pub port: u8,
    /// VC of the module instance (0 for per-port modules).
    pub vc: u8,
    /// The wire bundle.
    pub signal: SignalKind,
    /// Bit within the bundle.
    pub bit: u8,
}

impl fmt::Display for SiteRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.signal.module();
        if m.per_vc() {
            write!(
                f,
                "n{}/{}[p{}v{}]/{:?}.{}",
                self.router, m, self.port, self.vc, self.signal, self.bit
            )
        } else {
            write!(
                f,
                "n{}/{}[p{}]/{:?}.{}",
                self.router, m, self.port, self.signal, self.bit
            )
        }
    }
}

/// Temporal behaviour of an injected fault (Section 5.2).
///
/// The paper's campaign uses single-bit **transient** faults; it argues the
/// mechanism behaves identically for permanent and intermittent faults
/// (the checker simply stays asserted), which Observation 3 probes — so all
/// three temporal classes are supported. The recovery work (DESIGN.md §11)
/// additionally distinguishes the *value* behaviour of hard faults: the
/// original `Permanent` keeps the paper's stuck-*flipped* (XOR) semantics,
/// while `StuckAt0`/`StuckAt1` model the classical stuck-at defects that a
/// containment mechanism must survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Bit flipped during exactly one cycle (single-event upset).
    Transient,
    /// Bit stuck-flipped from the injection cycle onward.
    Permanent,
    /// Bit forced to logic 0 from the injection cycle onward.
    StuckAt0,
    /// Bit forced to logic 1 from the injection cycle onward.
    StuckAt1,
    /// Bit flipped every cycle where `(cycle - start) % period < duty`.
    Intermittent {
        /// Repetition period in cycles.
        period: u32,
        /// Number of faulty cycles at the start of each period.
        duty: u32,
    },
}

impl FaultKind {
    /// Whether the fault is active `delta` cycles after injection start.
    #[inline]
    pub fn active_at(self, delta: u64) -> bool {
        match self {
            FaultKind::Transient => delta == 0,
            FaultKind::Permanent | FaultKind::StuckAt0 | FaultKind::StuckAt1 => true,
            FaultKind::Intermittent { period, duty } => (delta % period as u64) < duty as u64,
        }
    }

    /// True for the hard-fault kinds that persist forever once started —
    /// the classes `noc-sim`'s recovery controller may infer as permanent.
    #[inline]
    pub fn is_persistent(self) -> bool {
        matches!(
            self,
            FaultKind::Permanent | FaultKind::StuckAt0 | FaultKind::StuckAt1
        )
    }

    /// The value semantics of the fault on an **active** cycle: how the
    /// fault-free wire `value` is corrupted at bit position `bit`.
    ///
    /// Stuck-at defects force the addressed bit to a level; every other
    /// kind flips it. This is *the* definition used by both the dynamic
    /// fault plane (`noc-sim`'s `FaultPlane::xf`) and the static
    /// detectability prover (`nocalert-analysis`' detect pass), so the
    /// two planes can never drift apart.
    #[inline]
    pub fn apply(self, value: u64, bit: u8) -> u64 {
        let mask = 1u64 << bit;
        match self {
            FaultKind::StuckAt0 => value & !mask,
            FaultKind::StuckAt1 => value | mask,
            _ => value ^ mask,
        }
    }
}

/// The signal set the recovery plane promises to survive faults on
/// (DESIGN.md §11): an alert attributable to one of these wires drives the
/// containment ladder all the way to exactly-once delivery. The set was
/// derived empirically by the recovery campaign and is consumed by the
/// golden harness (alert filtering) and by the static detectability prover
/// (which must show detect-or-masked for *every* single fault on it).
pub fn containment_covered(signal: SignalKind) -> bool {
    matches!(
        signal,
        SignalKind::BufEmpty
            | SignalKind::BufFull
            | SignalKind::RcHeadValid
            | SignalKind::RcOutDir
            | SignalKind::VcEvSaWon
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_module_membership_is_total() {
        for s in SignalKind::ALL {
            // dir() and module() must be defined for every kind.
            let _ = s.dir();
            let _ = s.module();
        }
    }

    #[test]
    fn module_addressing_properties() {
        assert!(ModuleClass::VcState.per_vc());
        assert!(ModuleClass::BufState.per_vc());
        assert!(!ModuleClass::Rc.per_vc());
        assert!(ModuleClass::Va2.port_is_output());
        assert!(ModuleClass::Sa2.port_is_output());
        assert!(!ModuleClass::Sa1.port_is_output());
    }

    #[test]
    fn grants_are_outputs_requests_are_inputs() {
        assert_eq!(SignalKind::Va1Grant.dir(), SignalDir::Output);
        assert_eq!(SignalKind::Va1Req.dir(), SignalDir::Input);
        assert_eq!(SignalKind::Sa2Grant.dir(), SignalDir::Output);
        assert_eq!(SignalKind::Sa2Req.dir(), SignalDir::Input);
        assert_eq!(SignalKind::RcOutDir.dir(), SignalDir::Output);
        assert_eq!(SignalKind::RcDestX.dir(), SignalDir::Input);
    }

    #[test]
    fn fault_kind_activity() {
        assert!(FaultKind::Transient.active_at(0));
        assert!(!FaultKind::Transient.active_at(1));
        assert!(FaultKind::Permanent.active_at(0));
        assert!(FaultKind::Permanent.active_at(10_000));
        let inter = FaultKind::Intermittent {
            period: 10,
            duty: 3,
        };
        assert!(inter.active_at(0));
        assert!(inter.active_at(2));
        assert!(!inter.active_at(3));
        assert!(inter.active_at(10));
    }

    #[test]
    fn stuck_at_kinds_are_persistent() {
        for k in [
            FaultKind::StuckAt0,
            FaultKind::StuckAt1,
            FaultKind::Permanent,
        ] {
            assert!(k.is_persistent());
            assert!(k.active_at(0));
            assert!(k.active_at(1_000_000));
        }
        assert!(!FaultKind::Transient.is_persistent());
        assert!(!FaultKind::Intermittent { period: 4, duty: 1 }.is_persistent());
    }

    #[test]
    fn site_display() {
        let s = SiteRef {
            router: 3,
            port: 2,
            vc: 1,
            signal: SignalKind::VcStateCode,
            bit: 0,
        };
        assert_eq!(s.to_string(), "n3/VCST[p2v1]/VcStateCode.0");
    }
}
