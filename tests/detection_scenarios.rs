//! Targeted fault→checker scenarios: for representative signal kinds,
//! injecting a permanent fault must raise the Table-1 checkers that guard
//! that module class. This pins the mapping between the fault model and
//! the invariance catalogue end-to-end through the real simulator.

use noc_types::site::SignalKind;
use nocalert_repro::prelude::*;

/// Runs a permanent fault at `site` on a busy 4×4 network and returns the
/// asserted checker set (empty if the fault never hit a live wire).
fn asserted(site: SiteRef) -> Vec<u8> {
    let mut cfg = NocConfig::small_test();
    cfg.injection_rate = 0.20;
    let mut net = Network::new(cfg.clone());
    let mut bank = AlertBank::new(&cfg);
    for _ in 0..800 {
        net.step_observed(&mut bank);
    }
    assert!(!bank.any_asserted(), "clean before injection");
    net.arm_fault(site, FaultKind::Permanent, net.cycle());
    for _ in 0..2_500 {
        net.step_observed(&mut bank);
    }
    assert!(net.fault_hits() > 0, "fault at {site} never hit");
    bank.asserted_set().iter().map(|c| c.0).collect()
}

fn site(router: u16, port: u8, vc: u8, signal: SignalKind, bit: u8) -> SiteRef {
    SiteRef {
        router,
        port,
        vc,
        signal,
        bit,
    }
}

#[test]
fn rc_output_faults_trip_routing_checkers() {
    // Central router, local input port: every injected header misroutes.
    let got = asserted(site(5, 4, 0, SignalKind::RcOutDir, 1));
    assert!(
        got.iter().any(|c| [1, 2, 3].contains(c)),
        "routing checkers silent: {got:?}"
    );
}

#[test]
fn rc_dest_wire_faults_trip_minimal_route_checker() {
    let got = asserted(site(5, 4, 0, SignalKind::RcDestX, 0));
    // A corrupted destination makes the (correctly computed) route look
    // non-minimal against the *true* header destination downstream, or
    // produces a misroute caught later; the low-risk checkers own this.
    assert!(got.iter().any(|c| [1, 2, 3].contains(c)), "got {got:?}");
}

#[test]
fn arbiter_grant_faults_trip_grant_checkers() {
    let got = asserted(site(5, 0, 0, SignalKind::Sa1Grant, 1));
    assert!(
        got.iter().any(|c| [4, 5, 6].contains(c)),
        "arbiter checkers silent: {got:?}"
    );
}

#[test]
fn sa2_grant_faults_trip_switch_checkers() {
    let got = asserted(site(5, 1, 0, SignalKind::Sa2Grant, 0));
    assert!(
        got.iter().any(|c| [4, 5, 6, 9, 11, 13, 16].contains(c)),
        "got {got:?}"
    );
}

#[test]
fn xbar_column_faults_trip_crossbar_checkers() {
    let got = asserted(site(5, 1, 0, SignalKind::XbarCol, 3));
    assert!(
        got.iter().any(|c| [14, 15, 16].contains(c)),
        "crossbar checkers silent: {got:?}"
    );
}

#[test]
fn spurious_reads_trip_empty_buffer_checker() {
    let got = asserted(site(5, 0, 1, SignalKind::BufRead, 0));
    assert!(got.contains(&24) || got.contains(&29), "got {got:?}");
}

#[test]
fn spurious_writes_trip_port_level_checkers() {
    let got = asserted(site(5, 0, 1, SignalKind::BufWrite, 0));
    assert!(
        got.iter().any(|c| [18, 25, 26, 30].contains(c)),
        "got {got:?}"
    );
}

#[test]
fn state_event_wire_faults_trip_pipeline_order_checker() {
    let got = asserted(site(5, 0, 0, SignalKind::VcEvSaWon, 0));
    assert!(got.contains(&17), "got {got:?}");
}

#[test]
fn stuck_state_register_trips_consistency_checkers() {
    let got = asserted(site(5, 0, 0, SignalKind::VcStateCode, 1));
    assert!(
        !got.is_empty(),
        "stuck state register escaped every checker"
    );
}

#[test]
fn va2_outvc_faults_trip_vc_value_checkers() {
    let got = asserted(site(5, 1, 0, SignalKind::Va2OutVc, 1));
    assert!(
        got.iter().any(|c| [7, 18, 19, 26, 28].contains(c)),
        "got {got:?}"
    );
}

#[test]
fn head_valid_wire_faults_trip_rc_stage_checker() {
    let got = asserted(site(5, 4, 0, SignalKind::RcHeadValid, 0));
    assert!(got.contains(&20), "got {got:?}");
}

#[test]
fn empty_flag_faults_are_detected() {
    // A stuck empty flag starves or corrupts SA qualification.
    let got = asserted(site(5, 0, 0, SignalKind::BufEmpty, 0));
    assert!(!got.is_empty(), "stuck-empty flag escaped every checker");
}
