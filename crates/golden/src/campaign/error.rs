//! The campaign-side error taxonomy.
//!
//! [`CampaignError`] is the structured alternative to the asserts that
//! used to guard campaign construction and execution. Simulator-level
//! failures ([`noc_types::SimError`]) are wrapped, campaign-specific
//! failures (warm-up violations, golden-run deadlock, checkpoint I/O,
//! worker loss) get their own variants — each carrying enough context to
//! report the failure without a backtrace.

use noc_types::{Cycle, SimError};
use std::fmt;
use std::path::PathBuf;

/// A structured campaign failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// The simulator substrate rejected the configuration or a spec.
    Substrate(SimError),
    /// A detector raised an alarm during the fault-free warm-up — the
    /// campaign premise (checkers are silent without faults) is broken.
    WarmupViolation {
        /// Which detector fired (`"NoCAlert"` / `"ForEVeR"`).
        detector: &'static str,
        /// Warm-up length that was being run.
        cycle: Cycle,
        /// Debug rendering of the first spurious assertion.
        detail: String,
    },
    /// The fault-free golden rollout failed to drain: the substrate
    /// itself deadlocks under this configuration and no classification
    /// against it would be meaningful.
    GoldenNotDrained {
        /// Flits the golden run injected.
        injected: usize,
        /// Flits the golden run managed to eject.
        ejected: usize,
    },
    /// A checkpoint directory could not be created, read, or written.
    Checkpoint {
        /// The path involved.
        path: PathBuf,
        /// Underlying I/O or parse detail.
        detail: String,
    },
    /// `--resume` pointed at a checkpoint written under a different
    /// campaign configuration; mixing the two would corrupt aggregates.
    CheckpointMismatch {
        /// The checkpoint directory.
        path: PathBuf,
    },
    /// A checkpoint shard holds an unparseable line *before* its torn
    /// tail. A torn final line is the expected signature of a mid-write
    /// kill and is repaired on resume, but corruption inside the
    /// complete prefix means rows after it would silently vanish from
    /// the campaign — resuming must refuse, not shrink.
    ShardCorrupt {
        /// The shard file.
        path: PathBuf,
        /// 1-based line number of the first unparseable row.
        line: usize,
        /// Parse-failure detail for that row.
        detail: String,
    },
    /// A campaign worker thread died outside the per-run panic isolation
    /// boundary (a harness bug, not an experiment outcome).
    WorkerLost {
        /// Panic payload or join-error description.
        detail: String,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Substrate(e) => write!(f, "{e}"),
            CampaignError::WarmupViolation {
                detector,
                cycle,
                detail,
            } => write!(
                f,
                "{detector} raised during the fault-free {cycle}-cycle warm-up: {detail}"
            ),
            CampaignError::GoldenNotDrained { injected, ejected } => write!(
                f,
                "golden (fault-free) run failed to drain: {ejected}/{injected} flits delivered"
            ),
            CampaignError::Checkpoint { path, detail } => {
                write!(f, "checkpoint failure at {}: {detail}", path.display())
            }
            CampaignError::CheckpointMismatch { path } => write!(
                f,
                "checkpoint at {} was written under a different campaign configuration",
                path.display()
            ),
            CampaignError::ShardCorrupt { path, line, detail } => write!(
                f,
                "checkpoint shard {} is corrupt at line {line}: {detail} \
                 (refusing to resume — rows after the corruption would be dropped)",
                path.display()
            ),
            CampaignError::WorkerLost { detail } => {
                write!(f, "campaign worker thread lost: {detail}")
            }
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Substrate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for CampaignError {
    fn from(e: SimError) -> CampaignError {
        CampaignError::Substrate(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_carry_context() {
        let e = CampaignError::GoldenNotDrained {
            injected: 100,
            ejected: 97,
        };
        assert!(e.to_string().contains("97/100"));

        let e = CampaignError::WarmupViolation {
            detector: "NoCAlert",
            cycle: 300,
            detail: "checker 5".into(),
        };
        let s = e.to_string();
        assert!(s.contains("NoCAlert") && s.contains("300") && s.contains("checker 5"));

        let e = CampaignError::CheckpointMismatch {
            path: PathBuf::from("/tmp/ck"),
        };
        assert!(e.to_string().contains("/tmp/ck"));

        let e = CampaignError::ShardCorrupt {
            path: PathBuf::from("/tmp/ck/shard-w0.jsonl"),
            line: 3,
            detail: "expected value".into(),
        };
        let s = e.to_string();
        assert!(s.contains("shard-w0.jsonl") && s.contains("line 3") && s.contains("refusing"));
    }

    #[test]
    fn sim_error_wraps() {
        let cfg_err = noc_types::NocConfig {
            vcs_per_port: 0,
            ..noc_types::NocConfig::small_test()
        }
        .validate()
        .unwrap_err();
        let e: CampaignError = SimError::from(cfg_err).into();
        assert!(matches!(e, CampaignError::Substrate(_)));
        assert!(e.to_string().contains("vcs_per_port"));
    }
}
