//! Deterministic fan-out for the heavier passes.
//!
//! [`run_tasks`] runs a vector of closures on up to `jobs` scoped worker
//! threads and returns the results **in task order**, so callers that
//! concatenate per-task diagnostics get byte-identical output regardless
//! of the `--jobs` setting. A `None` slot means the task could not be
//! executed or its result could not be stored (a poisoned lock after a
//! worker panic); callers surface that as an internal-error diagnostic
//! instead of crashing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `tasks` on at most `jobs` threads, returning results in task
/// order. `jobs <= 1` degrades to a plain sequential loop on the calling
/// thread (no spawn cost, identical results).
pub(crate) fn run_tasks<T, F>(jobs: usize, tasks: Vec<F>) -> Vec<Option<T>>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    if jobs <= 1 || n <= 1 {
        return tasks.into_iter().map(|f| Some(f())).collect();
    }
    let queue: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let task = queue[i].lock().ok().and_then(|mut g| g.take());
                if let Some(f) = task {
                    let out = f();
                    if let Ok(mut slot) = slots[i].lock() {
                        *slot = Some(out);
                    }
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().ok().flatten())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_task_order_across_thread_counts() {
        let make = || (0..64).map(|i| move || i * 3).collect::<Vec<_>>();
        let seq = run_tasks(1, make());
        for jobs in [2, 4, 9] {
            assert_eq!(run_tasks(jobs, make()), seq);
        }
        assert_eq!(seq[5], Some(15));
    }

    #[test]
    fn empty_and_single_task_vectors_work() {
        let empty: Vec<Option<u32>> = run_tasks::<u32, fn() -> u32>(4, Vec::new());
        assert!(empty.is_empty());
        assert_eq!(run_tasks(4, vec![|| 7u32]), vec![Some(7)]);
    }
}
