//! **ForEVeR** (Parikh & Bertacco, MICRO 2011) — the state-of-the-art
//! baseline NoCAlert is compared against in Section 5.
//!
//! ForEVeR complements design-time formal verification with runtime
//! checking. Its fault-detection machinery, re-implemented here exactly as
//! the NoCAlert paper describes it, has three parts:
//!
//! 1. **Checker network + notification counters** — a lightweight,
//!    assumed-100%-reliable secondary network delivers a notification to a
//!    packet's destination *ahead of* the packet. The destination
//!    increments a counter per notification and decrements it when the
//!    packet is fully received. Time is divided into **epochs** (1,500
//!    cycles in the paper's comparison — the shortest epoch that avoided
//!    excessive false positives); if a node's counter never touches zero
//!    during an epoch, a fault is flagged at the epoch boundary. This is
//!    the mechanism responsible for ForEVeR's ~3,000–12,000-cycle
//!    detection latencies in Figure 7.
//! 2. **Allocation Comparator** (from Shamshiri et al. [19]) — real-time
//!    comparisons on the allocation logic: grants without requests and
//!    non-one-hot grant vectors are flagged instantly.
//! 3. **End-to-end checker** — recomputed end-to-end checks on delivered
//!    packet contents: corrupted payloads are flagged on arrival.
//!    Misrouted traffic, by contrast, surfaces only through the counter
//!    imbalance it creates (a never-notified node going negative, the
//!    intended destination never returning to zero) and is therefore
//!    detected at epoch boundaries — which is exactly why ForEVeR's
//!    detection latency in Figure 7 is in the thousands of cycles.
//!
//! The checker network itself is modelled as contention-free with a
//! 1-cycle-per-hop latency (plus serialization), faithful to ForEVeR's
//! assumption that it is dimensioned never to back-pressure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use noc_sim::Observer;
use noc_types::geometry::NodeId;
use noc_types::record::{CycleRecord, EjectEvent};
use noc_types::{Cycle, Flit, NocConfig};
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// Which ForEVeR sub-mechanism raised a detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mechanism {
    /// Epoch-end counter check fed by the checker network.
    CheckerNetwork,
    /// Real-time Allocation Comparator.
    AllocationComparator,
    /// Destination-side end-to-end check.
    EndToEnd,
}

/// One ForEVeR detection event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Detection {
    /// Cycle the alarm was raised (epoch boundary for the counter check).
    pub cycle: Cycle,
    /// Node that raised it.
    pub node: NodeId,
    /// Sub-mechanism.
    pub mechanism: Mechanism,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Notification {
    arrival: Cycle,
    dest: NodeId,
    flits: u16,
}

impl Ord for Notification {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse ordering: BinaryHeap becomes a min-heap on arrival.
        other
            .arrival
            .cmp(&self.arrival)
            .then_with(|| other.dest.0.cmp(&self.dest.0))
    }
}

impl PartialOrd for Notification {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The ForEVeR runtime detector for one network. Attach as an observer.
///
/// # Example
///
/// ```
/// use nocalert_forever::Forever;
/// use noc_sim::Network;
/// use noc_types::NocConfig;
///
/// let cfg = NocConfig::small_test();
/// let mut net = Network::new(cfg.clone());
/// let mut fv = Forever::new(&cfg, 1_500);
/// for _ in 0..5_000 {
///     net.step_observed(&mut fv);
/// }
/// assert!(fv.detections().is_empty(), "fault-free run, no alarms");
/// ```
#[derive(Debug)]
pub struct Forever {
    cfg: NocConfig,
    epoch_len: u64,
    counters: Vec<i64>,
    reached_zero: Vec<bool>,
    notifications: BinaryHeap<Notification>,
    detections: Vec<Detection>,
    first: Option<Cycle>,
    last_cycle: Option<Cycle>,
    max_detections: usize,
}

// Manual impl so `clone_from` (the campaign arena's per-run reset) reuses
// the per-node counter vectors and the in-flight notification heap.
impl Clone for Forever {
    fn clone(&self) -> Forever {
        Forever {
            cfg: self.cfg.clone(),
            epoch_len: self.epoch_len,
            counters: self.counters.clone(),
            reached_zero: self.reached_zero.clone(),
            notifications: self.notifications.clone(),
            detections: self.detections.clone(),
            first: self.first,
            last_cycle: self.last_cycle,
            max_detections: self.max_detections,
        }
    }

    fn clone_from(&mut self, src: &Forever) {
        self.cfg.clone_from(&src.cfg);
        self.epoch_len = src.epoch_len;
        self.counters.clone_from(&src.counters);
        self.reached_zero.clone_from(&src.reached_zero);
        self.notifications.clone_from(&src.notifications);
        self.detections.clone_from(&src.detections);
        self.first = src.first;
        self.last_cycle = src.last_cycle;
        self.max_detections = src.max_detections;
    }
}

impl Forever {
    /// Creates a detector with the given epoch length (paper: 1,500).
    pub fn new(cfg: &NocConfig, epoch_len: u64) -> Forever {
        assert!(epoch_len > 0, "epoch length must be non-zero");
        let n = cfg.mesh.len();
        Forever {
            cfg: cfg.clone(),
            epoch_len,
            counters: vec![0; n],
            reached_zero: vec![true; n],
            notifications: BinaryHeap::new(),
            detections: Vec::new(),
            first: None,
            last_cycle: None,
            max_detections: 10_000,
        }
    }

    /// All raised detections (capped internally).
    pub fn detections(&self) -> &[Detection] {
        &self.detections
    }

    /// Cycle of the first detection, if any.
    pub fn first_detection(&self) -> Option<Cycle> {
        self.first
    }

    /// True if any mechanism has fired.
    pub fn any_detected(&self) -> bool {
        self.first.is_some()
    }

    /// Current per-node counter values (diagnostics).
    pub fn counters(&self) -> &[i64] {
        &self.counters
    }

    /// Structural equality of the runtime state: counters, epoch
    /// bookkeeping, in-flight notifications and raised detections. The
    /// notification heaps are compared as sorted multisets (heap layout is
    /// an implementation detail of the push/pop history). Equal states
    /// react identically to identical future traffic.
    pub fn state_eq(&self, other: &Forever) -> bool {
        if self.epoch_len != other.epoch_len
            || self.counters != other.counters
            || self.reached_zero != other.reached_zero
            || self.detections != other.detections
            || self.first != other.first
            || self.last_cycle != other.last_cycle
            || self.notifications.len() != other.notifications.len()
        {
            return false;
        }
        let mut a: Vec<&Notification> = self.notifications.iter().collect();
        let mut b: Vec<&Notification> = other.notifications.iter().collect();
        a.sort_unstable();
        b.sort_unstable();
        a == b
    }

    /// Clears all runtime state (counters, pending notifications, alarms).
    pub fn reset(&mut self) {
        let n = self.cfg.mesh.len();
        self.counters = vec![0; n];
        self.reached_zero = vec![true; n];
        self.notifications.clear();
        self.detections.clear();
        self.first = None;
        self.last_cycle = None;
    }

    fn detect(&mut self, cycle: Cycle, node: NodeId, mechanism: Mechanism) {
        if self.first.is_none() {
            self.first = Some(cycle);
        }
        if self.detections.len() < self.max_detections {
            self.detections.push(Detection {
                cycle,
                node,
                mechanism,
            });
        }
    }

    /// Per-cycle housekeeping: deliver due notifications, sample counters,
    /// evaluate epoch boundaries. Called on the first record of each cycle.
    fn tick(&mut self, cycle: Cycle) {
        // Deliver notifications that have arrived by now.
        while let Some(top) = self.notifications.peek() {
            if top.arrival > cycle {
                break;
            }
            let n = self.notifications.pop().expect("peeked");
            self.counters[n.dest.index()] += n.flits as i64;
        }
        // Sample: did the counter touch zero this cycle?
        for (i, &c) in self.counters.iter().enumerate() {
            if c == 0 {
                self.reached_zero[i] = true;
            }
        }
        // Epoch boundary?
        if cycle > 0 && cycle.is_multiple_of(self.epoch_len) {
            for i in 0..self.counters.len() {
                if !self.reached_zero[i] {
                    self.detect(cycle, NodeId(i as u16), Mechanism::CheckerNetwork);
                }
                self.reached_zero[i] = self.counters[i] == 0;
            }
        }
    }
}

impl Observer for Forever {
    fn on_cycle_record(&mut self, cycle: Cycle, rec: &CycleRecord) {
        if self.last_cycle != Some(cycle) {
            self.last_cycle = Some(cycle);
            self.tick(cycle);
        }
        // --- Allocation Comparator: instantaneous arbiter checks ---
        let router = rec.router;
        let mut bad = false;
        for e in rec.va1.iter().chain(rec.sa1.iter()) {
            bad |= e.grant & !e.req != 0 || e.grant.count_ones() > 1;
        }
        for e in &rec.va2 {
            bad |= e.grant & !e.req != 0 || e.grant.count_ones() > 1;
        }
        for e in &rec.sa2 {
            bad |= e.grant & !e.req != 0 || e.grant.count_ones() > 1;
        }
        if bad {
            self.detect(cycle, NodeId(router), Mechanism::AllocationComparator);
        }
    }

    fn on_quiescent_cycles(&self, _cycle: Cycle, _n: u64) -> bool {
        // Quiescent cycles only run `tick`: with no notification in
        // flight, every counter at zero and every epoch flag satisfied,
        // each tick — including any epoch boundary inside the window — is
        // provably a no-op, so the cycles may be skipped. Any imbalance
        // refuses the skip: epoch boundaries inside the window are exactly
        // where ForEVeR detects lost or misdelivered traffic.
        self.notifications.is_empty()
            && self.counters.iter().all(|&c| c == 0)
            && self.reached_zero.iter().all(|&z| z)
    }

    fn on_inject(&mut self, cycle: Cycle, flit: &Flit) {
        if !flit.is_head() {
            return;
        }
        // The checker network races ahead of the data packet: one cycle per
        // hop plus two cycles of interface latency, contention-free. The
        // notification pre-credits the destination's flit counter with the
        // packet length.
        let hops = self.cfg.mesh.distance(flit.src, flit.dest) as u64;
        self.notifications.push(Notification {
            arrival: cycle + hops + 2,
            dest: flit.dest,
            flits: self
                .cfg
                .packet_len(flit.class.min(self.cfg.message_classes - 1)),
        });
    }

    fn on_eject(&mut self, ev: &EjectEvent) {
        // End-to-end content check: corruption is caught on arrival.
        if ev.flit.corrupted {
            self.detect(ev.cycle, ev.node, Mechanism::EndToEnd);
        }
        // Every received flit decrements the receiving node's counter —
        // misdelivered flits drive the wrong node negative and leave the
        // intended destination positive; both surface at epoch ends.
        self.counters[ev.node.index()] -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::Network;
    use noc_types::flit::make_packet;
    use noc_types::PacketId;

    #[test]
    fn fault_free_run_never_alarms() {
        let cfg = NocConfig::small_test();
        let mut net = Network::new(cfg.clone());
        let mut fv = Forever::new(&cfg, 1_500);
        for _ in 0..6_000 {
            net.step_observed(&mut fv);
        }
        assert!(
            fv.detections().is_empty(),
            "false alarms: {:?}",
            &fv.detections()[..fv.detections().len().min(3)]
        );
    }

    #[test]
    fn lost_packet_detected_at_epoch_boundary() {
        let cfg = NocConfig::small_test();
        let mut fv = Forever::new(&cfg, 100);
        // Notify destination 5 of an incoming packet that never arrives.
        let flits = make_packet(PacketId(1), 1, NodeId(0), NodeId(5), 0, 5, 10);
        fv.on_inject(10, &flits[0]);
        // Drive the clock via empty records.
        let mut rec = noc_types::record::CycleRecord::default();
        for cy in 10..350 {
            rec.reset(0);
            fv.on_cycle_record(cy, &rec);
        }
        assert!(fv.any_detected());
        // Counter went nonzero after notification arrival (~cycle 16);
        // epoch boundaries at 100 (may still have been zero early in the
        // epoch) — the alarm fires at the first boundary whose whole epoch
        // saw a nonzero counter, i.e. cycle 200.
        assert_eq!(fv.first_detection(), Some(200));
        assert!(fv
            .detections()
            .iter()
            .all(|d| d.mechanism == Mechanism::CheckerNetwork));
    }

    #[test]
    fn delivered_packet_causes_no_alarm() {
        let cfg = NocConfig::small_test();
        let mut fv = Forever::new(&cfg, 100);
        let flits = make_packet(PacketId(1), 1, NodeId(0), NodeId(5), 0, 2, 10);
        fv.on_inject(10, &flits[0]);
        let mut rec = noc_types::record::CycleRecord::default();
        for cy in 10..60 {
            rec.reset(0);
            fv.on_cycle_record(cy, &rec);
            if cy == 40 {
                // Both flits arrive: counter back to zero. (The
                // notification pre-credited packet_len = 5 for class 0 in
                // the small_test config, so deliver what was credited.)
                for f in &flits {
                    fv.on_eject(&EjectEvent {
                        node: NodeId(5),
                        cycle: cy,
                        flit: *f,
                    });
                }
                // Drain the remaining credit with synthetic receptions so
                // the counter returns to zero, mimicking full delivery of
                // the notified flit count.
                let credited = cfg.packet_len(0);
                for _ in flits.len() as u16..credited {
                    fv.on_eject(&EjectEvent {
                        node: NodeId(5),
                        cycle: cy,
                        flit: flits[1],
                    });
                }
            }
        }
        for cy in 60..400 {
            rec.reset(0);
            fv.on_cycle_record(cy, &rec);
        }
        assert!(!fv.any_detected());
    }

    #[test]
    fn misdelivery_detected_at_epoch_boundary_not_instantly() {
        let cfg = NocConfig::small_test();
        let mut fv = Forever::new(&cfg, 100);
        let flits = make_packet(PacketId(1), 1, NodeId(0), NodeId(5), 0, 1, 0);
        // A never-notified node receives a stray flit: counter −1.
        fv.on_eject(&EjectEvent {
            node: NodeId(3),
            cycle: 42,
            flit: flits[0],
        });
        assert!(!fv.any_detected(), "no instantaneous detection");
        let mut rec = noc_types::record::CycleRecord::default();
        for cy in 43..250 {
            rec.reset(0);
            fv.on_cycle_record(cy, &rec);
        }
        // Counter is stuck at −1: the epoch after the stray arrival fails.
        assert_eq!(fv.first_detection(), Some(200));
        assert_eq!(fv.detections()[0].mechanism, Mechanism::CheckerNetwork);
    }

    #[test]
    fn corrupted_flit_detected_end_to_end() {
        let cfg = NocConfig::small_test();
        let mut fv = Forever::new(&cfg, 1_500);
        let mut f = make_packet(PacketId(1), 1, NodeId(0), NodeId(5), 0, 1, 0)[0];
        f.corrupted = true;
        fv.on_eject(&EjectEvent {
            node: NodeId(5),
            cycle: 42,
            flit: f,
        });
        assert_eq!(fv.first_detection(), Some(42));
        assert_eq!(fv.detections()[0].mechanism, Mechanism::EndToEnd);
    }

    #[test]
    fn allocation_comparator_fires_on_bad_grant() {
        let cfg = NocConfig::small_test();
        let mut fv = Forever::new(&cfg, 1_500);
        let mut rec = noc_types::record::CycleRecord::default();
        rec.reset(7);
        rec.sa1.push(noc_types::record::LocalArbEvent {
            port: 0,
            req: 0b0001,
            grant: 0b0010, // grant w/o request
            credit_ok: 0b0001,
        });
        fv.on_cycle_record(5, &rec);
        assert_eq!(fv.first_detection(), Some(5));
        assert_eq!(
            fv.detections()[0].mechanism,
            Mechanism::AllocationComparator
        );
    }

    #[test]
    fn reset_clears_everything() {
        let cfg = NocConfig::small_test();
        let mut fv = Forever::new(&cfg, 100);
        let mut f = make_packet(PacketId(1), 1, NodeId(0), NodeId(5), 0, 1, 0)[0];
        f.corrupted = true;
        fv.on_inject(0, &f);
        fv.on_eject(&EjectEvent {
            node: NodeId(2),
            cycle: 3,
            flit: f,
        });
        assert!(fv.any_detected());
        fv.reset();
        assert!(!fv.any_detected());
        assert!(fv.detections().is_empty());
    }
}
