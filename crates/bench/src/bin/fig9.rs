//! **Figure 9** — cumulative distribution of invariance violations as a
//! function of the number of *simultaneously asserted* checkers at the
//! first detection cycle.
//!
//! Paper: most violations trip two checkers at once; the maximum observed
//! was nine.
//!
//! ```text
//! cargo run --release -p nocalert-bench --bin fig9 -- [--sites N|--full] \
//!     [--warm W] [--threads T] [--json out.json] \
//!     [--checkpoint-dir D] [--resume]
//! ```

use golden::stats::simultaneity_cdf;
use nocalert_bench::{maybe_write_json, Args, Experiment};
use serde::Serialize;

#[derive(Serialize)]
struct Fig9Out {
    cdf: Vec<(u8, f64)>,
}

fn main() {
    let args = Args::from_env();
    let exp = Experiment::from_args(&args);
    let warm: u64 = args.get("warm", 32_000);

    println!("== Figure 9: simultaneously asserted checkers at first detection ==");
    let (_c, mut results) = exp.run_campaign(0);
    let (_c2, mut r2) = exp.run_campaign(warm);
    results.append(&mut r2);

    let cdf = simultaneity_cdf(&results);
    println!("{:>12} {:>12}", "#checkers", "cumulative %");
    for (n, p) in &cdf {
        println!("{n:>12} {p:>11.2}%");
    }
    if let Some((max, _)) = cdf.last() {
        println!("\nmaximum simultaneously asserted checkers: {max} (paper: 9)");
    }
    // The mode of the distribution (paper: 2).
    let mut prev = 0.0;
    let mut mode = (0u8, 0.0f64);
    for (n, p) in &cdf {
        let mass = p - prev;
        if mass > mode.1 {
            mode = (*n, mass);
        }
        prev = *p;
    }
    println!(
        "most common count: {} checkers ({:.1}% of detections; paper: 2)",
        mode.0, mode.1
    );
    maybe_write_json(&args, &Fig9Out { cdf });
}
