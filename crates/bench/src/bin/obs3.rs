//! **Observation 3** — invariance 5 ("grant to nobody") is benign under
//! transient faults (a one-cycle bubble, like a NOP) but malicious under
//! permanent faults (packets stuck in buffers forever).
//!
//! Sweeps grant-suppression faults (bit flips on arbiter grant wires) in
//! both temporal flavours and compares the ground-truth verdicts.
//!
//! ```text
//! cargo run --release -p nocalert-bench --bin obs3 -- [--sites N] [--warm W] \
//!     [--checkpoint-dir D] [--resume]
//! ```

use fault::FaultSpec;
use golden::{Campaign, CampaignConfig};
use noc_types::site::SignalKind;
use nocalert::CheckerId;
use nocalert_bench::{row, Args, Experiment};

fn main() {
    let args = Args::from_env();
    let exp = Experiment::from_args(&args);
    let warm: u64 = args.get("warm", 8_000);
    let n: usize = args.get("sites", 40);

    println!("== Observation 3: invariance 5 under transient vs permanent faults ==");
    let cc = CampaignConfig::paper_defaults(exp.noc.clone(), warm);
    let campaign = Campaign::new(cc);

    // Grant wires of SA1/SA2 arbiters: flipping a set bit suppresses the
    // winner ("grant to nobody").
    let grant_sites: Vec<_> = fault::enumerate_sites(&exp.noc)
        .into_iter()
        .filter(|s| matches!(s.signal, SignalKind::Sa1Grant | SignalKind::Sa2Grant))
        .collect();
    let sites = fault::sample::stride(&grant_sites, n);
    println!(
        "{} grant-wire sites sampled from {}",
        sites.len(),
        grant_sites.len()
    );

    let mut stats = [[0u32; 3]; 2]; // [kind][hit-inv5 / malicious / benign]
    for (k, phase, mk) in [
        (
            0usize,
            "transient",
            FaultSpec::transient as fn(_, _) -> FaultSpec,
        ),
        (
            1usize,
            "permanent",
            FaultSpec::permanent as fn(_, _) -> FaultSpec,
        ),
    ] {
        let specs: Vec<FaultSpec> = sites
            .iter()
            .map(|&s| mk(s, campaign.injection_cycle()))
            .collect();
        for r in exp.run_resilient(&campaign, &specs, phase) {
            if r.fault_hits == 0 {
                continue;
            }
            if r.checkers.contains(&CheckerId(5)) {
                stats[k][0] += 1;
                if r.malicious() {
                    stats[k][1] += 1;
                } else {
                    stats[k][2] += 1;
                }
            }
        }
    }

    for (k, name) in [(0, "transient"), (1, "permanent")] {
        println!(
            "\n{name} faults with invariance-5 assertions: {}",
            stats[k][0]
        );
        row("  malicious (network correctness violated)", stats[k][1]);
        row("  benign (momentary bubble only)", stats[k][2]);
    }
    let transient_malice = stats[0][1] as f64 / stats[0][0].max(1) as f64;
    let permanent_malice = stats[1][1] as f64 / stats[1][0].max(1) as f64;
    println!(
        "\nmalicious fraction: transient {:.0}% vs permanent {:.0}% — {}",
        transient_malice * 100.0,
        permanent_malice * 100.0,
        if permanent_malice > transient_malice {
            "permanent grant-suppression is the dangerous case, as Observation 3 states"
        } else {
            "UNEXPECTED: check the configuration"
        }
    );
}
