//! NIC-level end-to-end reliability: ACK/NACK with timeout and backoff.
//!
//! Containment (the `recovery` module) deliberately destroys flits, so the
//! network alone can no longer promise delivery. This module adds the
//! classical transport answer on top of the NICs: every application packet
//! is tracked by the sender until the receiver's acknowledgement returns;
//! a lost or corrupted packet is retransmitted after a configurable
//! timeout with exponential backoff, and the receiver deduplicates so the
//! application sees exactly-once delivery.
//!
//! ## Wire honesty
//!
//! Flits carry no payload bits in this model (identity only), so the
//! transport keeps a *registry* mapping each on-wire [`PacketId`] to what
//! its payload would encode: the application message id, whether it is a
//! data packet, an ACK or a NACK, and its endpoints. Retransmissions and
//! acknowledgements are **fresh packets** (new `PacketId`, new flit uids)
//! fabricated through `Network::enqueue_packet` — per-packet invariances
//! (e.g. the end-to-end checker) never see the same identity twice, and
//! acknowledgements are full packets of the data packet's message class,
//! because invariance 28 fixes the flit count per class. Retransmission
//! overhead is therefore measured honestly, full-length packets included.

use crate::network::{Network, Observer};
use noc_types::record::EjectEvent;
use noc_types::{Cycle, Flit, NocConfig};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Retransmission policy of the end-to-end transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArqConfig {
    /// Base acknowledgement timeout in cycles: a data packet unacknowledged
    /// this long after entering the wire is retransmitted.
    pub ack_timeout: Cycle,
    /// Timeout multiplier applied per attempt (exponential backoff).
    pub backoff_factor: u32,
    /// Exponent cap: attempt counts beyond this stop growing the timeout.
    pub backoff_cap: u32,
    /// Retransmissions per message before the sender gives up (a give-up
    /// is a delivery failure the oracle reports).
    pub max_retries: u32,
}

impl ArqConfig {
    /// Defaults sized for the canonical meshes. The timeout must sit well
    /// above the worst-case loaded round trip (data + full-length ACK) or
    /// the senders mass-retransmit, double the offered load, and drive the
    /// mesh into congestion collapse — on the 8×8 at paper rates that
    /// means thousands of cycles, not hundreds.
    pub fn default_policy() -> ArqConfig {
        ArqConfig {
            ack_timeout: 2_500,
            backoff_factor: 2,
            backoff_cap: 3,
            max_retries: 8,
        }
    }

    /// Checks the policy for values the retransmission machine cannot run
    /// with.
    ///
    /// # Errors
    ///
    /// Returns [`noc_types::SimError::ArqInvalid`] for a zero timeout
    /// (retransmit storm) or a zero backoff factor (zero timeouts after
    /// the first retry).
    pub fn validate(&self) -> Result<(), noc_types::SimError> {
        if self.ack_timeout == 0 {
            return Err(noc_types::SimError::ArqInvalid {
                reason: "ack timeout must be non-zero",
            });
        }
        if self.backoff_factor == 0 {
            return Err(noc_types::SimError::ArqInvalid {
                reason: "backoff factor must be non-zero",
            });
        }
        Ok(())
    }

    /// The timeout for a message that has already been attempted
    /// `attempts` times.
    pub fn timeout_after(&self, attempts: u32) -> Cycle {
        let exp = attempts.min(self.backoff_cap);
        self.ack_timeout
            .saturating_mul(self.backoff_factor.saturating_pow(exp) as u64)
    }
}

/// What a packet's payload bits encode (registry entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WireKind {
    /// Application data for message `app`.
    Data,
    /// Acknowledgement of message `app`.
    Ack,
    /// Negative acknowledgement (corrupted arrival) of message `app`.
    Nack,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WireMeta {
    kind: WireKind,
    /// Application message id (the original data packet's on-wire id).
    app: u64,
    src: u16,
    dest: u16,
    class: u8,
    len: u16,
}

/// Sender-side state of one unacknowledged application message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pending {
    src: u16,
    dest: u16,
    class: u8,
    len: u16,
    offered_at: Cycle,
    attempts: u32,
    deadline: Cycle,
}

/// Receiver-side assembly of one on-wire packet.
#[derive(Debug, Clone, Default, PartialEq)]
struct RxState {
    seqs: BTreeSet<u16>,
    corrupted: bool,
    done: bool,
}

/// A control message queued for fabrication at the next `post_step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Outbox {
    kind: WireKind,
    app: u64,
    from: u16,
    to: u16,
    class: u8,
    len: u16,
}

/// One exactly-once delivery, as the application saw it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveryRecord {
    /// Application message id.
    pub app: u64,
    /// Source node.
    pub src: u16,
    /// Destination node.
    pub dest: u16,
    /// Cycle the first copy entered the wire.
    pub offered_at: Cycle,
    /// Cycle the first complete, uncorrupted copy finished arriving.
    pub delivered_at: Cycle,
    /// Wire attempts up to that point (0 = first transmission sufficed).
    pub attempts: u32,
}

/// Aggregate transport counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportStats {
    /// Application messages that entered the wire.
    pub offered: u64,
    /// Messages delivered exactly once to the application.
    pub delivered: u64,
    /// Data retransmissions sent.
    pub retransmits: u64,
    /// ACK packets sent.
    pub acks_sent: u64,
    /// NACK packets sent (corrupted complete arrivals).
    pub nacks_sent: u64,
    /// Duplicate complete arrivals suppressed by receiver dedup.
    pub duplicates_suppressed: u64,
    /// Complete arrivals discarded for corruption.
    pub corrupted_arrivals: u64,
    /// Flits ejected at a node other than their packet's destination.
    pub misrouted_flits: u64,
    /// Ejected flits with no registry entry (stale replays, fabrications).
    pub stray_flits: u64,
    /// Messages abandoned after `max_retries` (delivery failures).
    pub gave_up: u64,
}

/// The end-to-end reliability layer over all NICs of one network.
///
/// Attach it as an [`Observer`] during `step_observed`, then call
/// [`Transport::post_step`] once per cycle to let it fabricate control
/// packets and fire retransmission timers:
///
/// ```ignore
/// net.step_observed(&mut transport);
/// transport.post_step(&mut net);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Transport {
    arq: ArqConfig,
    packet_lengths: Vec<u16>,
    registry: BTreeMap<u64, WireMeta>,
    pending: BTreeMap<u64, Pending>,
    delivered: BTreeSet<u64>,
    rx: BTreeMap<u64, RxState>,
    outbox: Vec<Outbox>,
    records: Vec<DeliveryRecord>,
    failed: Vec<u64>,
    stats: TransportStats,
    cycle_seen: Cycle,
}

impl Transport {
    /// Creates the transport for networks built from `cfg`.
    pub fn new(cfg: &NocConfig, arq: ArqConfig) -> Transport {
        Transport {
            arq,
            packet_lengths: cfg.packet_lengths.clone(),
            registry: BTreeMap::new(),
            pending: BTreeMap::new(),
            delivered: BTreeSet::new(),
            rx: BTreeMap::new(),
            outbox: Vec::new(),
            records: Vec::new(),
            failed: Vec::new(),
            stats: TransportStats::default(),
            cycle_seen: 0,
        }
    }

    /// Aggregate counters.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// Exactly-once deliveries in arrival order.
    pub fn records(&self) -> &[DeliveryRecord] {
        self.records.as_slice()
    }

    /// Application ids the sender gave up on (delivery failures).
    pub fn failed(&self) -> &[u64] {
        self.failed.as_slice()
    }

    /// Unacknowledged application messages currently tracked.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// True when no message awaits acknowledgement and no control packet
    /// awaits fabrication — the transport's drain criterion.
    pub fn quiescent(&self) -> bool {
        self.pending.is_empty() && self.outbox.is_empty()
    }

    fn class_len(&self, class: u8) -> u16 {
        self.packet_lengths
            .get(class as usize)
            .copied()
            .unwrap_or(1)
    }

    fn complete(&self, pid: u64) -> bool {
        let (Some(meta), Some(rx)) = (self.registry.get(&pid), self.rx.get(&pid)) else {
            return false;
        };
        !rx.done
            && rx.seqs.len() >= meta.len as usize
            && (0..meta.len).all(|s| rx.seqs.contains(&s))
    }

    /// Dispatches one fully assembled packet.
    fn on_complete(&mut self, pid: u64, at: Cycle) {
        let Some(meta) = self.registry.get(&pid).copied() else {
            return;
        };
        if let Some(rx) = self.rx.get_mut(&pid) {
            rx.done = true;
        }
        let corrupted = self.rx.get(&pid).map(|r| r.corrupted).unwrap_or(false);
        match meta.kind {
            WireKind::Data => {
                if self.delivered.contains(&meta.app) {
                    // Late duplicate (retransmit raced the ACK): suppress,
                    // but re-acknowledge so the sender stops.
                    self.stats.duplicates_suppressed += 1;
                    self.queue_ctl(WireKind::Ack, meta);
                } else if corrupted {
                    self.stats.corrupted_arrivals += 1;
                    self.queue_ctl(WireKind::Nack, meta);
                } else {
                    self.delivered.insert(meta.app);
                    self.stats.delivered += 1;
                    if let Some(p) = self.pending.get(&meta.app) {
                        self.records.push(DeliveryRecord {
                            app: meta.app,
                            src: meta.src,
                            dest: meta.dest,
                            offered_at: p.offered_at,
                            delivered_at: at,
                            attempts: p.attempts,
                        });
                    }
                    self.queue_ctl(WireKind::Ack, meta);
                }
            }
            WireKind::Ack => {
                // Arrived back at the data sender: the message is done.
                // A corrupted ACK still acknowledges (its identity is the
                // information); real hardware would checksum-drop it, which
                // the next retransmission round would absorb identically.
                self.pending.remove(&meta.app);
            }
            WireKind::Nack => {
                if let Some(p) = self.pending.get_mut(&meta.app) {
                    // Retransmit immediately: the receiver has proven the
                    // path delivers, the copy was just damaged.
                    p.deadline = at;
                }
            }
        }
    }

    fn queue_ctl(&mut self, kind: WireKind, data: WireMeta) {
        self.outbox.push(Outbox {
            kind,
            app: data.app,
            from: data.dest,
            to: data.src,
            class: data.class,
            len: data.len,
        });
    }

    /// Fabricates queued control packets and fires retransmission timers.
    /// Call once per cycle, after `step_observed`.
    pub fn post_step(&mut self, net: &mut Network) {
        let cy = net.cycle();
        // 1. Control packets decided during the observation phase.
        let outbox = std::mem::take(&mut self.outbox);
        for msg in outbox {
            let Some(pid) = net.enqueue_packet(msg.from, msg.to, msg.class, msg.len) else {
                continue;
            };
            self.registry.insert(
                pid.0,
                WireMeta {
                    kind: msg.kind,
                    app: msg.app,
                    src: msg.from,
                    dest: msg.to,
                    class: msg.class,
                    len: msg.len,
                },
            );
            match msg.kind {
                WireKind::Ack => self.stats.acks_sent += 1,
                WireKind::Nack => self.stats.nacks_sent += 1,
                WireKind::Data => {}
            }
        }
        // 2. Timeouts.
        let due: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| cy >= p.deadline)
            .map(|(&app, _)| app)
            .collect();
        for app in due {
            let Some(p) = self.pending.get(&app).copied() else {
                continue;
            };
            if p.attempts >= self.arq.max_retries {
                self.pending.remove(&app);
                if !self.delivered.contains(&app) {
                    self.failed.push(app);
                    self.stats.gave_up += 1;
                }
                continue;
            }
            let Some(pid) = net.enqueue_packet(p.src, p.dest, p.class, p.len) else {
                continue;
            };
            self.registry.insert(
                pid.0,
                WireMeta {
                    kind: WireKind::Data,
                    app,
                    src: p.src,
                    dest: p.dest,
                    class: p.class,
                    len: p.len,
                },
            );
            if let Some(p) = self.pending.get_mut(&app) {
                p.attempts += 1;
                p.deadline = cy.saturating_add(self.arq.timeout_after(p.attempts));
            }
            self.stats.retransmits += 1;
        }
    }
}

impl Observer for Transport {
    fn on_inject(&mut self, cycle: Cycle, flit: &Flit) {
        self.cycle_seen = cycle;
        if !flit.is_head() {
            return;
        }
        let pid = flit.packet.0;
        if let Some(meta) = self.registry.get(&pid).copied() {
            // A transport-fabricated packet entered the wire; (re)start the
            // sender timer for data packets now that it is actually moving.
            if meta.kind == WireKind::Data {
                let timeout = self
                    .pending
                    .get(&meta.app)
                    .map(|p| self.arq.timeout_after(p.attempts))
                    .unwrap_or(self.arq.ack_timeout);
                if let Some(p) = self.pending.get_mut(&meta.app) {
                    p.deadline = cycle.saturating_add(timeout);
                }
            }
            return;
        }
        // Unknown head flit: ordinary NIC-generated application traffic.
        let len = self.class_len(flit.class);
        self.registry.insert(
            pid,
            WireMeta {
                kind: WireKind::Data,
                app: pid,
                src: flit.src.0,
                dest: flit.dest.0,
                class: flit.class,
                len,
            },
        );
        self.pending.insert(
            pid,
            Pending {
                src: flit.src.0,
                dest: flit.dest.0,
                class: flit.class,
                len,
                offered_at: cycle,
                attempts: 0,
                deadline: cycle.saturating_add(self.arq.ack_timeout),
            },
        );
        self.stats.offered += 1;
    }

    fn on_eject(&mut self, ev: &EjectEvent) {
        let flit = ev.flit;
        let pid = flit.packet.0;
        let Some(meta) = self.registry.get(&pid).copied() else {
            self.stats.stray_flits += 1;
            return;
        };
        if ev.node.0 != meta.dest {
            self.stats.misrouted_flits += 1;
            return;
        }
        {
            let rx = self.rx.entry(pid).or_default();
            if rx.done {
                self.stats.stray_flits += 1;
                return;
            }
            if flit.corrupted || flit.origin == noc_types::flit::FlitOrigin::StaleReplay {
                rx.corrupted = true;
            }
            rx.seqs.insert(flit.seq);
        }
        if self.complete(pid) {
            self.on_complete(pid, ev.cycle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::NocConfig;

    fn drive(net: &mut Network, t: &mut Transport, cycles: u64) {
        for _ in 0..cycles {
            net.step_observed(t);
            t.post_step(net);
        }
    }

    #[test]
    fn arq_config_validation_and_backoff() {
        let arq = ArqConfig::default_policy();
        assert!(arq.validate().is_ok());
        assert_eq!(arq.timeout_after(0), 2_500);
        assert_eq!(arq.timeout_after(1), 5_000);
        assert_eq!(arq.timeout_after(3), 20_000);
        // Capped at backoff_cap.
        assert_eq!(arq.timeout_after(40), 20_000);
        assert!(ArqConfig {
            ack_timeout: 0,
            ..arq
        }
        .validate()
        .is_err());
        assert!(ArqConfig {
            backoff_factor: 0,
            ..arq
        }
        .validate()
        .is_err());
    }

    #[test]
    fn fault_free_messages_deliver_and_quiesce() {
        let mut cfg = NocConfig::small_test();
        cfg.injection_rate = 0.05;
        let mut net = Network::new(cfg.clone());
        let mut t = Transport::new(&cfg, ArqConfig::default_policy());
        drive(&mut net, &mut t, 1_500);
        net.set_injection_enabled(false);
        drive(&mut net, &mut t, 4_000);
        let s = t.stats();
        assert!(s.offered > 0, "traffic must flow");
        assert_eq!(s.delivered, s.offered, "all messages delivered");
        assert_eq!(s.gave_up, 0);
        assert_eq!(s.misrouted_flits, 0);
        assert!(
            t.quiescent(),
            "all ACKs returned: {} pending",
            t.pending_count()
        );
        assert_eq!(t.records().len() as u64, s.offered);
        // ACK overhead: one ACK per delivery (no losses, no duplicates).
        assert_eq!(s.acks_sent, s.delivered);
        assert_eq!(s.retransmits, 0, "nothing times out fault-free");
    }

    #[test]
    fn manual_message_round_trip() {
        let cfg = {
            let mut c = NocConfig::small_test();
            c.injection_rate = 0.0;
            c
        };
        let mut net = Network::new(cfg.clone());
        let mut t = Transport::new(&cfg, ArqConfig::default_policy());
        let pid = net.enqueue_packet(0, 15, 0, 5).expect("valid endpoints");
        drive(&mut net, &mut t, 600);
        assert_eq!(t.stats().offered, 1);
        assert_eq!(t.stats().delivered, 1);
        assert!(t.quiescent());
        let rec = t.records()[0];
        assert_eq!(rec.app, pid.0);
        assert_eq!(rec.src, 0);
        assert_eq!(rec.dest, 15);
        assert_eq!(rec.attempts, 0);
        assert!(rec.delivered_at > rec.offered_at);
    }
}
