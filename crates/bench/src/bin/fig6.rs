//! **Figure 6** — fault-coverage breakdown (TP/FP/TN/FN) for NoCAlert,
//! NoCAlert-Cautious and ForEVeR at two injection instants: cycle 0 (empty
//! network) and a warmed-up steady state.
//!
//! Also prints Observation 1 (0% false negatives) explicitly.
//!
//! ```text
//! cargo run --release -p nocalert-bench --bin fig6 -- [--sites N|--full] \
//!     [--warm W] [--rate F] [--threads T] [--json out.json] \
//!     [--checkpoint-dir D] [--resume]
//! ```

use golden::stats::{breakdown, Breakdown};
use golden::Detector;
use nocalert_bench::{maybe_write_json, Args, Experiment};
use serde::Serialize;

#[derive(Serialize)]
struct Fig6Out {
    warmups: Vec<u64>,
    rows: Vec<(String, u64, Breakdown)>,
}

fn main() {
    let args = Args::from_env();
    let exp = Experiment::from_args(&args);
    let warm: u64 = args.get("warm", 32_000);
    let warmups = [0u64, warm];

    println!("== Figure 6: fault coverage breakdown (over all injected faults) ==");
    println!(
        "mesh {}x{}, {} sampled sites, uniform random @ {}",
        exp.noc.mesh.width(),
        exp.noc.mesh.height(),
        exp.site_list().len(),
        exp.noc.injection_rate
    );

    let mut out = Fig6Out {
        warmups: warmups.to_vec(),
        rows: Vec::new(),
    };
    for &w in &warmups {
        let (_c, results) = exp.run_campaign(w);
        println!("\n-- injection at cycle {w} --");
        println!(
            "{:<18} {:>8} {:>8} {:>8} {:>8}",
            "detector", "TP%", "FP%", "TN%", "FN%"
        );
        for (name, d) in [
            ("NoCAlert", Detector::NoCAlert),
            ("NoCAlert Cautious", Detector::NoCAlertCautious),
            ("ForEVeR", Detector::ForEVeR),
        ] {
            let b = breakdown(&results, d);
            println!(
                "{:<18} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
                name, b.tp, b.fp, b.tn, b.fn_
            );
            out.rows.push((name.to_string(), w, b));
        }
    }

    println!("\nObservation 1: NoCAlert false negatives across all runs:");
    let all_zero = out
        .rows
        .iter()
        .filter(|(n, _, _)| n.starts_with("NoCAlert"))
        .all(|(_, _, b)| b.fn_ == 0.0);
    println!(
        "  {} (paper: 0% false negatives)",
        if all_zero {
            "0.00% — CONFIRMED"
        } else {
            "NON-ZERO — see rows above"
        }
    );
    maybe_write_json(&args, &out);
}
