//! **Observation 5 / Section 4.3** — faults that do not cause an
//! invariance violation *at the injection instant* either (a) trigger a
//! subsequent invariance violation and are captured, or (b) never violate
//! any invariance — and those are **always benign**. The paper reports a
//! 78% / 22% split between (b) and (a).
//!
//! ```text
//! cargo run --release -p nocalert-bench --bin obs5 -- [--sites N|--full] \
//!     [--warm W] [--threads T] \
//!     [--checkpoint-dir D] [--resume]
//! ```

use nocalert_bench::{row, Args, Experiment};

fn main() {
    let args = Args::from_env();
    let exp = Experiment::from_args(&args);
    let warm: u64 = args.get("warm", 32_000);

    println!("== Observation 5: non-invariant faults are benign ==");
    let (_c, results) = exp.run_campaign(warm);

    // Consider only faults that actually flipped a live wire.
    let hit: Vec<_> = results.iter().filter(|r| r.fault_hits > 0).collect();
    // "No invariance violation at the instance of injection".
    let not_instant: Vec<_> = hit
        .iter()
        .filter(|r| r.nocalert.latency != Some(0))
        .collect();
    let never: Vec<_> = not_instant
        .iter()
        .filter(|r| !r.nocalert.detected)
        .collect();
    let later: Vec<_> = not_instant.iter().filter(|r| r.nocalert.detected).collect();
    let never_malicious = never.iter().filter(|r| r.malicious()).count();
    let later_malicious = later.iter().filter(|r| r.malicious()).count();

    row("faults that touched a live wire", hit.len());
    row(
        "…without an instant invariance violation",
        not_instant.len(),
    );
    row(
        "   never violated any invariance (paper: 78%)",
        format!(
            "{} ({:.0}%)",
            never.len(),
            100.0 * never.len() as f64 / not_instant.len().max(1) as f64
        ),
    );
    row(
        "   violated one later and were captured (22%)",
        format!(
            "{} ({:.0}%)",
            later.len(),
            100.0 * later.len() as f64 / not_instant.len().max(1) as f64
        ),
    );
    row(
        "never-violating faults that were malicious",
        format!("{never_malicious} (paper & Observation 5: must be 0)"),
    );
    row("later-captured faults that were malicious", later_malicious);

    if never_malicious == 0 {
        println!("\nObservation 5 CONFIRMED: every fault that evades all checkers is benign.");
    } else {
        println!("\nObservation 5 VIOLATED — investigate the cases above.");
    }
}
