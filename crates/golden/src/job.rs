//! Job driver: executes a serialized [`JobSpec`] against the campaign
//! engines on behalf of the `nocalertd` service (DESIGN.md §15).
//!
//! The driver is the single shared runner behind both the service and
//! the `bench` binaries: it translates a wire-level spec into the same
//! engine calls a direct binary would make — [`Campaign`] for transient
//! sweeps, [`RecoveryCampaign`] for containment sweeps,
//! [`AttackCampaign`] for the compromised-router matrix, and
//! [`AgingHarness`] for accumulating-fault epochs — so a job's
//! aggregates are bit-identical to a direct run of the same spec at any
//! worker count, including across kill/resume cycles.
//!
//! Three service concerns layer on top of the raw engines:
//!
//! * **Chunked driving.** Sweep kinds run their work-list in chunks of
//!   a few units per worker, emitting a [`JobEvent::Progress`] after
//!   each chunk and honouring cooperative cancellation between chunks.
//!   Chunking never changes results: the engines key completed work by
//!   spec, so re-aggregation in input order is chunk-oblivious.
//! * **Golden-reference caching.** [`GoldenCache`] memoises warmed
//!   [`Campaign`]s by configuration so concurrent/sequential transient
//!   jobs with the same configuration share one golden trajectory
//!   instead of re-simulating the warm-up per job.
//! * **Incident clustering.** Raw per-site reports are folded into
//!   [`Incident`] timelines (fault site → checker firings → containment
//!   actions → delivery outcome) in canonical input order, plus an
//!   FNV-1a digest over the canonical report serialization — the
//!   bit-identity comparator the service's tests pin.

use crate::aging::{AgingError, AgingHarness, AgingOptions, EpochLog, EpochReport};
use crate::attack::{
    standard_cells, AttackCampaign, AttackCampaignConfig, AttackCampaignOptions, AttackCellReport,
};
use crate::campaign::{
    Campaign, CampaignConfig, CampaignError, ResilienceOptions, RunOutcome, SiteReport,
};
use crate::recovery::{
    standard_recovery_specs, DeliveryVerdict, RecoveryCampaign, RecoveryCampaignConfig,
    RecoveryCampaignOptions, RecoveryOptions, RecoverySiteReport,
};
use fault::FaultSpec;
use noc_types::config::ConfigError;
use noc_types::{
    ContainmentStep, Cycle, Incident, JobEvent, JobKind, JobResult, JobSpec, SimError,
};
use serde::Serialize;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Serializes any compat-serde value to its canonical JSON string.
///
/// The compat serializer is infallible (every `to_value` is total), so
/// this helper is too — it exists to give the cache key and the digest
/// one canonical rendering.
fn json_of<T: Serialize>(v: &T) -> String {
    let mut out = String::new();
    v.to_value().write_json(&mut out);
    out
}

/// FNV-1a (64-bit) digest over the canonical serialization of `rows`,
/// one JSON line per row, in order. Hex-encoded.
///
/// This is the service's bit-identity comparator: two runs of the same
/// spec — at different worker counts, through different chunk schedules,
/// or across a kill/resume cycle — must produce the same digest.
pub fn digest_rows<T: Serialize>(rows: &[T]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for row in rows {
        let mut line = json_of(row);
        line.push('\n');
        for byte in line.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0100_0000_01b3);
        }
    }
    format!("{hash:016x}")
}

/// Memoised warmed transient campaigns, keyed by configuration.
///
/// [`Campaign::try_new`] is the expensive step of a transient job (it
/// runs the fault-free warm-up and the golden rollout); the service
/// shares one instance across every job with the same
/// [`CampaignConfig`]. Entries are kept for the cache's lifetime — the
/// working set is one entry per distinct configuration the service has
/// seen, and a `Campaign` is a few snapshots, not a full trajectory
/// store, until the batched engine lazily builds its cache inside.
#[derive(Debug, Default)]
pub struct GoldenCache {
    campaigns: Mutex<HashMap<String, Arc<Campaign>>>,
}

impl GoldenCache {
    /// An empty cache.
    pub fn new() -> GoldenCache {
        GoldenCache::default()
    }

    /// Number of distinct configurations cached.
    pub fn len(&self) -> usize {
        self.campaigns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The warmed campaign for `cc`, building it on first use.
    ///
    /// The build runs outside the lock (it can take seconds), so two
    /// racing jobs may both build; the first to finish wins and the
    /// loser's copy is dropped — results are identical either way.
    ///
    /// # Errors
    ///
    /// Propagates [`Campaign::try_new`] failures (warm-up violation,
    /// golden reference not drained, invalid configuration).
    pub fn get(&self, cc: &CampaignConfig) -> Result<Arc<Campaign>, CampaignError> {
        let key = json_of(cc);
        if let Some(hit) = self
            .campaigns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            return Ok(Arc::clone(hit));
        }
        let built = Arc::new(Campaign::try_new(cc.clone())?);
        let mut map = self
            .campaigns
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let entry = map.entry(key).or_insert_with(|| Arc::clone(&built));
        Ok(Arc::clone(entry))
    }
}

/// Executes [`JobSpec`]s through the campaign engines, streaming
/// [`JobEvent`]s to a caller-supplied sink.
#[derive(Debug, Clone, Default)]
pub struct JobDriver {
    /// Durable checkpoint/journal directory for this job. `None` runs
    /// memory-only (no kill-safety, no resume).
    pub checkpoint_dir: Option<PathBuf>,
    /// Treat a populated checkpoint directory as prior progress instead
    /// of refusing it. The service sets this when re-enqueueing
    /// incomplete jobs after a restart.
    pub resume: bool,
    /// Cooperative cancellation flag, checked between chunks (and
    /// between units inside the engines).
    pub cancel: Option<Arc<AtomicBool>>,
    /// Shared golden-reference cache for transient jobs.
    pub cache: Arc<GoldenCache>,
}

impl JobDriver {
    fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
    }

    /// Runs `spec` to completion (or cancellation), emitting progress
    /// and incident events to `on_event`, and returns the aggregate.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Substrate`] for an invalid spec, plus every
    /// engine error (checkpoint refusal/corruption, warm-up violation,
    /// lost worker). A cancelled job is *not* an error: it returns a
    /// result with `interrupted = true` covering the units that did run.
    pub fn run(
        &self,
        spec: &JobSpec,
        on_event: &mut dyn FnMut(JobEvent),
    ) -> Result<JobResult, CampaignError> {
        spec.validate().map_err(CampaignError::Substrate)?;
        match spec.kind {
            JobKind::Transient => self.run_transient(spec, on_event),
            JobKind::Recovery => self.run_recovery(spec, on_event),
            JobKind::Attack => self.run_attack(spec, on_event),
            JobKind::Aging => self.run_aging(spec, on_event),
        }
    }

    /// Units per progress chunk: a few work items per worker, so the
    /// feed updates at a human cadence without reloading the journal
    /// per unit.
    fn chunk_size(spec: &JobSpec) -> usize {
        (spec.threads as usize).saturating_mul(4).max(1)
    }

    /// The injection instant shared by the recovery and attack sweeps:
    /// a quarter into the active window, so containment has the rest of
    /// the window plus the drain to act.
    fn sweep_start(spec: &JobSpec) -> Cycle {
        spec.warmup + (spec.window / 4).max(1)
    }

    /// Closed-loop rollout options shared by the recovery and attack
    /// sweeps: paper-shaped policies under the job's window geometry.
    fn sweep_opts(spec: &JobSpec) -> RecoveryOptions {
        RecoveryOptions {
            warmup: spec.warmup,
            active_window: spec.window,
            ..RecoveryOptions::paper_defaults()
        }
    }

    fn run_transient(
        &self,
        spec: &JobSpec,
        on_event: &mut dyn FnMut(JobEvent),
    ) -> Result<JobResult, CampaignError> {
        let mut cc = CampaignConfig::paper_defaults(spec.noc.clone(), spec.warmup);
        cc.active_window = spec.window;
        let campaign = self.cache.get(&cc)?;
        let sites = fault::enumerate_sites(&spec.noc);
        let sites = match spec.limit {
            Some(limit) => fault::sample::stride(&sites, limit as usize),
            None => sites,
        };
        let specs: Vec<FaultSpec> = sites
            .iter()
            .map(|&s| FaultSpec::transient(s, campaign.injection_cycle()))
            .collect();

        let mut reports: Vec<SiteReport> = Vec::with_capacity(specs.len());
        let mut resumed = 0usize;
        let mut interrupted = false;
        for (ix, chunk) in specs.chunks(Self::chunk_size(spec)).enumerate() {
            if self.cancelled() {
                interrupted = true;
                break;
            }
            let opts = ResilienceOptions {
                watchdog: None,
                checkpoint_dir: self.checkpoint_dir.clone(),
                // Chunks after the first land in a directory the first
                // chunk populated; that is resumption by construction.
                resume: self.resume || ix > 0,
                cancel: self.cancel.clone(),
            };
            let part = campaign.run_many_resilient(chunk, spec.threads as usize, &opts)?;
            resumed += part.resumed;
            interrupted |= part.interrupted;
            reports.extend(part.reports);
            on_event(JobEvent::Progress {
                done: reports.len() as u32,
                total: specs.len() as u32,
            });
            if interrupted {
                break;
            }
        }

        let incidents: Vec<Incident> = reports
            .iter()
            .enumerate()
            .map(|(id, r)| transient_incident(id as u32, r))
            .collect();
        for inc in &incidents {
            on_event(JobEvent::Incident(inc.clone()));
        }
        let detected = reports
            .iter()
            .filter(|r| {
                r.outcome
                    .run_result()
                    .is_some_and(|res| res.nocalert.detected)
            })
            .count();
        Ok(JobResult {
            digest: digest_rows(&reports),
            summary: format!(
                "transient: {}/{} sites ran, nocalert detected {}, resumed {}",
                reports.len(),
                specs.len(),
                detected,
                resumed
            ),
            incidents,
            resumed: resumed as u32,
            interrupted,
        })
    }

    fn run_recovery(
        &self,
        spec: &JobSpec,
        on_event: &mut dyn FnMut(JobEvent),
    ) -> Result<JobResult, CampaignError> {
        let cc = RecoveryCampaignConfig {
            noc: spec.noc.clone(),
            opts: Self::sweep_opts(spec),
        };
        let campaign = RecoveryCampaign::try_new(cc)?;
        let mut specs = standard_recovery_specs(&spec.noc, Self::sweep_start(spec), 50, 10);
        if let Some(limit) = spec.limit {
            specs.truncate(limit as usize);
        }

        let mut reports: Vec<RecoverySiteReport> = Vec::with_capacity(specs.len());
        let mut resumed = 0usize;
        let mut interrupted = false;
        for (ix, chunk) in specs.chunks(Self::chunk_size(spec)).enumerate() {
            if self.cancelled() {
                interrupted = true;
                break;
            }
            let opts = RecoveryCampaignOptions {
                checkpoint_dir: self.checkpoint_dir.clone(),
                resume: self.resume || ix > 0,
                cancel: self.cancel.clone(),
            };
            let part = campaign.run_specs(chunk, spec.threads as usize, &opts)?;
            resumed += part.resumed;
            interrupted |= part.interrupted;
            reports.extend(part.reports);
            on_event(JobEvent::Progress {
                done: reports.len() as u32,
                total: specs.len() as u32,
            });
            if interrupted {
                break;
            }
        }

        let incidents: Vec<Incident> = reports
            .iter()
            .enumerate()
            .map(|(id, r)| recovery_incident(id as u32, r))
            .collect();
        for inc in &incidents {
            on_event(JobEvent::Incident(inc.clone()));
        }
        let exactly_once = reports
            .iter()
            .filter(|r| r.run.verdict == DeliveryVerdict::ExactlyOnce)
            .count();
        Ok(JobResult {
            digest: digest_rows(&reports),
            summary: format!(
                "recovery: {}/{} rollouts ran, {} exactly-once, resumed {}",
                reports.len(),
                specs.len(),
                exactly_once,
                resumed
            ),
            incidents,
            resumed: resumed as u32,
            interrupted,
        })
    }

    fn run_attack(
        &self,
        spec: &JobSpec,
        on_event: &mut dyn FnMut(JobEvent),
    ) -> Result<JobResult, CampaignError> {
        let cc = AttackCampaignConfig {
            noc: spec.noc.clone(),
            opts: Self::sweep_opts(spec),
        };
        let campaign = AttackCampaign::try_new(cc)?;
        let routers: Vec<u16> = (0..spec.noc.mesh.len() as u16).collect();
        // Full-rate attackers ({every: 1}): the strongest adversary and
        // the AckSpoof regression pin.
        let mut cells = standard_cells(
            &spec.noc,
            &routers,
            1,
            Self::sweep_start(spec),
            spec.noc.seed,
        );
        if let Some(limit) = spec.limit {
            cells.truncate(limit as usize);
        }

        let mut reports: Vec<AttackCellReport> = Vec::with_capacity(cells.len());
        let mut resumed = 0usize;
        let mut interrupted = false;
        for (ix, chunk) in cells.chunks(Self::chunk_size(spec)).enumerate() {
            if self.cancelled() {
                interrupted = true;
                break;
            }
            let opts = AttackCampaignOptions {
                checkpoint_dir: self.checkpoint_dir.clone(),
                resume: self.resume || ix > 0,
                cancel: self.cancel.clone(),
            };
            let part = campaign.run_cells(chunk, spec.threads as usize, &opts)?;
            resumed += part.resumed;
            interrupted |= part.interrupted;
            reports.extend(part.reports);
            on_event(JobEvent::Progress {
                done: reports.len() as u32,
                total: cells.len() as u32,
            });
            if interrupted {
                break;
            }
        }

        let incidents: Vec<Incident> = reports
            .iter()
            .enumerate()
            .map(|(id, r)| attack_incident(id as u32, r))
            .collect();
        for inc in &incidents {
            on_event(JobEvent::Incident(inc.clone()));
        }
        let undetected_loss = reports
            .iter()
            .filter(|r| {
                r.run.verdict != DeliveryVerdict::ExactlyOnce && r.run.first_evidence_at.is_none()
            })
            .count();
        Ok(JobResult {
            digest: digest_rows(&reports),
            summary: format!(
                "attack: {}/{} cells ran, {} undetected-loss, resumed {}",
                reports.len(),
                cells.len(),
                undetected_loss,
                resumed
            ),
            incidents,
            resumed: resumed as u32,
            interrupted,
        })
    }

    /// The aging options a job spec maps to: smoke-scale for meshes up
    /// to 4×4, paper-scale otherwise, with the job's traffic seed,
    /// warm-up and epoch window substituted in. Public so clients can
    /// predict the exact campaign a spec runs.
    pub fn aging_options(spec: &JobSpec) -> AgingOptions {
        let mut opts = if spec.noc.mesh.width() <= 4 {
            AgingOptions::smoke_defaults()
        } else {
            AgingOptions::paper_defaults()
        };
        opts.noc.seed = spec.noc.seed;
        opts.warmup = spec.warmup;
        opts.epoch_window = spec.window;
        if let Some(limit) = spec.limit {
            opts.organic_epochs = opts.organic_epochs.min(limit);
        }
        opts
    }

    fn run_aging(
        &self,
        spec: &JobSpec,
        on_event: &mut dyn FnMut(JobEvent),
    ) -> Result<JobResult, CampaignError> {
        let opts = Self::aging_options(spec);
        let harness = AgingHarness::try_new(opts.clone()).map_err(aging_err)?;
        let total = harness.plan().len() as u32;

        let (prior, mut log) = match &self.checkpoint_dir {
            Some(dir) => {
                let (rows, log) = EpochLog::open(dir, &opts, self.resume)?;
                (rows, Some(log))
            }
            None => (Vec::new(), None),
        };
        let resumed = prior.len();

        // The harness runs one continuous simulation, so progress and
        // checkpoint rows are emitted from inside its epoch callback;
        // an append failure is captured and re-raised after the run
        // (the harness itself cannot fail mid-epoch on our account).
        let mut log_err: Option<CampaignError> = None;
        let report = harness
            .run(&prior, |row| {
                if let (Some(log), None) = (log.as_mut(), log_err.as_ref()) {
                    if let Err(e) = log.append(row) {
                        log_err = Some(e);
                    }
                }
                on_event(JobEvent::Progress {
                    done: row.epoch + 1,
                    total: total.max(row.epoch + 1),
                });
            })
            .map_err(aging_err)?;
        if let Some(e) = log_err {
            return Err(e);
        }

        let incidents: Vec<Incident> = report
            .epochs
            .iter()
            .enumerate()
            .map(|(id, e)| aging_incident(id as u32, e))
            .collect();
        for inc in &incidents {
            on_event(JobEvent::Incident(inc.clone()));
        }
        let survived = report.epochs.iter().filter(|e| e.exactly_once).count();
        Ok(JobResult {
            digest: digest_rows(&report.epochs),
            summary: format!(
                "aging: {} epochs, {} exactly-once, partition at end: {}, resumed {}",
                report.epochs.len(),
                survived,
                report.partition().is_some(),
                resumed
            ),
            incidents,
            resumed: resumed as u32,
            interrupted: false,
        })
    }
}

/// Maps an aging-harness error into the campaign error vocabulary the
/// driver speaks.
fn aging_err(e: AgingError) -> CampaignError {
    match e {
        AgingError::Invalid(sim) => CampaignError::Substrate(sim),
        AgingError::Options(msg) => {
            CampaignError::Substrate(SimError::Config(ConfigError::new(msg)))
        }
        AgingError::ResumeDivergence { epoch } => CampaignError::Checkpoint {
            path: PathBuf::new(),
            detail: format!("aging resume diverged at epoch {epoch}"),
        },
    }
}

/// Renders a delivery verdict for an incident's `delivery` field.
fn delivery_label(v: &DeliveryVerdict) -> String {
    match v {
        DeliveryVerdict::ExactlyOnce => "exactly-once".to_string(),
        DeliveryVerdict::Violated {
            undelivered,
            gave_up,
            duplicates,
        } => {
            format!("violated: undelivered={undelivered} gave_up={gave_up} duplicates={duplicates}")
        }
    }
}

fn transient_incident(id: u32, r: &SiteReport) -> Incident {
    let subject = format!("{:?} @ {}", r.spec.kind, r.spec.site);
    match &r.outcome {
        RunOutcome::Completed(res) | RunOutcome::Deadlock { result: res, .. } => {
            let first_cycle = res
                .nocalert
                .latency
                .map(|l| res.injected_at.saturating_add(l));
            let last_cycle = match &r.outcome {
                RunOutcome::Deadlock { hang, .. } => hang.at_cycle,
                _ => first_cycle.unwrap_or(res.injected_at),
            };
            let delivery = if res.verdict.malicious() {
                format!(
                    "malicious {:?}; nocalert {}",
                    res.verdict.violations,
                    if res.nocalert.detected {
                        "detected"
                    } else {
                        "undetected"
                    }
                )
            } else if res.nocalert.detected {
                "benign; nocalert detected (false positive)".to_string()
            } else {
                "benign".to_string()
            };
            Incident {
                id,
                subject,
                first_cycle,
                last_cycle,
                checkers: res.checkers.iter().map(|c| c.0).collect(),
                alerts: res.checkers.len() as u64,
                containment: Vec::new(),
                delivery,
            }
        }
        RunOutcome::Crashed {
            injected_at,
            payload,
            ..
        } => Incident {
            id,
            subject,
            first_cycle: None,
            last_cycle: *injected_at,
            checkers: Vec::new(),
            alerts: 0,
            containment: Vec::new(),
            delivery: format!("crashed: {payload}"),
        },
    }
}

fn recovery_incident(id: u32, r: &RecoverySiteReport) -> Incident {
    let run = &r.run;
    Incident {
        id,
        subject: format!("{:?} @ {}", r.spec.kind, r.spec.site),
        first_cycle: run.first_alert_at,
        last_cycle: run.end_cycle,
        checkers: run.checkers.clone(),
        alerts: run.alerts,
        containment: run
            .trace
            .iter()
            .map(|e| ContainmentStep {
                cycle: e.cycle,
                router: e.router,
                port: e.port,
                vc: e.vc,
                action: format!("{:?}", e.level),
                flits_dropped: e.flits_dropped,
            })
            .collect(),
        delivery: format!("{:?}; {}", run.outcome, delivery_label(&run.verdict)),
    }
}

fn attack_incident(id: u32, r: &AttackCellReport) -> Incident {
    let run = &r.run;
    Incident {
        id,
        subject: format!("{:?} attack @ r{}", r.cell.spec.kind, r.cell.spec.router),
        first_cycle: run.first_evidence_at,
        last_cycle: run.end_cycle,
        checkers: Vec::new(),
        alerts: run.bank_alerts,
        containment: Vec::new(),
        delivery: format!("{:?}; {}", run.class, delivery_label(&run.verdict)),
    }
}

fn aging_incident(id: u32, e: &EpochReport) -> Incident {
    Incident {
        id,
        subject: format!("epoch {} {:?}", e.epoch, e.fault),
        first_cycle: Some(e.start_cycle),
        last_cycle: e.end_cycle,
        checkers: Vec::new(),
        alerts: e.alerts,
        containment: Vec::new(),
        delivery: format!(
            "{:?}; {}/{} delivered{}",
            e.outcome,
            e.delivered,
            e.offered,
            if e.exactly_once { "" } else { ", violated" }
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::NocConfig;

    fn small_noc() -> NocConfig {
        let mut noc = NocConfig::paper_baseline();
        noc.mesh = noc_types::Mesh::new(3, 3);
        noc.vcs_per_port = 2;
        noc.message_classes = 1;
        noc.packet_lengths = vec![5];
        noc.injection_rate = 0.05;
        noc
    }

    fn spec(kind: JobKind, limit: u32, threads: u32) -> JobSpec {
        JobSpec {
            kind,
            noc: small_noc(),
            warmup: 200,
            window: 1_200,
            limit: Some(limit),
            threads,
        }
    }

    #[test]
    fn digest_is_order_sensitive_and_stable() {
        let rows = vec![1u32, 2, 3];
        let again = vec![1u32, 2, 3];
        let shuffled = vec![3u32, 2, 1];
        assert_eq!(digest_rows(&rows), digest_rows(&again));
        assert_ne!(digest_rows(&rows), digest_rows(&shuffled));
        assert_eq!(digest_rows(&rows).len(), 16);
    }

    #[test]
    fn golden_cache_shares_campaigns_by_config() {
        let cache = GoldenCache::new();
        let cc = CampaignConfig::paper_defaults(small_noc(), 100);
        let a = cache.get(&cc).unwrap();
        let b = cache.get(&cc).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        let mut cc2 = cc.clone();
        cc2.warmup = 150;
        let c = cache.get(&cc2).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn transient_job_digest_is_worker_count_invariant() {
        let driver = JobDriver::default();
        let mut events = Vec::new();
        let one = driver
            .run(&spec(JobKind::Transient, 6, 1), &mut |e| events.push(e))
            .unwrap();
        let four = driver
            .run(&spec(JobKind::Transient, 6, 4), &mut |_| {})
            .unwrap();
        assert_eq!(one.digest, four.digest);
        assert_eq!(one.incidents, four.incidents);
        assert_eq!(one.incidents.len(), 6);
        assert!(!one.interrupted);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, JobEvent::Progress { .. })),
            "progress events must be emitted"
        );
        assert!(
            events.iter().any(|e| matches!(e, JobEvent::Incident(_))),
            "incident events must be emitted"
        );
    }

    #[test]
    fn recovery_job_resumes_from_checkpoint_bit_identically() {
        let dir = std::env::temp_dir().join(format!(
            "nocalert-job-recovery-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let fresh = JobDriver {
            checkpoint_dir: Some(dir.clone()),
            ..JobDriver::default()
        };
        let first = fresh
            .run(&spec(JobKind::Recovery, 4, 2), &mut |_| {})
            .unwrap();
        assert_eq!(first.resumed, 0);

        // A second driver over the same populated directory must refuse
        // without resume, and reproduce the digest from shards with it.
        let refused = JobDriver {
            checkpoint_dir: Some(dir.clone()),
            ..JobDriver::default()
        }
        .run(&spec(JobKind::Recovery, 4, 2), &mut |_| {});
        assert!(matches!(refused, Err(CampaignError::Checkpoint { .. })));

        let resumed = JobDriver {
            checkpoint_dir: Some(dir.clone()),
            resume: true,
            ..JobDriver::default()
        }
        .run(&spec(JobKind::Recovery, 4, 3), &mut |_| {})
        .unwrap();
        assert_eq!(resumed.digest, first.digest);
        assert_eq!(resumed.incidents, first.incidents);
        assert_eq!(resumed.resumed, 4);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
